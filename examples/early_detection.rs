//! Early detection: score statements the moment they appear, before any
//! fact-checker touches them — the motivating goal of the paper's
//! introduction ("identify the fake news timely").
//!
//! Trains once, saves the model to JSON, reloads it (as a long-running
//! service would), and scores a stream of unseen statements against the
//! trained network's diffused creator/subject states.
//!
//! ```sh
//! cargo run --release --example early_detection
//! ```

use fakedetector::core::TrainedFakeDetector;
use fakedetector::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.04), 99);
    let tokenized = TokenizedCorpus::build(&corpus, 12, 6000);
    let mut rng = StdRng::seed_from_u64(1);
    let train = TrainSets {
        articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
        creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
        subjects: CvSplits::new(corpus.subjects.len(), 10, &mut rng).fold(0).0,
    };
    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 60);
    let ctx = ExperimentContext {
        corpus: &corpus,
        tokenized: &tokenized,
        explicit: &explicit,
        train: &train,
        mode: LabelMode::Binary,
        seed: 5,
    };

    println!("training…");
    let trained = FakeDetector::new(FakeDetectorConfig::default()).fit(&ctx);
    println!(
        "trained for {} epochs (early stopping), final loss {:.1}",
        trained.report().losses.len(),
        trained.report().losses.last().unwrap()
    );

    // Persist and reload, as a scoring service would at startup.
    let saved = trained.to_json();
    println!("serialised model: {} KiB", saved.len() / 1024);
    let service = TrainedFakeDetector::from_json(&saved).expect("reload");

    // A "stream" of fresh statements: same creator, different wording.
    let incoming = [
        "federal census data shows unemployment rate decline and wage growth this quarter",
        "annual budget analysis reports steady insurance enrollment and revenue increase",
        "secret obamacare takeover scheme rigged to confiscate guns and destroy jobs",
        "viral chain email claims banned muslim caravan plot behind election fraud",
    ];
    println!("\nscoring unseen statements (creator 0, subjects 0–1):");
    for text in incoming {
        let p = service.score_new_article(&ctx, text, Some(0), &[0, 1]);
        let verdict = if p[1] >= 0.5 { "looks credible" } else { "FLAG: likely fake" };
        println!("  p(credible)={:.3}  {verdict:<18} \"{}…\"", p[1], &text[..46]);
    }
}

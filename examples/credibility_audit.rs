//! Credibility audit: the workload the paper's introduction motivates —
//! given a partially fact-checked network, rank the *unchecked* creators
//! and subjects by inferred credibility so human fact-checkers know where
//! to look first.
//!
//! ```sh
//! cargo run --release --example credibility_audit
//! ```

use fakedetector::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.05), 2026);
    let tokenized = TokenizedCorpus::build(&corpus, 12, 6000);

    // Only 30% of each entity set has been fact-checked (θ = 0.3 over
    // one CV fold) — everything else is the audit target.
    let mut rng = StdRng::seed_from_u64(5);
    let articles = CvSplits::new(corpus.articles.len(), 10, &mut rng);
    let creators = CvSplits::new(corpus.creators.len(), 10, &mut rng);
    let subjects = CvSplits::new(corpus.subjects.len(), 10, &mut rng);
    let train = TrainSets {
        articles: sample_ratio(&articles.fold(0).0, 0.3, &mut rng),
        creators: sample_ratio(&creators.fold(0).0, 0.3, &mut rng),
        subjects: sample_ratio(&subjects.fold(0).0, 0.3, &mut rng),
    };
    println!(
        "fact-checked so far: {} articles, {} creators, {} subjects",
        train.articles.len(),
        train.creators.len(),
        train.subjects.len()
    );

    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 60);
    let ctx = ExperimentContext {
        corpus: &corpus,
        tokenized: &tokenized,
        explicit: &explicit,
        train: &train,
        mode: LabelMode::MultiClass,
        seed: 11,
    };

    println!("training FakeDetector on the checked subset…");
    let predictions = FakeDetector::new(FakeDetectorConfig::default()).fit_predict(&ctx);

    // Rank unchecked creators by predicted credibility (most suspicious
    // first), weighting by how many articles they publish.
    let checked: std::collections::HashSet<usize> = train.creators.iter().copied().collect();
    let mut suspects: Vec<(usize, usize, usize)> = (0..corpus.creators.len())
        .filter(|u| !checked.contains(u))
        .map(|u| {
            let volume = corpus.graph.articles_of_creator(u).len();
            (predictions.creators[u], volume, u)
        })
        .collect();
    // Highest predicted class index = lowest credibility (PantsOnFire=5).
    suspects.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)));

    println!("\nmost suspicious unchecked creators (by predicted label, then volume):");
    let mut hits = 0usize;
    for &(pred, volume, u) in suspects.iter().take(8) {
        let predicted = Credibility::from_class_index(pred);
        let actual = corpus.creators[u].label;
        let correct_side = predicted.is_true_group() == actual.is_true_group();
        hits += usize::from(correct_side);
        println!(
            "  {:<28} {:>3} articles  predicted {:<14} actual {:<14} {}",
            corpus.creators[u].name,
            volume,
            predicted.name(),
            actual.name(),
            if correct_side { "✓" } else { "✗" }
        );
    }
    println!("({hits}/8 on the right side of the true/false divide)");

    // Same audit for subjects: which topics attract misinformation?
    let checked: std::collections::HashSet<usize> = train.subjects.iter().copied().collect();
    println!("\nunchecked subjects, most misinformation-prone first:");
    let mut topics: Vec<(usize, usize)> = (0..corpus.subjects.len())
        .filter(|s| !checked.contains(s))
        .map(|s| (predictions.subjects[s], s))
        .collect();
    topics.sort_by_key(|&(pred, _)| std::cmp::Reverse(pred));
    for &(pred, s) in topics.iter().take(5) {
        println!(
            "  {:<14} predicted {:<14} actual {}",
            corpus.subjects[s].name,
            Credibility::from_class_index(pred).name(),
            corpus.subjects[s].label.name()
        );
    }
}

//! Reproduces the paper's Section 3 dataset analysis through the public
//! API: power-law publishing behaviour (Fig 1(a)), label-conditioned
//! vocabularies (Fig 1(b)/(c)), subject skews (Fig 1(d)) and the creator
//! case studies (Fig 1(e)/(f)).
//!
//! ```sh
//! cargo run --release --example dataset_analysis
//! ```

use fakedetector::graph::{degree_histogram, fit_power_law};
use fakedetector::prelude::*;

fn main() {
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.25), 42);

    // Fig 1(a): creator publishing counts follow a power law.
    let counts: Vec<usize> = (0..corpus.creators.len())
        .map(|u| corpus.graph.articles_of_creator(u).len())
        .collect();
    let hist = degree_histogram(&counts);
    let one_article = *hist.get(&1).unwrap_or(&0);
    println!(
        "creators: {} total, {} ({:.0}%) published a single article, max {}",
        corpus.creators.len(),
        one_article,
        100.0 * one_article as f64 / corpus.creators.len() as f64,
        counts.iter().max().unwrap()
    );
    if let Some(fit) = fit_power_law(&counts, 2) {
        println!("power-law exponent over the tail: alpha = {:.2}", fit.alpha);
    }

    // Fig 1(b)/(c): the vocabularies separate.
    let true_top = word_frequencies(&corpus, true, 12);
    let false_top = word_frequencies(&corpus, false, 12);
    println!("\ntrue-article words : {}", join(&true_top));
    println!("false-article words: {}", join(&false_top));

    // Fig 1(d): subject-level skews.
    println!("\ntop subjects by volume:");
    for t in subject_tallies(&corpus).into_iter().take(8) {
        let lean = if t.true_fraction() >= 0.5 { "leans true" } else { "leans false" };
        println!(
            "  {:<12} {:>5} articles, {:>4.1}% true  ({lean})",
            t.name,
            t.total(),
            100.0 * t.true_fraction()
        );
    }

    // Fig 1(e)/(f): the archetype creators.
    println!("\ncase-study creators:");
    for creator in 0..4 {
        let tally = creator_tally(&corpus, creator);
        let total: usize = tally.iter().sum();
        let true_share: usize = tally[..3].iter().sum();
        println!(
            "  {:<28} {:>4} articles, {:>4.1}% in the true group",
            corpus.creators[creator].name,
            total,
            100.0 * true_share as f64 / total.max(1) as f64
        );
    }
}

fn join(words: &[(String, u64)]) -> String {
    words
        .iter()
        .map(|(w, _)| w.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

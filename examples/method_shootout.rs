//! Method shoot-out: all six methods of the paper's evaluation on one
//! split, reporting the four bi-class metrics per entity type — a
//! single-cell preview of Figure 4.
//!
//! ```sh
//! cargo run --release --example method_shootout
//! ```

use fakedetector::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.05), 7);
    let tokenized = TokenizedCorpus::build(&corpus, 12, 6000);
    let mut rng = StdRng::seed_from_u64(3);
    let a = CvSplits::new(corpus.articles.len(), 10, &mut rng);
    let c = CvSplits::new(corpus.creators.len(), 10, &mut rng);
    let s = CvSplits::new(corpus.subjects.len(), 10, &mut rng);
    let (a_train, a_test) = a.fold(0);
    let (c_train, c_test) = c.fold(0);
    let (s_train, s_test) = s.fold(0);
    let train = TrainSets { articles: a_train, creators: c_train, subjects: s_train };
    let test = TrainSets { articles: a_test, creators: c_test, subjects: s_test };
    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 60);
    let ctx = ExperimentContext {
        corpus: &corpus,
        tokenized: &tokenized,
        explicit: &explicit,
        train: &train,
        mode: LabelMode::Binary,
        seed: 99,
    };

    let mut models: Vec<Box<dyn CredibilityModel>> =
        vec![Box::new(FakeDetector::new(FakeDetectorConfig::default()))];
    models.extend(default_baselines());

    println!(
        "{:<14}{:<10}{:>9}{:>9}{:>9}{:>9}",
        "method", "entity", "acc", "f1", "prec", "recall"
    );
    for model in &models {
        let start = std::time::Instant::now();
        let preds = model.fit_predict(&ctx);
        let elapsed = start.elapsed().as_secs_f64();
        for (ty, name) in [
            (NodeType::Article, "articles"),
            (NodeType::Creator, "creators"),
            (NodeType::Subject, "subjects"),
        ] {
            let mut cm = ConfusionMatrix::new(2);
            for &i in test.for_type(ty) {
                let truth = match ty {
                    NodeType::Article => corpus.articles[i].label,
                    NodeType::Creator => corpus.creators[i].label,
                    NodeType::Subject => corpus.subjects[i].label,
                };
                cm.record(LabelMode::Binary.target(truth), preds.for_type(ty)[i]);
            }
            println!(
                "{:<14}{:<10}{:>9.3}{:>9.3}{:>9.3}{:>9.3}",
                model.name(),
                name,
                cm.metric(MetricKind::Accuracy),
                cm.metric(MetricKind::F1),
                cm.metric(MetricKind::Precision),
                cm.metric(MetricKind::Recall),
            );
        }
        println!("{:<14}(fit+predict {elapsed:.1}s)", "");
    }
}

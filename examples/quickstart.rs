//! Quickstart: generate a corpus, train FakeDetector, evaluate it on a
//! held-out fold, and inspect a few predictions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fakedetector::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // 1. A synthetic PolitiFact-like News-HSN at 5% of paper scale:
    //    ~700 articles, ~180 creators, ~12 subjects, all statistics of
    //    the paper's Section 3 analysis preserved.
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.05), 42);
    println!(
        "corpus: {} articles, {} creators, {} subjects, {} topic links",
        corpus.articles.len(),
        corpus.creators.len(),
        corpus.subjects.len(),
        corpus.graph.n_subject_links()
    );

    // 2. Tokenise everything once and set up one CV fold (90% train).
    let tokenized = TokenizedCorpus::build(&corpus, 12, 6000);
    let mut rng = StdRng::seed_from_u64(7);
    let articles = CvSplits::new(corpus.articles.len(), 10, &mut rng);
    let creators = CvSplits::new(corpus.creators.len(), 10, &mut rng);
    let subjects = CvSplits::new(corpus.subjects.len(), 10, &mut rng);
    let (a_train, a_test) = articles.fold(0);
    let train = TrainSets {
        articles: a_train,
        creators: creators.fold(0).0,
        subjects: subjects.fold(0).0,
    };

    // 3. χ²-extract the discriminative word sets W_n/W_u/W_s from the
    //    training entities and featurise everyone.
    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 60);
    println!(
        "top article words: {:?}",
        &explicit.word_sets[0].words()[..8.min(explicit.word_sets[0].len())]
    );

    // 4. Train the deep diffusive network end to end.
    let ctx = ExperimentContext {
        corpus: &corpus,
        tokenized: &tokenized,
        explicit: &explicit,
        train: &train,
        mode: LabelMode::Binary,
        seed: 42,
    };
    let model = FakeDetector::new(FakeDetectorConfig::default());
    println!("training FakeDetector ({} epochs)…", model.config.epochs);
    let (predictions, report) = model.fit_predict_with_report(&ctx);
    println!(
        "loss: {:.1} -> {:.1}",
        report.losses.first().unwrap(),
        report.losses.last().unwrap()
    );

    // 5. Score the held-out articles.
    let mut cm = ConfusionMatrix::new(2);
    for &i in &a_test {
        cm.record(
            LabelMode::Binary.target(corpus.articles[i].label),
            predictions.articles[i],
        );
    }
    println!(
        "held-out articles: accuracy {:.3}, F1 {:.3}, precision {:.3}, recall {:.3}",
        cm.metric(MetricKind::Accuracy),
        cm.metric(MetricKind::F1),
        cm.metric(MetricKind::Precision),
        cm.metric(MetricKind::Recall),
    );

    // 6. Inspect three held-out predictions.
    for &i in a_test.iter().take(3) {
        let article = &corpus.articles[i];
        let verdict = if predictions.articles[i] == 1 { "credible" } else { "fake" };
        println!(
            "  [{}] predicted {verdict:<8} truth {:<14} \"{}…\"",
            i,
            article.label.name(),
            &article.text[..40.min(article.text.len())]
        );
    }
}

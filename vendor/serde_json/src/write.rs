//! Rendering [`Content`] trees as JSON text.

use serde::Content;
use std::fmt::Write as _;

/// Compact rendering: no whitespace.
pub fn compact(content: &Content) -> String {
    let mut out = String::new();
    write_value(&mut out, content, None, 0);
    out
}

/// Pretty rendering: two-space indent, one entry per line.
pub fn pretty(content: &Content) -> String {
    let mut out = String::new();
    write_value(&mut out, content, Some(2), 0);
    out
}

fn write_value(out: &mut String, content: &Content, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Content::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (key, value) = &entries[i];
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

/// `{}` on f64 prints the shortest decimal that round-trips the exact
/// bits, so floats (including widened f32s) survive text and back.
/// JSON has no non-finite literals; match serde_json and emit `null`.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{v}");
    // Keep a number-looking token (Display omits ".0" for integral
    // values, which is still valid JSON — nothing to fix there, but
    // make sure exponent forms like 1e-8 stay as-is).
    debug_assert!(out[start..].parse::<f64>().is_ok());
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_has_no_padding() {
        let v = Content::Map(vec![
            ("a".into(), Content::Seq(vec![Content::U64(1), Content::U64(2)])),
            ("b".into(), Content::Null),
        ]);
        assert_eq!(compact(&v), "{\"a\":[1,2],\"b\":null}");
    }

    #[test]
    fn pretty_indents_by_two() {
        let v = Content::Map(vec![("a".into(), Content::Seq(vec![Content::U64(1)]))]);
        assert_eq!(pretty(&v), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_compounds_stay_on_one_line() {
        assert_eq!(pretty(&Content::Seq(vec![])), "[]");
        assert_eq!(pretty(&Content::Map(vec![])), "{}");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(compact(&Content::Str("\u{1}".into())), "\"\\u0001\"");
        assert_eq!(compact(&Content::Str("a\"b".into())), "\"a\\\"b\"");
    }
}

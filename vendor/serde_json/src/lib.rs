//! Offline stand-in for `serde_json`.
//!
//! Converts between JSON text and the [`serde::Content`] data model of
//! the companion serde stand-in: [`to_string`] / [`to_string_pretty`]
//! lower a [`serde::Serialize`] value and render it; [`from_str`]
//! parses text and rebuilds a [`serde::Deserialize`] value. The
//! [`json!`] macro covers the object-literal form this workspace uses.

mod read;
mod write;

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Serialisation or parse failure, with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Compact JSON text for `value`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::compact(&value.serialize_content()))
}

/// Pretty-printed JSON text (two-space indent) for `value`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::pretty(&value.serialize_content()))
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = read::parse(s).map_err(Error::new)?;
    Ok(T::deserialize_content(&content)?)
}

/// A parsed or constructed JSON document ([`json!`] output).
#[derive(Debug, Clone, PartialEq)]
pub struct Value(Content);

impl Value {
    /// Wraps a raw data-model tree.
    pub fn from_content(content: Content) -> Self {
        Value(content)
    }

    /// The underlying data-model tree.
    pub fn as_content(&self) -> &Content {
        &self.0
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Content;

    /// Object-field lookup; a missing key or non-object yields `Null`,
    /// like upstream's `Value` indexing.
    fn index(&self, key: &str) -> &Content {
        static NULL: Content = Content::Null;
        self.0
            .as_map()
            .and_then(|m| serde::content_get(m, key))
            .unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    /// Renders compact JSON, so `value.to_string()` is serialisation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&write::compact(&self.0))
    }
}

impl Serialize for Value {
    fn serialize_content(&self) -> Content {
        self.0.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_content(content: &Content) -> Result<Self, serde::Error> {
        Ok(Value(content.clone()))
    }
}

/// Builds a [`Value`] from a JSON object literal. Only the
/// `json!({ "key": expr, ... })` form is supported; every value
/// expression must implement [`serde::Serialize`].
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::from_content(::serde::Content::Map(vec![
            $(($key.to_string(), ::serde::Serialize::serialize_content(&$value))),*
        ]))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&3usize).unwrap(), "3");
        assert_eq!(to_string(&-4i64).unwrap(), "-4");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<usize>("3").unwrap(), 3);
        assert_eq!(from_str::<i32>("-4").unwrap(), -4);
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn f32_survives_the_f64_detour() {
        // f32 serialises through f64; the widening is exact, so text
        // like 0.30000001192092896 must parse back to the same bits.
        for &x in &[0.3f32, -1.5e-8, 7.25, f32::MAX, f32::MIN_POSITIVE] {
            let text = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&text).unwrap().to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f32::INFINITY).unwrap(), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "quote\" back\\slash \n\t\r ctrl\u{1} unicode é 中".to_string();
        let text = to_string(&nasty).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), nasty);
    }

    #[test]
    fn nested_sequences_roundtrip() {
        let rows: Vec<[f64; 4]> = vec![[1.0, 0.5, 0.25, 0.125], [0.0, -1.0, 2.0, 3.5]];
        let text = to_string(&rows).unwrap();
        assert_eq!(from_str::<Vec<[f64; 4]>>(&text).unwrap(), rows);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'), "pretty output has newlines");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn json_macro_builds_objects() {
        let payload = json!({
            "mode": "binary",
            "counts": vec![1usize, 2, 3],
            "threshold": 0.5f64,
        });
        let text = payload.to_string();
        assert_eq!(
            text,
            "{\"mode\":\"binary\",\"counts\":[1,2,3],\"threshold\":0.5}"
        );
        assert_eq!(from_str::<Value>(&text).unwrap(), payload);
    }

    #[test]
    fn parse_errors_name_the_position() {
        let err = from_str::<u32>("[1, 2").unwrap_err().to_string();
        assert!(err.contains("offset"), "{err}");
        assert!(from_str::<u32>("12 trailing").is_err());
        assert!(from_str::<u32>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        // Surrogate pair for U+1F600.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "\u{1F600}");
        assert!(from_str::<String>("\"\\ud83d\"").is_err(), "lone surrogate");
    }

    mod derive_roundtrip {
        //! End-to-end checks of the hand-rolled serde derive macros.
        use super::*;
        use serde::{Deserialize, Serialize};
        use std::collections::HashMap;

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Inner {
            label: String,
            weights: Vec<f32>,
        }

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Outer {
            pub id: usize,
            inner: Inner,
            lookup: HashMap<String, usize>,
            #[serde(skip)]
            cache: Vec<u64>,
            optional: Option<i64>,
        }

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum Kind {
            Alpha,
            Beta,
        }

        #[test]
        fn struct_roundtrip_honours_skip() {
            let outer = Outer {
                id: 7,
                inner: Inner { label: "x".into(), weights: vec![0.25, -1.5] },
                lookup: HashMap::from([("a".to_string(), 1)]),
                cache: vec![9, 9, 9],
                optional: Some(-3),
            };
            let text = to_string(&outer).unwrap();
            assert!(!text.contains("cache"), "skipped field serialised: {text}");
            let back: Outer = from_str(&text).unwrap();
            assert_eq!(back.cache, Vec::<u64>::new(), "skipped field defaults");
            assert_eq!(back.id, outer.id);
            assert_eq!(back.inner, outer.inner);
            assert_eq!(back.optional, outer.optional);
        }

        #[test]
        fn missing_field_is_a_named_error() {
            let err = from_str::<Inner>("{\"label\":\"x\"}").unwrap_err().to_string();
            assert!(err.contains("weights"), "{err}");
        }

        #[test]
        fn unit_enum_roundtrip() {
            assert_eq!(to_string(&Kind::Beta).unwrap(), "\"Beta\"");
            assert_eq!(from_str::<Kind>("\"Alpha\"").unwrap(), Kind::Alpha);
            let err = from_str::<Kind>("\"Gamma\"").unwrap_err().to_string();
            assert!(err.contains("Gamma"), "{err}");
        }
    }
}

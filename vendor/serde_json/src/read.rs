//! Parsing JSON text into [`Content`] trees.

use serde::Content;

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Content, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_whitespace();
    let value = p.value()?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, msg: &str) -> String {
        format!("{msg} at offset {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Content, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => self.sequence(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.fail(&format!("unexpected character `{}`", c as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn sequence(&mut self) -> Result<Content, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.fail("expected `,` or `]` in array")),
            }
        }
    }

    fn map(&mut self) -> Result<Content, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.fail("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.fail("bare `\\`"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(
                                self.fail(&format!("unknown escape `\\{}`", other as char))
                            )
                        }
                    }
                }
                Some(c) if c < 0x80 => {
                    if c < 0x20 {
                        return Err(self.fail("raw control character in string"));
                    }
                    out.push(c as char);
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence starting here is valid — copy it whole.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits after `\u`, pairing UTF-16 surrogates.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let high = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&high) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err(self.fail("expected low surrogate"));
                }
                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
            } else {
                return Err(self.fail("lone high surrogate"));
            }
        } else if (0xDC00..0xE000).contains(&high) {
            return Err(self.fail("lone low surrogate"));
        } else {
            high
        };
        char::from_u32(code).ok_or_else(|| self.fail("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.fail("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.fail("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Content, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            // Magnitudes past 64-bit fall through to f64, like serde_json
            // with arbitrary_precision off.
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| format!("invalid number `{text}` at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_pick_the_narrowest_variant() {
        assert_eq!(parse("42"), Ok(Content::U64(42)));
        assert_eq!(parse("-42"), Ok(Content::I64(-42)));
        assert_eq!(parse("18446744073709551615"), Ok(Content::U64(u64::MAX)));
        assert_eq!(parse("1.5"), Ok(Content::F64(1.5)));
        assert_eq!(parse("1e3"), Ok(Content::F64(1000.0)));
        assert_eq!(parse("-2.5e-2"), Ok(Content::F64(-0.025)));
    }

    #[test]
    fn oversized_integers_become_floats() {
        assert!(matches!(parse("99999999999999999999999"), Ok(Content::F64(_))));
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let doc = " { \"a\" : [ 1 , 2 ] , \"b\" : { } } ";
        assert_eq!(
            parse(doc),
            Ok(Content::Map(vec![
                ("a".into(), Content::Seq(vec![Content::U64(1), Content::U64(2)])),
                ("b".into(), Content::Map(vec![])),
            ]))
        );
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for doc in ["", "{", "[1,", "{\"a\"}", "nul", "\"\\x\"", "01a", "[1] extra"] {
            assert!(parse(doc).is_err(), "accepted {doc:?}");
        }
    }
}

//! Offline stand-in for `proptest`.
//!
//! Covers the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range and tuple
//! strategies, `prop::collection::vec`, [`arbitrary::any`], `prop_map`,
//! and the `prop_assert*` / [`prop_assume!`] macros. Two deliberate
//! simplifications versus upstream: no shrinking (a failing case
//! reports its inputs via the assertion message but is not minimised),
//! and rejected cases (`prop_assume!`) are skipped rather than retried.
//! Generation is deterministic: every test runs the same fixed-seed
//! stream on every invocation.

pub mod test_runner {
    //! Case execution: configuration, RNG plumbing and failure carrier.

    use rand::{rngs::StdRng, SeedableRng};

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed; the property is falsified.
        Fail(String),
        /// `prop_assume!` filtered the inputs; the case is skipped.
        Reject(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives value generation for one property.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// A fresh runner with the fixed generation stream.
        pub fn new(_config: &ProptestConfig) -> Self {
            TestRunner { rng: StdRng::seed_from_u64(0x9e37_79b9_7f4a_7c15) }
        }

        /// The entropy source strategies draw from.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRunner;
    use rand::{Rng, SampleRange};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.new_value(runner))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> T {
            runner.rng().gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> T {
            runner.rng().gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident . $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.new_value(runner),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod arbitrary {
    //! `any::<T>()`: the type-default strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> Self {
                    runner.rng().next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng().gen()
        }
    }

    // Unlike upstream (which mixes in NaN/infinity edge cases), float
    // `any` here is uniform over the unit interval.
    impl Arbitrary for f32 {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng().gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng().gen()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }
}

pub mod collection {
    //! Container strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = runner.rng().gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

/// Namespace mirror so call sites can write `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! The glob import property tests start from.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests. Each function body runs once per generated
/// case inside a closure returning `Result<(), TestCaseError>`, which is
/// what lets `prop_assert*` short-circuit the case without panicking.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pattern:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.cases;
                let mut runner = $crate::test_runner::TestRunner::new(&config);
                for case in 0..cases {
                    $(
                        let $pattern =
                            $crate::strategy::Strategy::new_value(&($strategy), &mut runner);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            ::std::panic!(
                                "property `{}` falsified on case {}/{}: {}",
                                ::std::stringify!($name),
                                case + 1,
                                cases,
                                message,
                            );
                        }
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    left,
                    right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -1.5f32..2.5, z in 1u32..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn tuples_and_vec_compose((a, b) in (0usize..5, 0usize..5), v in prop::collection::vec(0u32..7, 2..6)) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 7));
        }

        #[test]
        fn prop_map_transforms(doubled in (1usize..10).prop_map(|n| n * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!((2..20).contains(&doubled));
        }

        #[test]
        fn assume_skips_instead_of_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "assume must have filtered odd {}", n);
        }

        #[test]
        fn exact_size_vec(v in prop::collection::vec(any::<u64>(), 4)) {
            prop_assert_eq!(v.len(), 4);
        }
    }

    // The default-config arm (no `#![proptest_config]` header).
    proptest! {
        #[test]
        fn default_config_arm_works(flag in any::<bool>()) {
            prop_assert!(u8::from(flag) < 2);
        }
    }

    #[test]
    fn failing_property_panics_with_case_number() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(3))]
                fn always_fails(n in 0usize..10) {
                    prop_assert!(n > 100, "n was {}", n);
                }
            }
            always_fails();
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("always_fails"), "{message}");
        assert!(message.contains("case 1/3"), "{message}");
    }
}

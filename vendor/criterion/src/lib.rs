//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!` / `criterion_main!` / `benchmark_group`
//! API so the workspace's `harness = false` benches compile and run,
//! with a much simpler measurement core: per benchmark it calibrates an
//! iteration count against a wall-clock target, collects `sample_size`
//! samples, and prints min/median/mean per-iteration times to stdout.
//! No plotting, no statistical regression, no target directory reports.

use std::time::{Duration, Instant};

/// Top-level driver handed to every `criterion_group!` target.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    /// Reads the CLI: the first non-flag argument (as passed by e.g.
    /// `cargo bench -- matmul`) becomes a substring filter on
    /// `group/benchmark` ids.
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "Benchmark");
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            filter: self.filter.as_deref(),
        }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a parameter, `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter's text.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    filter: Option<&'a str>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut routine);
        self
    }

    /// Runs one parameterised benchmark. The input reference is passed
    /// through untouched; it exists so call sites match upstream.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |bencher| routine(bencher, input));
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let full_id = format!("{}/{}", self.name, id);
        if let Some(f) = self.filter {
            if !full_id.contains(f) {
                return;
            }
        }
        let mut bencher = Bencher { sample_size: self.sample_size, report: None };
        routine(&mut bencher);
        match bencher.report {
            Some(r) => println!(
                "{full_id}: {} iters x {} samples: min {}, median {}, mean {}",
                r.iters,
                self.sample_size,
                format_ns(r.min_ns),
                format_ns(r.median_ns),
                format_ns(r.mean_ns),
            ),
            None => println!("{full_id}: routine never called Bencher::iter"),
        }
    }
}

struct Report {
    iters: u64,
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
}

/// Timing harness passed to each benchmark routine.
pub struct Bencher {
    sample_size: usize,
    report: Option<Report>,
}

/// Wall-clock budget per collected sample; short routines batch enough
/// iterations to fill it so timer granularity stays negligible.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);

impl Bencher {
    /// Measures `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: one untimed warmup call, then estimate how many
        // iterations fit the per-sample budget.
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let min_ns = samples_ns[0];
        let median_ns = samples_ns[samples_ns.len() / 2];
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        self.report = Some(Report { iters, min_ns, median_ns, mean_ns });
    }
}

/// An identity function the optimiser cannot see through.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundles benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// The `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("matmul", 512).to_string(), "matmul/512");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn bencher_collects_samples_and_runs_routine() {
        let mut bencher = Bencher { sample_size: 3, report: None };
        let mut calls = 0u64;
        bencher.iter(|| {
            calls += 1;
            calls
        });
        let report = bencher.report.expect("report recorded");
        // 1 warmup + sample_size * iters timed calls.
        assert_eq!(calls, 1 + 3 * report.iters);
        assert!(report.min_ns <= report.median_ns);
        assert!(report.min_ns > 0.0);
    }

    #[test]
    fn filtered_out_benchmarks_do_not_run() {
        let mut group = BenchmarkGroup {
            name: "g".into(),
            sample_size: 2,
            filter: Some("nomatch"),
        };
        let mut ran = false;
        group.bench_function("skipped", |_| ran = true);
        assert!(!ran);
        let mut group = BenchmarkGroup {
            name: "g".into(),
            sample_size: 2,
            filter: Some("hit"),
        };
        group.bench_function("hit", |bench| {
            ran = true;
            bench.iter(|| 1 + 1);
        });
        assert!(ran);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_ns(12.0), "12 ns");
        assert_eq!(format_ns(1_500.0), "1.500 µs");
        assert_eq!(format_ns(2_000_000.0), "2.000 ms");
        assert_eq!(format_ns(3.2e9), "3.200 s");
    }
}

//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, serialisation goes through a
//! JSON-shaped data model, [`Content`]: [`Serialize`] lowers a value into
//! a `Content` tree and [`Deserialize`] rebuilds a value from one. The
//! companion `serde_json` stand-in converts `Content` to and from text.
//! The `derive` feature re-exports hand-rolled `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` macros for named-field structs (honouring
//! `#[serde(skip)]`) and unit-variant enums — the only shapes this
//! workspace serialises.

use std::collections::HashMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model values are lowered into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (always `< 0`; non-negatives use [`Content::U64`]).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered string-keyed map (struct fields keep declaration order).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a [`Content::Map`].
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a [`Content::Seq`].
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// JSON-flavoured alias for [`Content::as_seq`].
    pub fn as_array(&self) -> Option<&[Content]> {
        self.as_seq()
    }

    /// The string, if this is a [`Content::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`, accepting any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) => u64::try_from(v).ok(),
            Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::U64(v) => i64::try_from(v).ok(),
            Content::I64(v) => Some(v),
            Content::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// Looks up a struct field in decoded map entries (derive-generated code).
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialisation error: a human-readable message naming the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into the [`Content`] data model.
pub trait Serialize {
    /// The `Content` representation of `self`.
    fn serialize_content(&self) -> Content;
}

/// Types reconstructible from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value, or reports what was wrong with the input.
    fn deserialize_content(content: &Content) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                let v = c.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, got {c:?}"))
                })?;
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(format!("{v} overflows {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                let v = c.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {c:?}"))
                })?;
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(format!("{v} overflows {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        c.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {c:?}")))
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        Ok(f64::deserialize_content(c)? as f32)
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error::custom(format!("expected bool, got {c:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {c:?}")))
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {c:?}")))?
            .iter()
            .map(T::deserialize_content)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        let seq = c
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {c:?}")))?;
        if seq.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                seq.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::deserialize_content(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_content(&self) -> Content {
        // Sorted for output determinism; HashMap iteration order is not.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        c.as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {c:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_roundtrips() {
        assert_eq!(usize::deserialize_content(&42usize.serialize_content()), Ok(42));
        assert_eq!(i64::deserialize_content(&(-7i64).serialize_content()), Ok(-7));
        assert_eq!(f32::deserialize_content(&1.5f32.serialize_content()), Ok(1.5));
        assert!(u8::deserialize_content(&Content::U64(300)).is_err());
    }

    #[test]
    fn cross_numeric_coercion() {
        // A JSON parser may surface `1` as U64 where an f64 is expected.
        assert_eq!(f64::deserialize_content(&Content::U64(1)), Ok(1.0));
        assert_eq!(u64::deserialize_content(&Content::F64(3.0)), Ok(3));
        assert!(u64::deserialize_content(&Content::F64(3.5)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::deserialize_content(&v.serialize_content()), Ok(v));
        let arr = [1.0f64, 2.0, 3.0, 4.0];
        assert_eq!(<[f64; 4]>::deserialize_content(&arr.serialize_content()), Ok(arr));
        let none: Option<u32> = None;
        assert_eq!(none.serialize_content(), Content::Null);
        assert_eq!(Option::<u32>::deserialize_content(&Content::Null), Ok(None));
    }

    #[test]
    fn map_lookup_and_errors_name_the_problem() {
        let map = vec![("a".to_string(), Content::U64(1))];
        assert!(content_get(&map, "a").is_some());
        assert!(content_get(&map, "b").is_none());
        let err = bool::deserialize_content(&Content::U64(1)).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
    }
}

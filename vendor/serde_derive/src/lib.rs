//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde stand-in.
//!
//! Written without `syn`/`quote` (neither is available offline): the
//! item's `TokenStream` is walked by hand and the impl is emitted as a
//! formatted string parsed back into tokens. Supports exactly the two
//! shapes this workspace serialises — named-field structs (with
//! `#[serde(skip)]`, `#[serde(default)]` and `#[serde(default = "path")]`)
//! and unit-variant enums — and panics with a clear message on anything
//! else, at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct FieldAttrs {
    skip: bool,
    /// `Some(None)` is bare `default` (use `Default::default()`);
    /// `Some(Some(path))` is `default = "path"` (call `path()`).
    default: Option<Option<String>>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum Shape {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

/// Consumes leading `#[...]` attributes, collecting any
/// `#[serde(skip)]` / `#[serde(default)]` / `#[serde(default = "path")]`
/// markers.
fn eat_attributes(tokens: &[TokenTree], mut i: usize) -> (usize, FieldAttrs) {
    let mut attrs = FieldAttrs { skip: false, default: None };
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde")
                    {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            let arg_tokens: Vec<TokenTree> = args.stream().into_iter().collect();
                            let mut k = 0;
                            while k < arg_tokens.len() {
                                match &arg_tokens[k] {
                                    TokenTree::Ident(id) if id.to_string() == "skip" => {
                                        attrs.skip = true;
                                    }
                                    TokenTree::Ident(id) if id.to_string() == "default" => {
                                        let eq = matches!(
                                            arg_tokens.get(k + 1),
                                            Some(TokenTree::Punct(p)) if p.as_char() == '='
                                        );
                                        if eq {
                                            match arg_tokens.get(k + 2) {
                                                Some(TokenTree::Literal(lit)) => {
                                                    let path =
                                                        lit.to_string().trim_matches('"').to_string();
                                                    attrs.default = Some(Some(path));
                                                    k += 2;
                                                }
                                                other => panic!(
                                                    "serde_derive stand-in: `default =` must be \
                                                     followed by a string literal, found {other:?}"
                                                ),
                                            }
                                        } else {
                                            attrs.default = Some(None);
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                        }
                    }
                    i += 2;
                } else {
                    panic!("serde_derive: `#` not followed by an attribute group");
                }
            }
            _ => break,
        }
    }
    (i, attrs)
}

/// Consumes a visibility modifier (`pub`, `pub(crate)`, ...), if present.
fn eat_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Splits a brace-group body on commas, ignoring commas nested inside
/// angle brackets (`HashMap<String, usize>` is one field type, not two
/// fields — `<`/`>` are plain puncts, not token groups).
fn split_on_commas(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in body {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn parse_item(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = eat_attributes(&tokens, 0);
    i = eat_visibility(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;

    // The body is the first brace group after the name; anything between
    // (generics, where-clauses) is unsupported by this stand-in.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
                "serde_derive stand-in: `{name}` is generic; only plain structs/enums are supported"
            ),
            Some(_) => i += 1,
            None => panic!("serde_derive: `{name}` has no brace-delimited body"),
        }
    };

    match kind.as_str() {
        "struct" => {
            let fields = split_on_commas(body)
                .into_iter()
                .map(|chunk| {
                    let (mut j, attrs) = eat_attributes(&chunk, 0);
                    j = eat_visibility(&chunk, j);
                    let field_name = match chunk.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!(
                            "serde_derive stand-in: `{name}` must use named fields, found {other:?}"
                        ),
                    };
                    if !matches!(chunk.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == ':')
                    {
                        panic!(
                            "serde_derive stand-in: `{name}` must use named fields \
                             (`{field_name}` has no `:`)"
                        );
                    }
                    Field { name: field_name, attrs }
                })
                .collect();
            Shape::Struct { name, fields }
        }
        "enum" => {
            let variants = split_on_commas(body)
                .into_iter()
                .map(|chunk| {
                    let (j, _) = eat_attributes(&chunk, 0);
                    let variant = match chunk.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("serde_derive: expected variant name, found {other:?}"),
                    };
                    if chunk.len() > j + 1 {
                        panic!(
                            "serde_derive stand-in: enum `{name}` variant `{variant}` carries \
                             data; only unit variants are supported"
                        );
                    }
                    variant
                })
                .collect();
            Shape::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .filter(|f| !f.attrs.skip)
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::serialize_content(&self.{0})),",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",", name = name, v = v))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    if f.attrs.skip {
                        format!("{}: ::std::default::Default::default(),", f.name)
                    } else if let Some(default) = &f.attrs.default {
                        // Absent field falls back instead of erroring —
                        // how new fields stay loadable from old JSON.
                        let fallback = match default {
                            Some(path) => format!("{path}()"),
                            None => "::std::default::Default::default()".to_string(),
                        };
                        format!(
                            "{0}: match ::serde::content_get(map, \"{0}\") {{\
                                 ::std::option::Option::Some(c) => \
                                     ::serde::Deserialize::deserialize_content(c)?,\
                                 ::std::option::Option::None => {fallback},\
                             }},",
                            f.name
                        )
                    } else {
                        format!(
                            "{0}: ::serde::Deserialize::deserialize_content(\
                                 ::serde::content_get(map, \"{0}\").ok_or_else(|| \
                                     ::serde::Error::custom(\"{name}: missing field `{0}`\"))?\
                             )?,",
                            f.name,
                            name = name
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let map = content.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"{name}: expected map\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                        name = name,
                        v = v
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let tag = content.as_str().ok_or_else(|| \
                             ::serde::Error::custom(\"{name}: expected variant string\"))?;\n\
                         match tag {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated impl failed to parse")
}

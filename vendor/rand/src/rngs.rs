//! Seedable generators.

use crate::{RngCore, SeedableRng};

/// A fast, high-quality, deterministic generator: xoshiro256++.
///
/// Upstream rand's `StdRng` is ChaCha12; the streams differ, but every
/// use in this workspace only requires determinism in the seed.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn bits_look_balanced() {
        // A crude sanity check: over many draws roughly half the bits set.
        let mut r = StdRng::seed_from_u64(99);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        let ratio = ones as f64 / (1000.0 * 64.0);
        assert!((0.48..0.52).contains(&ratio), "bit ratio {ratio}");
    }
}

//! Sequence helpers: in-place shuffling and uniform element choice.

use crate::{Rng, RngCore};

/// Slice extensions mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform random element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle, in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rngs::StdRng, SeedableRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_covers_and_respects_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

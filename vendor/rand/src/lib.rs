//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`Rng`] with `gen` / `gen_range` / `gen_bool`, [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`]. The generator behind
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic in
//! the seed, but a different stream than upstream rand's ChaCha12.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// The raw entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the generator's raw bits (the
/// stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types `gen_range` can sample uniformly between two bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive && lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u64)
                    .wrapping_sub(lo as u64)
                    .wrapping_add(inclusive as u64);
                // Lemire's widening-multiply map from [0, 2^64) onto [0, span).
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges `gen_range` accepts (half-open and inclusive). A single
/// blanket impl per range shape, like upstream rand, so an integer
/// literal range unifies with the element type demanded by the caller
/// instead of falling back to `i32`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// The user-facing generator interface; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value of `T` drawn from the standard (uniform) distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically expands a `u64` into the full generator state.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..9);
            assert!((5..9).contains(&v));
            let w = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&w));
            let x = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

//! `fdctl` — command-line workflow around the fakedetector library.
//!
//! ```sh
//! fdctl generate --scale 0.05 --seed 42 --out corpus.json   # whole scales > 1 tile Table-1 shards
//! fdctl train    --corpus corpus.json --out model.json [--mode binary|multi] [--theta 0.5] [--epochs 60]
//!                [--checkpoint-dir ckpts/] [--checkpoint-every 5] [--checkpoint-keep 3] [--resume]
//!                [--batch-size 256 [--fanout 8] [--rounds 2]]  # neighbour-sampled minibatch mode
//! fdctl train    --scale 8 --out model.json [...]             # synthetic corpus, no corpus file
//! fdctl predict  --corpus corpus.json --model model.json [--out predictions.json]
//! fdctl evaluate --corpus corpus.json --model model.json
//! fdctl score    --corpus corpus.json --model model.json --text "..." [--creator 3] [--subjects 0,2]
//! fdctl serve    --corpus corpus.json --model model.json [--addr 127.0.0.1:7878] [--max-batch 32] [--max-delay-ms 2]
//!                [--precision f32|int8] [--max-ingest-nodes 256] [--shard i/n]
//! fdctl route    --shards "127.0.0.1:7878,127.0.0.1:7879;127.0.0.1:7880,127.0.0.1:7881"
//!                [--addr 127.0.0.1:7800] [--spool-dir jobs/] [--deadline-ms 5000] [--inflight-bound 256]
//!                [--attempt-timeout-ms 2000] [--hedge-delay-ms 300] [--max-attempts 3] [--backoff-ms 25]
//!                [--breaker-threshold 3] [--breaker-open-ms 1000] [--retry-ratio 0.1]
//!                [--probe-interval-ms 200] [--job-chunk 64]
//! fdctl ingest   --addr 127.0.0.1:7878 --payload batch.json        # POST a prepared IngestBatch
//! fdctl ingest   --addr 127.0.0.1:7878 --text "..." --creator 3 [--subjects 0,2]  # one article inline
//! fdctl ckpt     inspect ckpts/ckpt-00000005.fdck
//! fdctl trace    summarize trace.json
//! fdctl analyze  --corpus corpus.json
//! ```
//!
//! `serve` reloads the bundle from disk on `SIGHUP` without dropping
//! in-flight requests; `train --checkpoint-dir … --resume` continues a
//! killed run bit-exactly (see OPERATIONS.md, "Checkpoints & recovery").
//!
//! `route` fronts N shards × M replicas of `serve --shard i/n` with
//! health-probed failover, hedged retries under a token-bucket budget,
//! per-replica circuit breakers, and a crash-safe bulk-scoring job
//! queue (see OPERATIONS.md, "Distributed serving").
//!
//! The train bundle ([`TrainBundle`], shared with `fd-serve`) embeds
//! everything needed to rebuild the feature pipeline (train indices,
//! feature width, sequence length, label mode), so `predict`/`score`/
//! `serve` only need the corpus file and the bundle. `serve` flags and
//! env vars are documented in OPERATIONS.md.

use fakedetector::prelude::*;
use fakedetector::serve::{
    parse_mode, BundleSplit, Precision, ServeConfig, ServeModel, Server, TrainBundle,
};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!(
            "usage: fdctl <generate|train|predict|evaluate|score|serve|route|ingest|ckpt|trace|analyze|obs> [options]"
        );
        return ExitCode::FAILURE;
    };
    let result = if command == "ckpt" {
        cmd_ckpt(&args[1..])
    } else if command == "trace" {
        cmd_trace(&args[1..])
    } else {
        let opts = parse_options(&args[1..]);
        match command.as_str() {
            "generate" => cmd_generate(&opts),
            "train" => cmd_train(&opts),
            "predict" => cmd_predict(&opts),
            "evaluate" => cmd_evaluate(&opts),
            "score" => cmd_score(&opts),
            "serve" => cmd_serve(&opts),
            "route" => cmd_route(&opts),
            "ingest" => cmd_ingest(&opts),
            "analyze" => cmd_analyze(&opts),
            "obs" => cmd_obs(&opts),
            other => Err(format!("unknown command {other}")),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fdctl {command}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_options(args: &[String]) -> HashMap<String, String> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].trim_start_matches("--").to_string();
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            opts.insert(key, args[i + 1].clone());
            i += 2;
        } else {
            opts.insert(key, "true".to_string());
            i += 1;
        }
    }
    opts
}

fn opt_parse<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| format!("--{key}: cannot parse {raw:?}")),
    }
}

fn required<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key).map(String::as_str).ok_or_else(|| format!("--{key} is required"))
}

fn load_corpus(opts: &HashMap<String, String>) -> Result<Corpus, String> {
    let path = required(opts, "corpus")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Corpus::from_json(&json)
}

/// Checks a `--scale` value the way [`generate_at_scale`] will: scales
/// above 1 tile whole Table-1 shards, so they must be whole numbers.
fn validate_scale(scale: f64) -> Result<(), String> {
    if !scale.is_finite() || scale <= 0.0 {
        return Err(format!("--scale {scale}: must be positive"));
    }
    if scale > 1.0 && (scale - scale.round()).abs() > 1e-9 {
        return Err(format!("--scale {scale}: scales above 1 must be whole shard counts"));
    }
    Ok(())
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let scale: f64 = opt_parse(opts, "scale", 0.05)?;
    let seed: u64 = opt_parse(opts, "seed", 42)?;
    let out = required(opts, "out")?;
    validate_scale(scale)?;
    let corpus = generate_at_scale(&GeneratorConfig::politifact(), scale, seed);
    std::fs::write(out, corpus.to_json()).map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "wrote {out}: {} articles / {} creators / {} subjects",
        corpus.articles.len(),
        corpus.creators.len(),
        corpus.subjects.len()
    );
    Ok(())
}

fn pipeline(
    corpus: &Corpus,
    train: &TrainSets,
    explicit_dim: usize,
    seq_len: usize,
    max_vocab: usize,
) -> (TokenizedCorpus, ExplicitFeatures) {
    let tokenized = TokenizedCorpus::build(corpus, seq_len, max_vocab);
    let explicit = ExplicitFeatures::extract(corpus, &tokenized, train, explicit_dim);
    (tokenized, explicit)
}

fn cmd_train(opts: &HashMap<String, String>) -> Result<(), String> {
    let fit_options = fakedetector::core::FitOptions {
        checkpoint_dir: opts.get("checkpoint-dir").map(std::path::PathBuf::from),
        checkpoint_every: opt_parse(opts, "checkpoint-every", 5)?,
        checkpoint_keep: opt_parse(opts, "checkpoint-keep", 3)?,
        resume: opts.contains_key("resume"),
    };
    if fit_options.resume && fit_options.checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint-dir".into());
    }
    let out = required(opts, "out")?;
    let mode = parse_mode(opts.get("mode").map(String::as_str).unwrap_or("binary"))?;
    let theta: f64 = opt_parse(opts, "theta", 1.0)?;
    let seed: u64 = opt_parse(opts, "seed", 42)?;
    let epochs: usize = opt_parse(opts, "epochs", 60)?;
    let explicit_dim: usize = opt_parse(opts, "explicit-dim", 60)?;
    let seq_len: usize = opt_parse(opts, "seq-len", 12)?;
    let max_vocab: usize = opt_parse(opts, "max-vocab", 6000)?;
    // `--batch-size` selects the neighbour-sampled minibatch trainer;
    // `--fanout`/`--rounds` refine it and are meaningless without it.
    let train_mode = if opts.contains_key("batch-size") {
        let batch_size: usize = opt_parse(opts, "batch-size", 256)?;
        let fanout: usize = opt_parse(opts, "fanout", 8)?;
        let rounds: usize = opt_parse(opts, "rounds", 2)?;
        if batch_size == 0 || rounds == 0 {
            return Err("--batch-size and --rounds must be at least 1".into());
        }
        TrainMode::Sampled { batch_size, fanout, rounds }
    } else if opts.contains_key("fanout") || opts.contains_key("rounds") {
        return Err("--fanout/--rounds need --batch-size (sampled minibatch mode)".into());
    } else {
        TrainMode::Full
    };
    // `--corpus file` trains on a saved corpus; `--scale N` generates a
    // synthetic Table-1-shaped one in memory (whole scales > 1 tile
    // that many shards — the bounded-memory path scale_smoke.sh
    // exercises at 100k+ articles).
    let corpus = if opts.contains_key("corpus") {
        load_corpus(opts)?
    } else if opts.contains_key("scale") {
        let scale: f64 = opt_parse(opts, "scale", 1.0)?;
        validate_scale(scale)?;
        let corpus = generate_at_scale(&GeneratorConfig::politifact(), scale, seed);
        eprintln!(
            "generated synthetic corpus at scale {scale}: {} articles / {} creators / {} subjects",
            corpus.articles.len(),
            corpus.creators.len(),
            corpus.subjects.len()
        );
        corpus
    } else {
        return Err("--corpus or --scale is required".into());
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let folds = [
        CvSplits::new(corpus.articles.len(), 10.min(corpus.articles.len()), &mut rng),
        CvSplits::new(corpus.creators.len(), 10.min(corpus.creators.len()), &mut rng),
        CvSplits::new(corpus.subjects.len(), 10.min(corpus.subjects.len()), &mut rng),
    ];
    let train = TrainSets {
        articles: sample_ratio(&folds[0].fold(0).0, theta, &mut rng),
        creators: sample_ratio(&folds[1].fold(0).0, theta, &mut rng),
        subjects: sample_ratio(&folds[2].fold(0).0, theta, &mut rng),
    };

    let (tokenized, explicit) = pipeline(&corpus, &train, explicit_dim, seq_len, max_vocab);
    let ctx = ExperimentContext {
        corpus: &corpus,
        tokenized: &tokenized,
        explicit: &explicit,
        train: &train,
        mode,
        seed,
    };
    eprintln!(
        "training on {} articles / {} creators / {} subjects ({epochs} epochs)…",
        train.articles.len(),
        train.creators.len(),
        train.subjects.len()
    );
    if let TrainMode::Sampled { batch_size, fanout, rounds } = train_mode {
        eprintln!(
            "neighbour-sampled minibatches: batch_size {batch_size}, fanout {fanout}, \
             {rounds} hop(s)"
        );
    }
    if let Some(dir) = &fit_options.checkpoint_dir {
        eprintln!(
            "checkpointing to {} every {} epoch(s), keeping {}{}",
            dir.display(),
            fit_options.checkpoint_every.max(1),
            fit_options.checkpoint_keep.max(2),
            if fit_options.resume { ", resuming from the newest valid checkpoint" } else { "" }
        );
    }
    let config = FakeDetectorConfig { epochs, train_mode, ..FakeDetectorConfig::default() };
    let trained = FakeDetector::new(config).fit_with(&ctx, &fit_options)?;
    eprintln!(
        "loss {:.2} -> {:.2}",
        trained.report().losses.first().unwrap(),
        trained.report().losses.last().unwrap()
    );

    let bundle = TrainBundle {
        model_json: trained.to_json(),
        train: BundleSplit {
            articles: train.articles,
            creators: train.creators,
            subjects: train.subjects,
        },
        mode: fakedetector::serve::mode_name(mode).into(),
        explicit_dim,
        seq_len,
        max_vocab,
    };
    let json = serde_json::to_string(&bundle).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("{out}: {e}"))?;
    eprintln!("wrote {out}");
    if let Some(obs_out) = opts.get("obs-out") {
        std::fs::write(obs_out, fakedetector::obs::snapshot())
            .map_err(|e| format!("{obs_out}: {e}"))?;
        eprintln!("wrote {obs_out}");
    }
    flush_trace()
}

fn load_bundle(
    opts: &HashMap<String, String>,
    corpus: &Corpus,
) -> Result<
    (
        fakedetector::core::TrainedFakeDetector,
        TrainSets,
        LabelMode,
        TokenizedCorpus,
        ExplicitFeatures,
    ),
    String,
> {
    let path = required(opts, "model")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let bundle: TrainBundle = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    let trained = fakedetector::core::TrainedFakeDetector::from_json(&bundle.model_json)?;
    let train: TrainSets = bundle.train.into();
    let mode = parse_mode(&bundle.mode)?;
    let (tokenized, explicit) =
        pipeline(corpus, &train, bundle.explicit_dim, bundle.seq_len, bundle.max_vocab);
    Ok((trained, train, mode, tokenized, explicit))
}

fn cmd_predict(opts: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(opts)?;
    let (trained, train, mode, tokenized, explicit) = load_bundle(opts, &corpus)?;
    let ctx = ExperimentContext {
        corpus: &corpus,
        tokenized: &tokenized,
        explicit: &explicit,
        train: &train,
        mode,
        seed: 0,
    };
    let predictions = trained.predict(&ctx);
    let payload = serde_json::json!({
        "mode": if mode == LabelMode::Binary { "binary" } else { "multi" },
        "articles": predictions.articles,
        "creators": predictions.creators,
        "subjects": predictions.subjects,
    });
    match opts.get("out") {
        Some(out) => {
            std::fs::write(out, payload.to_string()).map_err(|e| format!("{out}: {e}"))?;
            eprintln!("wrote {out}");
        }
        None => println!("{payload}"),
    }
    Ok(())
}

fn cmd_evaluate(opts: &HashMap<String, String>) -> Result<(), String> {
    use fakedetector::metrics::{classification_report, ConfusionMatrix};
    use fakedetector::prelude::NodeType;

    let corpus = load_corpus(opts)?;
    let (trained, train, mode, tokenized, explicit) = load_bundle(opts, &corpus)?;
    let ctx = ExperimentContext {
        corpus: &corpus,
        tokenized: &tokenized,
        explicit: &explicit,
        train: &train,
        mode,
        seed: 0,
    };
    let predictions = trained.predict(&ctx);
    let binary_labels = ["fake", "credible"];
    let multi_labels: Vec<&str> = Credibility::ALL.iter().map(|l| l.name()).collect();
    let labels: Vec<&str> = match mode {
        LabelMode::Binary => binary_labels.to_vec(),
        LabelMode::MultiClass => multi_labels.clone(),
    };
    for (ty, name) in [
        (NodeType::Article, "articles"),
        (NodeType::Creator, "creators"),
        (NodeType::Subject, "subjects"),
    ] {
        let trained_set: std::collections::HashSet<usize> =
            train.for_type(ty).iter().copied().collect();
        let mut cm = ConfusionMatrix::new(mode.n_classes());
        let n = match ty {
            NodeType::Article => corpus.articles.len(),
            NodeType::Creator => corpus.creators.len(),
            NodeType::Subject => corpus.subjects.len(),
        };
        for idx in 0..n {
            if trained_set.contains(&idx) {
                continue;
            }
            let truth = match ty {
                NodeType::Article => corpus.articles[idx].label,
                NodeType::Creator => corpus.creators[idx].label,
                NodeType::Subject => corpus.subjects[idx].label,
            };
            cm.record(mode.target(truth), predictions.for_type(ty)[idx]);
        }
        println!("== held-out {name} ({} entities) ==", cm.total());
        println!("{}", classification_report(&cm, &labels));
    }
    Ok(())
}

fn cmd_score(opts: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(opts)?;
    let (trained, train, mode, tokenized, explicit) = load_bundle(opts, &corpus)?;
    let text = required(opts, "text")?;
    let creator: Option<usize> = match opts.get("creator") {
        Some(raw) => Some(raw.parse().map_err(|_| "--creator: not an index".to_string())?),
        None => None,
    };
    let subjects: Vec<usize> = match opts.get("subjects") {
        Some(raw) => raw
            .split(',')
            .map(|s| s.trim().parse().map_err(|_| format!("--subjects: bad index {s:?}")))
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    let ctx = ExperimentContext {
        corpus: &corpus,
        tokenized: &tokenized,
        explicit: &explicit,
        train: &train,
        mode,
        seed: 0,
    };
    let probs = trained.score_new_article(&ctx, text, creator, &subjects);
    match mode {
        LabelMode::Binary => {
            println!("p(credible) = {:.4}, p(fake) = {:.4}", probs[1], probs[0]);
        }
        LabelMode::MultiClass => {
            for (label, p) in Credibility::ALL.iter().zip(&probs) {
                println!("{:<15} {:.4}", label.name(), p);
            }
        }
    }
    Ok(())
}

/// Starts the inference server and blocks until SIGINT/SIGTERM, then
/// shuts down gracefully (drains the batching queue, completes every
/// in-flight request). All flags and the endpoint schemas are
/// documented in OPERATIONS.md.
fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let corpus_path = required(opts, "corpus")?;
    let model_path = required(opts, "model")?;
    let precision = Precision::parse(opts.get("precision").map(String::as_str).unwrap_or("f32"))?;
    let shard = match opts.get("shard") {
        Some(raw) => Some(parse_shard_spec(raw)?),
        None => None,
    };
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: opts.get("addr").cloned().unwrap_or(defaults.addr),
        max_batch: opt_parse(opts, "max-batch", defaults.max_batch)?,
        max_delay_ms: opt_parse(opts, "max-delay-ms", defaults.max_delay_ms)?,
        queue_bound: opt_parse(opts, "queue-bound", defaults.queue_bound)?,
        request_timeout_ms: opt_parse(opts, "request-timeout-ms", defaults.request_timeout_ms)?,
        max_body_bytes: opt_parse(opts, "max-body-bytes", defaults.max_body_bytes)?,
        max_ingest_nodes: opt_parse(opts, "max-ingest-nodes", defaults.max_ingest_nodes)?,
        shard,
    };
    if config.max_batch == 0 || config.queue_bound == 0 {
        return Err("--max-batch and --queue-bound must be at least 1".into());
    }

    eprintln!("loading {corpus_path} + {model_path}…");
    let model = Arc::new(ServeModel::load_with_precision(corpus_path, model_path, precision)?);
    let (articles, creators, subjects) = model.corpus_sizes();
    eprintln!("corpus: {articles} articles / {creators} creators / {subjects} subjects");
    eprintln!("serving precision: {}", precision.name());
    if let Some((index, total)) = shard {
        // Sharding partitions ownership by `id % total`; a corpus whose
        // smallest entity type has fewer entities than shards would
        // leave some shards owning nothing of that type — refuse it
        // cleanly rather than serve a degenerate tier.
        let smallest = articles.min(creators).min(subjects);
        if smallest < total {
            return Err(format!(
                "--shard {index}/{total}: corpus has only {smallest} entities of its smallest \
                 type ({articles} articles / {creators} creators / {subjects} subjects), fewer \
                 than {total} shards — use fewer shards or a larger corpus"
            ));
        }
        eprintln!("shard worker {index}/{total}: owns entities with id % {total} == {index}");
    }

    fakedetector::serve::install_signal_handlers();
    let server = Server::start(model, &config).map_err(|e| format!("serve: {e}"))?;
    eprintln!(
        "listening on {} (max_batch {}, max_delay {}ms, queue bound {})",
        server.local_addr(),
        config.max_batch,
        config.max_delay_ms,
        config.queue_bound
    );
    eprintln!(
        "endpoints: POST /v1/predict, POST /v1/predict_batch, POST /v1/ingest, GET /healthz, GET /metrics"
    );
    eprintln!(
        "SIGHUP reloads {model_path} without dropping in-flight requests (discards ingested nodes)"
    );
    while !fakedetector::serve::signal_received() {
        if fakedetector::serve::take_reload_request() {
            // Load the new bundle fully before swapping; a bad file on
            // disk must leave the old model serving untouched.
            eprintln!("SIGHUP: reloading {corpus_path} + {model_path}…");
            match ServeModel::load_with_precision(corpus_path, model_path, precision) {
                Ok(new_model) => {
                    server.swap_model(Arc::new(new_model));
                    eprintln!("reload complete");
                }
                Err(e) => eprintln!("reload failed, keeping the current model: {e}"),
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("signal received, draining…");
    server.shutdown();
    eprintln!("stopped");
    flush_trace()
}

/// Parses `--shard i/n` into `(index, total)`. All failure modes exit
/// with a clear message via `Err` rather than panicking: malformed
/// specs, a zero shard count, and an index outside `0..n`.
fn parse_shard_spec(raw: &str) -> Result<(usize, usize), String> {
    let (i, n) = raw
        .split_once('/')
        .ok_or_else(|| format!("--shard {raw:?}: expected the form i/n, e.g. --shard 0/2"))?;
    let index: usize = i
        .trim()
        .parse()
        .map_err(|_| format!("--shard {raw:?}: shard index {i:?} is not a number"))?;
    let total: usize = n
        .trim()
        .parse()
        .map_err(|_| format!("--shard {raw:?}: shard count {n:?} is not a number"))?;
    if total == 0 {
        return Err(format!("--shard {raw:?}: shard count must be at least 1"));
    }
    if index >= total {
        return Err(format!(
            "--shard {raw:?}: shard index {index} is out of range for {total} shard(s) \
             (valid: 0..={})",
            total - 1
        ));
    }
    Ok((index, total))
}

/// Starts the sharded-tier router and blocks until SIGINT/SIGTERM.
/// `--shards` lays out the tier: `;` separates shards, `,` separates a
/// shard's replicas (each a `host:port` running `fdctl serve --shard
/// i/n`). Failure-handling tunables map one-to-one onto
/// [`fd_router::DispatchConfig`]; the runbook in OPERATIONS.md
/// ("Distributed serving") explains how to size them.
fn cmd_route(opts: &HashMap<String, String>) -> Result<(), String> {
    use fd_router::{Router, RouterConfig, Topology};
    use std::time::Duration;

    let spec = required(opts, "shards")?;
    let topology = Topology::parse(spec)?;
    let mut config = RouterConfig::new(topology);
    config.addr = opts.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7800".to_string());
    config.deadline_ms = opt_parse(opts, "deadline-ms", config.deadline_ms)?;
    config.inflight_bound = opt_parse(opts, "inflight-bound", config.inflight_bound)?;
    config.max_body_bytes = opt_parse(opts, "max-body-bytes", config.max_body_bytes)?;
    config.probe_interval_ms = opt_parse(opts, "probe-interval-ms", config.probe_interval_ms)?;
    config.spool_dir = opts.get("spool-dir").map(std::path::PathBuf::from);
    config.job_chunk = opt_parse(opts, "job-chunk", config.job_chunk)?;
    config.job_chunk_deadline_ms =
        opt_parse(opts, "job-chunk-deadline-ms", config.job_chunk_deadline_ms)?;
    let d = &mut config.dispatch;
    d.attempt_timeout =
        Duration::from_millis(opt_parse(opts, "attempt-timeout-ms", millis(d.attempt_timeout))?);
    d.hedge_delay =
        Duration::from_millis(opt_parse(opts, "hedge-delay-ms", millis(d.hedge_delay))?);
    d.max_attempts = opt_parse(opts, "max-attempts", d.max_attempts)?;
    d.backoff_base = Duration::from_millis(opt_parse(opts, "backoff-ms", millis(d.backoff_base))?);
    d.breaker_threshold = opt_parse(opts, "breaker-threshold", d.breaker_threshold)?;
    d.breaker_open =
        Duration::from_millis(opt_parse(opts, "breaker-open-ms", millis(d.breaker_open))?);
    d.retry_ratio = opt_parse(opts, "retry-ratio", d.retry_ratio)?;
    if config.inflight_bound == 0 || config.job_chunk == 0 {
        return Err("--inflight-bound and --job-chunk must be at least 1".into());
    }
    if config.dispatch.max_attempts == 0 || config.dispatch.breaker_threshold == 0 {
        return Err("--max-attempts and --breaker-threshold must be at least 1".into());
    }
    if !config.dispatch.retry_ratio.is_finite() || config.dispatch.retry_ratio < 0.0 {
        return Err(format!(
            "--retry-ratio {}: must be a finite non-negative number",
            config.dispatch.retry_ratio
        ));
    }

    let shards = config.topology.shard_count();
    let replicas = config.topology.replica_count();
    let spool = config.spool_dir.clone();
    fakedetector::serve::install_signal_handlers();
    let router = Router::start(config).map_err(|e| format!("route: {e}"))?;
    eprintln!(
        "routing on {} across {shards} shard(s), {replicas} replica(s)",
        router.local_addr()
    );
    match &spool {
        Some(dir) => eprintln!("bulk jobs spooled to {} (POST /v1/jobs)", dir.display()),
        None => eprintln!("bulk jobs disabled (no --spool-dir)"),
    }
    eprintln!(
        "endpoints: POST /v1/predict, POST /v1/predict_batch, POST /v1/jobs, \
         GET /v1/jobs[/<id>[/results]], GET /healthz, GET /metrics"
    );
    while !fakedetector::serve::signal_received() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("signal received, draining…");
    router.shutdown();
    eprintln!("stopped");
    flush_trace()
}

/// `Duration` → whole milliseconds for flag defaults.
fn millis(d: std::time::Duration) -> u64 {
    d.as_millis() as u64
}

/// Posts an ingest batch to a running `fdctl serve` instance and prints
/// the server's report. Either `--payload batch.json` (a raw
/// [`IngestBatch`](fakedetector::serve::IngestBatch) document) or a
/// single inline article via `--text`/`--creator`/`--subjects`.
fn cmd_ingest(opts: &HashMap<String, String>) -> Result<(), String> {
    use fakedetector::serve::{HttpClient, IngestArticle, IngestBatch};

    let addr = opts.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let body = match (opts.get("payload"), opts.get("text")) {
        (Some(_), Some(_)) => {
            return Err("provide either --payload or --text, not both".into());
        }
        (Some(path), None) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        (None, Some(text)) => {
            let creator: usize = required(opts, "creator")?
                .parse()
                .map_err(|_| "--creator: not an index".to_string())?;
            let subjects: Vec<usize> = match opts.get("subjects") {
                Some(raw) => raw
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("--subjects: bad index {s:?}")))
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            };
            let batch = IngestBatch {
                creators: Vec::new(),
                subjects: Vec::new(),
                articles: vec![IngestArticle { text: text.clone(), creator, subjects }],
            };
            serde_json::to_string(&batch).map_err(|e| format!("encode batch: {e}"))?
        }
        (None, None) => return Err("--payload file.json or --text \"...\" is required".into()),
    };

    let mut client = HttpClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client
        .set_timeout(std::time::Duration::from_secs(60))
        .map_err(|e| format!("set timeout: {e}"))?;
    let (status, response) = client.post("/v1/ingest", &body).map_err(|e| format!("post: {e}"))?;
    println!("{response}");
    if status == 200 {
        Ok(())
    } else {
        Err(format!("server returned HTTP {status}"))
    }
}

/// `fdctl ckpt inspect <file>`: prints the checkpoint header, epoch
/// cursor, per-section checksums, and overall validity. Exits non-zero
/// when the file fails verification, so scripts can gate on it.
fn cmd_ckpt(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("inspect") => {
            let [_, path] = args else {
                return Err("usage: fdctl ckpt inspect <file.fdck>".into());
            };
            let path = std::path::Path::new(path);
            let report = fakedetector::ckpt::inspect(path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            print!("{}", report.render(path));
            if report.valid() {
                Ok(())
            } else {
                Err("checkpoint failed verification".into())
            }
        }
        Some(other) => Err(format!("unknown ckpt subcommand {other} (expected: inspect)")),
        None => Err("usage: fdctl ckpt inspect <file.fdck>".into()),
    }
}

/// One span pulled out of a Chrome `trace_event` file: enough to
/// reconstruct the parent/child tree and attribute self-time.
struct TraceSpan {
    name: String,
    dur_us: u64,
    span_id: u64,
    parent_id: u64,
    trace_id: u64,
}

/// Parses a Chrome `trace_event` JSON file (as written by
/// `FD_TRACE_FILE`) into flat spans. Errors on anything malformed —
/// this doubles as the well-formedness check `fdctl obs --check` runs.
fn parse_trace_file(path: &str) -> Result<Vec<TraceSpan>, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let events = parsed["traceEvents"]
        .as_seq()
        .ok_or_else(|| format!("{path}: no traceEvents array"))?;
    let hex_id = |content: Option<&serde::Content>, what: &str, i: usize| -> Result<u64, String> {
        let s = content
            .and_then(serde::Content::as_str)
            .ok_or_else(|| format!("{path}: event {i} missing args.{what}"))?;
        u64::from_str_radix(s, 16)
            .map_err(|_| format!("{path}: event {i} args.{what} is not a hex id: {s:?}"))
    };
    let mut spans = Vec::with_capacity(events.len());
    for (i, event) in events.iter().enumerate() {
        let fields = event.as_map().ok_or_else(|| format!("{path}: event {i} is not an object"))?;
        let get = |key: &str| serde::content_get(fields, key);
        let name = get("name")
            .and_then(serde::Content::as_str)
            .ok_or_else(|| format!("{path}: event {i} has no name"))?;
        if get("ph").and_then(serde::Content::as_str) != Some("X") {
            return Err(format!("{path}: event {i} is not a complete-span (ph=X) event"));
        }
        let ts = get("ts").and_then(serde::Content::as_u64);
        let dur = get("dur").and_then(serde::Content::as_u64);
        let (Some(_), Some(dur_us)) = (ts, dur) else {
            return Err(format!("{path}: event {i} missing numeric ts/dur"));
        };
        let args =
            get("args").and_then(serde::Content::as_map).ok_or_else(|| {
                format!("{path}: event {i} has no args (trace/span/parent ids)")
            })?;
        let arg = |key: &str| serde::content_get(args, key);
        spans.push(TraceSpan {
            name: name.to_string(),
            dur_us,
            span_id: hex_id(arg("span"), "span", i)?,
            parent_id: hex_id(arg("parent"), "parent", i)?,
            trace_id: hex_id(arg("trace"), "trace", i)?,
        });
    }
    if spans.is_empty() {
        return Err(format!("{path}: traceEvents is empty — was FD_TRACE on?"));
    }
    Ok(spans)
}

/// Nearest-rank percentile of a sorted slice; `sorted` must be
/// non-empty.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// `fdctl trace summarize <file>`: per-span-name profile of a Chrome
/// trace file — count, total and self time (total minus time spent in
/// child spans), and p50/p95/p99 of span duration. Self-time ranks the
/// table, so the phase actually burning the time tops it even when an
/// enclosing span (`train.fit`, `request`) covers the whole run.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("summarize") => {
            let [_, path] = args else {
                return Err("usage: fdctl trace summarize <trace.json>".into());
            };
            let spans = parse_trace_file(path)?;

            // Children's durations, keyed by (trace, parent span) —
            // subtracted from each parent to get self-time. Saturating:
            // clock skew between a parent's recorded window and its
            // children must not wrap.
            let mut child_time: HashMap<(u64, u64), u64> = HashMap::new();
            for span in &spans {
                *child_time.entry((span.trace_id, span.parent_id)).or_default() += span.dur_us;
            }

            struct NameStats {
                count: u64,
                total_us: u64,
                self_us: u64,
                durs: Vec<u64>,
            }
            let mut by_name: HashMap<&str, NameStats> = HashMap::new();
            let mut traces = std::collections::HashSet::new();
            for span in &spans {
                traces.insert(span.trace_id);
                let nested =
                    child_time.get(&(span.trace_id, span.span_id)).copied().unwrap_or(0);
                let stats = by_name.entry(span.name.as_str()).or_insert_with(|| NameStats {
                    count: 0,
                    total_us: 0,
                    self_us: 0,
                    durs: Vec::new(),
                });
                stats.count += 1;
                stats.total_us += span.dur_us;
                stats.self_us += span.dur_us.saturating_sub(nested);
                stats.durs.push(span.dur_us);
            }

            let mut rows: Vec<(&str, NameStats)> = by_name.into_iter().collect();
            rows.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then(a.0.cmp(b.0)));

            println!("{} spans, {} traces in {path}", spans.len(), traces.len());
            println!(
                "{:<18} {:>7} {:>12} {:>12} {:>10} {:>10} {:>10}",
                "span", "count", "total_ms", "self_ms", "p50_us", "p95_us", "p99_us"
            );
            for (name, mut stats) in rows {
                stats.durs.sort_unstable();
                println!(
                    "{:<18} {:>7} {:>12.3} {:>12.3} {:>10} {:>10} {:>10}",
                    name,
                    stats.count,
                    stats.total_us as f64 / 1000.0,
                    stats.self_us as f64 / 1000.0,
                    nearest_rank(&stats.durs, 0.50),
                    nearest_rank(&stats.durs, 0.95),
                    nearest_rank(&stats.durs, 0.99),
                );
            }
            Ok(())
        }
        Some(other) => Err(format!("unknown trace subcommand {other} (expected: summarize)")),
        None => Err("usage: fdctl trace summarize <trace.json>".into()),
    }
}

/// Drains the trace ring to `FD_TRACE_FILE` (when set) and reports the
/// written path on stderr. Commands call this on their way out so a
/// traced run always leaves a loadable file behind.
fn flush_trace() -> Result<(), String> {
    if let Some(path) = fakedetector::obs::trace::flush()? {
        eprintln!("wrote trace {path}");
    }
    Ok(())
}

fn cmd_analyze(opts: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(opts)?;
    println!(
        "{} articles / {} creators / {} subjects / {} topic links",
        corpus.articles.len(),
        corpus.creators.len(),
        corpus.subjects.len(),
        corpus.graph.n_subject_links()
    );
    let true_count = corpus.articles.iter().filter(|a| a.label.is_true_group()).count();
    println!(
        "article label balance: {:.1}% true group",
        100.0 * true_count as f64 / corpus.articles.len() as f64
    );
    println!("\ntop subjects:");
    for t in subject_tallies(&corpus).into_iter().take(10) {
        println!(
            "  {:<14} {:>5} articles, {:>4.1}% true",
            t.name,
            t.total(),
            100.0 * t.true_fraction()
        );
    }
    println!("\nmost prolific creators:");
    let mut by_volume: Vec<usize> = (0..corpus.creators.len()).collect();
    by_volume.sort_by_key(|&u| std::cmp::Reverse(corpus.graph.articles_of_creator(u).len()));
    for &u in by_volume.iter().take(5) {
        println!(
            "  {:<28} {:>4} articles, rated {}",
            corpus.creators[u].name,
            corpus.graph.articles_of_creator(u).len(),
            corpus.creators[u].label.name()
        );
    }
    Ok(())
}

/// Runs an instrumented smoke train (generate → featurise → fit →
/// predict → predict_proba), follows it with a short neighbour-sampled
/// pass, and writes the metrics snapshot to `--out` (default
/// `OBS_train.json`). With `--check` it additionally validates the
/// `FD_LOG_FILE` JSONL log, the snapshot's expected keys (including the
/// sampler/minibatch histograms), and — when `--bench BENCH_train.json`
/// is given — that file's provenance header; CI runs this under
/// `FD_LOG=debug`.
fn cmd_obs(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = opts.get("out").map(String::as_str).unwrap_or("OBS_train.json");
    let scale: f64 = opt_parse(opts, "scale", 0.02)?;
    let seed: u64 = opt_parse(opts, "seed", 42)?;
    let epochs: usize = opt_parse(opts, "epochs", 8)?;
    let check = opts.contains_key("check");

    let corpus = generate(&GeneratorConfig::politifact().scaled(scale), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let train = TrainSets {
        articles: CvSplits::new(corpus.articles.len(), 10.min(corpus.articles.len()), &mut rng)
            .fold(0)
            .0,
        creators: CvSplits::new(corpus.creators.len(), 10.min(corpus.creators.len()), &mut rng)
            .fold(0)
            .0,
        subjects: CvSplits::new(corpus.subjects.len(), 10.min(corpus.subjects.len()), &mut rng)
            .fold(0)
            .0,
    };
    let (tokenized, explicit) = pipeline(&corpus, &train, 60, 12, 6000);
    let ctx = ExperimentContext {
        corpus: &corpus,
        tokenized: &tokenized,
        explicit: &explicit,
        train: &train,
        mode: LabelMode::Binary,
        seed,
    };
    // No validation split: every configured epoch runs, so the snapshot
    // check below can pin the exact epoch count.
    let config =
        FakeDetectorConfig { epochs, validation_fraction: 0.0, ..FakeDetectorConfig::default() };
    let trained = FakeDetector::new(config).fit(&ctx);
    let predictions = trained.predict(&ctx);
    let _probas = trained.predict_proba(&ctx);
    eprintln!(
        "smoke train done: {} epochs, {} entities scored",
        trained.report().losses.len(),
        predictions.articles.len() + predictions.creators.len() + predictions.subjects.len()
    );

    // A short neighbour-sampled pass through the same pipeline, so the
    // sampler/minibatch instruments (`train.phase.sample_us`,
    // `train.sampler.*`) carry data the check can validate.
    let sampled_epochs = 2usize;
    let sampled_cfg = FakeDetectorConfig {
        epochs: sampled_epochs,
        validation_fraction: 0.0,
        train_mode: TrainMode::Sampled { batch_size: 16, fanout: 4, rounds: 2 },
        ..FakeDetectorConfig::default()
    };
    let sampled = FakeDetector::new(sampled_cfg).fit(&ctx);
    eprintln!("sampled smoke train done: {} epochs", sampled.report().losses.len());

    let snapshot = fakedetector::obs::snapshot();
    std::fs::write(out, &snapshot).map_err(|e| format!("{out}: {e}"))?;
    eprintln!("wrote {out}");
    flush_trace()?;
    if check {
        check_obs(&snapshot, epochs + sampled_epochs)?;
        if let Some(bench_path) = opts.get("bench") {
            check_bench_provenance(bench_path)?;
        }
        eprintln!("obs check passed");
    }
    Ok(())
}

/// Validates the provenance header of a `BENCH_train.json` written by
/// `report -- train`: the hardware fields every report must carry, the
/// corpus `scale`, and — when a scale sweep ran — per-point `scale`,
/// `articles` and `peak_rss_mb` so bounded-memory claims stay auditable.
fn check_bench_provenance(path: &str) -> Result<(), String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let bench =
        parsed.as_content().as_map().ok_or_else(|| format!("{path}: not a JSON object"))?;
    let field = |name: &str| -> Result<&serde::Content, String> {
        serde::content_get(bench, name)
            .ok_or_else(|| format!("{path}: provenance header missing {name:?}"))
    };
    if field("scale")?.as_f64().is_none() {
        return Err(format!("{path}: scale is not a number"));
    }
    if field("machine_threads")?.as_u64().is_none() {
        return Err(format!("{path}: machine_threads is not a number"));
    }
    for name in ["fd_threads_resolved", "simd_level", "generator"] {
        field(name)?;
    }
    let sweep = field("scale_sweep")?
        .as_seq()
        .ok_or_else(|| format!("{path}: scale_sweep is not an array"))?;
    for (i, point) in sweep.iter().enumerate() {
        let point =
            point.as_map().ok_or_else(|| format!("{path}: scale_sweep[{i}] not an object"))?;
        for name in ["scale", "articles", "sampled_epoch_ms", "peak_rss_mb"] {
            if serde::content_get(point, name).and_then(serde::Content::as_f64).is_none() {
                return Err(format!("{path}: scale_sweep[{i}] missing numeric {name}"));
            }
        }
    }
    eprintln!("bench provenance ok: {path} ({} scale-sweep points)", sweep.len());
    Ok(())
}

/// Asserts the snapshot and the `FD_LOG_FILE` JSONL log carry what an
/// instrumented smoke train must produce. `epochs` is the total across
/// both smoke passes (full-graph + neighbour-sampled). Fails with a
/// description of the first missing piece.
fn check_obs(snapshot: &str, epochs: usize) -> Result<(), String> {
    use fakedetector::obs::Level;

    let parsed: serde_json::Value =
        serde_json::from_str(snapshot).map_err(|e| format!("snapshot is not valid JSON: {e}"))?;
    let counters = parsed["counters"].as_map().ok_or("snapshot missing counters")?;
    let counter = |name: &str| -> Result<u64, String> {
        serde::content_get(counters, name)
            .and_then(serde::Content::as_u64)
            .ok_or_else(|| format!("snapshot missing counter {name}"))
    };
    let train_epochs = counter("train.epochs")?;
    if train_epochs != epochs as u64 {
        return Err(format!("train.epochs = {train_epochs}, expected {epochs}"));
    }
    for name in ["tensor.matmul.calls", "infer.predictions", "infer.proba"] {
        if counter(name)? == 0 {
            return Err(format!("counter {name} is zero"));
        }
    }
    if counter("tensor.par.dispatch_serial")? + counter("tensor.par.dispatch_parallel")? == 0 {
        return Err("no tensor.par dispatches recorded".into());
    }
    let histograms = parsed["histograms"].as_map().ok_or("snapshot missing histograms")?;
    let histogram_count = |name: &str| -> Result<u64, String> {
        let hist = serde::content_get(histograms, name)
            .and_then(serde::Content::as_map)
            .ok_or_else(|| format!("snapshot missing histogram {name}"))?;
        serde::content_get(hist, "count")
            .and_then(serde::Content::as_u64)
            .ok_or_else(|| format!("histogram {name} has no count"))
    };
    for name in ["train.epoch_us", "train.fit_us", "infer.predict_us", "infer.proba_us"] {
        if histogram_count(name)? == 0 {
            return Err(format!("histogram {name} is empty"));
        }
    }
    // Phase profiler: every epoch times its forward/backward/clip/
    // optimizer phases. Validate and checkpoint phases are registered
    // but stay empty here — the smoke train runs without a validation
    // split or checkpoint dir.
    for phase in ["forward", "backward", "clip", "optimizer"] {
        let name = format!("train.phase.{phase}_us");
        let count = histogram_count(&name)?;
        if count < epochs as u64 {
            return Err(format!("{name} recorded {count} laps, expected at least {epochs}"));
        }
    }
    for phase in ["validate", "checkpoint"] {
        histogram_count(&format!("train.phase.{phase}_us"))?;
    }
    // The neighbour-sampled smoke pass must populate the sampler
    // instruments: per-batch sampling time, the realised per-list
    // fan-out, and the compacted subgraph sizes.
    for name in [
        "train.phase.sample_us",
        "train.sampler.fanout",
        "train.sampler.subgraph_nodes",
        "train.sampler.subgraph_edges",
    ] {
        if histogram_count(name)? == 0 {
            return Err(format!("histogram {name} is empty"));
        }
    }

    // The Prometheus exposition of this very registry must parse under
    // our own validator — CI's scrape-format safety net.
    let samples = fakedetector::obs::validate_prometheus(&fakedetector::obs::prometheus_text())
        .map_err(|e| format!("prometheus exposition invalid: {e}"))?;
    if samples == 0 {
        return Err("prometheus exposition carried no samples".into());
    }

    // When this run was traced to a file, the file must be well-formed
    // Chrome JSON carrying the training phases.
    if fakedetector::obs::trace::enabled() {
        if let Ok(trace_path) = std::env::var("FD_TRACE_FILE") {
            let spans = parse_trace_file(&trace_path)?;
            for required in ["train.fit", "train.epoch", "train.forward", "train.backward"] {
                if !spans.iter().any(|s| s.name == required) {
                    return Err(format!("{trace_path}: no {required} span recorded"));
                }
            }
        }
    }

    if fakedetector::obs::level() < Level::Info {
        return Err("--check needs FD_LOG=info or debug for per-epoch events".into());
    }
    let log_path = std::env::var("FD_LOG_FILE")
        .map_err(|_| "--check needs FD_LOG_FILE so the JSONL log can be validated")?;
    let log = std::fs::read_to_string(&log_path).map_err(|e| format!("{log_path}: {e}"))?;
    let mut epoch_events = 0usize;
    for (lineno, line) in log.lines().enumerate() {
        let event: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| format!("{log_path}:{}: invalid JSON: {e}", lineno + 1))?;
        if event["ts_us"].as_u64().is_none() {
            return Err(format!("{log_path}:{}: event without ts_us", lineno + 1));
        }
        if event["event"].as_str() == Some("train.epoch") {
            epoch_events += 1;
        }
    }
    if epoch_events != epochs {
        return Err(format!("{log_path}: {epoch_events} train.epoch events, expected {epochs}"));
    }
    Ok(())
}

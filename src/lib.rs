//! # fakedetector
//!
//! A from-scratch Rust reproduction of **"FakeDetector: Effective Fake
//! News Detection with Deep Diffusive Neural Network"** (Zhang et al.,
//! ICDE 2020) — the model, every substrate it needs (tensor kernels,
//! autograd, NN layers, text pipeline, heterogeneous graph, synthetic
//! PolitiFact corpus), all five comparison baselines, and the experiment
//! harness that regenerates each table and figure of the paper.
//!
//! This crate is the convenience facade: it re-exports the workspace
//! crates under stable module names and hosts the runnable examples.
//!
//! ```
//! use fakedetector::prelude::*;
//!
//! let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), 42);
//! let tallies = subject_tallies(&corpus);
//! assert!(!tallies.is_empty());
//! ```

/// Structured logging, metrics and profiling hooks (`FD_LOG`).
pub use fd_obs as obs;

/// Dense f32 matrix kernels.
pub use fd_tensor as tensor;

/// Tape-based reverse-mode autodiff.
pub use fd_autograd as autograd;

/// Layers, parameter store, optimisers.
pub use fd_nn as nn;

/// Tokeniser, vocabulary, word sets, BoW, sequences.
pub use fd_text as text;

/// The News-HSN heterogeneous graph.
pub use fd_graph as graph;

/// Labels, synthetic corpus, splits, features, experiment interface.
pub use fd_data as data;

/// Classification metrics and result series.
pub use fd_metrics as metrics;

/// The five comparison methods.
pub use fd_baselines as baselines;

/// HFLU, GDU and the deep diffusive network.
pub use fd_core as core;

/// Durable checkpoints: crash-safe save/restore + fault injection.
pub use fd_ckpt as ckpt;

/// HTTP inference server with dynamic micro-batching (`fdctl serve`).
pub use fd_serve as serve;

/// The names almost every user of the library needs.
pub mod prelude {
    pub use fd_baselines::{
        default_baselines, DeepWalk, Line, Propagation, RnnBaseline, SvmBaseline,
    };
    pub use fd_core::{FakeDetector, FakeDetectorConfig, TrainMode};
    pub use fd_data::{
        creator_tally, generate, generate_at_scale, sample_ratio, subject_tallies,
        word_frequencies, Corpus, Credibility, CredibilityModel, CvSplits, ExperimentContext,
        ExplicitFeatures, GeneratorConfig, LabelMode, Predictions, TokenizedCorpus, TrainSets,
    };
    pub use fd_graph::{HetGraph, NodeRef, NodeType};
    pub use fd_metrics::{ConfusionMatrix, MetricKind, SweepResults};
}

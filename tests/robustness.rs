//! Failure-injection tests: degenerate corpora that models must survive
//! without panicking — empty texts, single-class supervision, isolated
//! entities, minimal training sets.

use fakedetector::prelude::*;
use fakedetector::graph::HetGraph;

/// A tiny hand-built corpus with deliberate pathologies:
/// * creator 2 has no articles;
/// * subject 2 has no articles;
/// * article 3 has empty text;
/// * creator 1 has an empty profile.
fn pathological_corpus() -> Corpus {
    let mut graph = HetGraph::new(6, 3, 3);
    for a in 0..6 {
        graph.set_author(a, a % 2); // creators 0 and 1 only
        graph.add_subject_link(a, a % 2); // subjects 0 and 1 only
    }
    let labels = [
        Credibility::True,
        Credibility::False,
        Credibility::MostlyTrue,
        Credibility::PantsOnFire,
        Credibility::HalfTrue,
        Credibility::MostlyFalse,
    ];
    let corpus = Corpus {
        articles: (0..6)
            .map(|i| fakedetector::data::Article {
                text: if i == 3 {
                    String::new()
                } else {
                    format!("budget report tax hoax fraud word{i}")
                },
                label: labels[i],
            })
            .collect(),
        creators: vec![
            fakedetector::data::Creator {
                name: "c0".into(),
                profile: "analyst economist".into(),
                label: Credibility::HalfTrue,
            },
            fakedetector::data::Creator {
                name: "c1".into(),
                profile: String::new(),
                label: Credibility::HalfTrue,
            },
            fakedetector::data::Creator {
                name: "orphan".into(),
                profile: "blogger".into(),
                label: Credibility::HalfTrue,
            },
        ],
        subjects: vec![
            fakedetector::data::Subject {
                name: "economy".into(),
                description: "jobs taxes growth".into(),
                label: Credibility::HalfTrue,
            },
            fakedetector::data::Subject {
                name: "health".into(),
                description: "insurance care".into(),
                label: Credibility::HalfTrue,
            },
            fakedetector::data::Subject {
                name: "empty-topic".into(),
                description: "unused".into(),
                label: Credibility::HalfTrue,
            },
        ],
        graph,
    };
    corpus
}

fn context_over(corpus: &Corpus, train: &TrainSets, mode: LabelMode) -> Vec<(String, Predictions)> {
    let tokenized = TokenizedCorpus::build(corpus, 8, 500);
    let explicit = ExplicitFeatures::extract(corpus, &tokenized, train, 10);
    let ctx = ExperimentContext {
        corpus,
        tokenized: &tokenized,
        explicit: &explicit,
        train,
        mode,
        seed: 3,
    };
    let mut out = Vec::new();
    let fd = FakeDetector::new(FakeDetectorConfig {
        epochs: 3,
        validation_fraction: 0.0,
        ..Default::default()
    });
    out.push(("FakeDetector".to_string(), fd.fit_predict(&ctx)));
    out.push(("svm".to_string(), SvmBaseline::default().fit_predict(&ctx)));
    out.push(("lp".to_string(), Propagation::default().fit_predict(&ctx)));
    out
}

#[test]
fn pathological_corpus_does_not_panic() {
    let corpus = pathological_corpus();
    corpus.validate().expect("pathological corpus is still structurally valid");
    let train = TrainSets {
        articles: vec![0, 1, 2, 3],
        creators: vec![0, 1],
        subjects: vec![0, 1],
    };
    for mode in [LabelMode::Binary, LabelMode::MultiClass] {
        for (name, preds) in context_over(&corpus, &train, mode) {
            assert_eq!(preds.articles.len(), 6, "{name}");
            assert_eq!(preds.creators.len(), 3, "{name}: orphan creator must be predicted too");
            assert_eq!(preds.subjects.len(), 3, "{name}: empty subject must be predicted too");
            for ty in NodeType::ALL {
                assert!(preds.for_type(ty).iter().all(|&p| p < mode.n_classes()), "{name}");
            }
        }
    }
}

#[test]
fn single_class_supervision_survives() {
    // Every training label in the same class: OvR SVM sees one empty
    // side, cross-entropy sees a constant target — nothing may panic.
    let corpus = pathological_corpus();
    let train = TrainSets {
        articles: vec![0, 2, 4], // all true-group
        creators: vec![0],
        subjects: vec![0],
    };
    for (name, preds) in context_over(&corpus, &train, LabelMode::Binary) {
        assert_eq!(preds.articles.len(), 6, "{name}");
    }
}

#[test]
fn minimal_training_set_survives() {
    let corpus = pathological_corpus();
    let train = TrainSets {
        articles: vec![5],
        creators: vec![],
        subjects: vec![],
    };
    // SVM/LP skip empty types; FakeDetector trains on one article.
    for (name, preds) in context_over(&corpus, &train, LabelMode::MultiClass) {
        assert_eq!(preds.articles.len(), 6, "{name}");
    }
}

#[test]
fn empty_text_encodes_to_valid_features() {
    let corpus = pathological_corpus();
    let tokenized = TokenizedCorpus::build(&corpus, 8, 500);
    // Article 3 has no text at all.
    assert!(tokenized.sequence(NodeType::Article, 3).iter().all(|&id| id == 0));
    let train = TrainSets { articles: vec![0, 1], creators: vec![0], subjects: vec![0] };
    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 10);
    let f = explicit.feature(NodeType::Article, 3);
    assert_eq!(f.cols(), 10);
    assert!(f.all_finite());
    assert_eq!(f.frobenius_norm(), 0.0, "empty text gives the zero vector");
}

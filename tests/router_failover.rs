//! Failover integration tests for the sharded serving tier, run
//! through the compiled `fdctl` binary: a router in front of 2 shards
//! × 2 replicas must survive `kill -9` of a replica mid-load with zero
//! client-visible failures (every response 200 and bitwise-identical
//! to a single-process control server), trip the killed replica's
//! circuit breaker, and walk it back to closed through the half-open
//! probe once the replica restarts on the same port. Also covers the
//! `--shard i/n` flag's failure modes: every bad spec must exit
//! non-zero with a clear message, never a panic.

use fakedetector::serve::HttpClient;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fdctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fdctl"))
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdctl-router-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Kills the child on drop so a panicking test never leaks servers.
struct Guard(Child);

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// A free TCP port, found by binding an ephemeral listener and
/// dropping it. The tier needs *fixed* ports (the router's topology is
/// static and the killed replica must restart on the same address), so
/// ephemeral binds inside the workers are not an option.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0").expect("probe port").local_addr().expect("addr").port()
}

fn generate_and_train(root: &Path) -> (PathBuf, PathBuf) {
    let corpus = root.join("corpus.json");
    let model = root.join("model.json");
    let out = fdctl()
        .args(["generate", "--scale", "0.02", "--seed", "11", "--out"])
        .arg(&corpus)
        .output()
        .expect("run fdctl generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    let out = fdctl()
        .args(["train", "--epochs", "2", "--corpus"])
        .arg(&corpus)
        .arg("--out")
        .arg(&model)
        .output()
        .expect("run fdctl train");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    (corpus, model)
}

fn spawn_worker(corpus: &Path, model: &Path, port: u16, shard: Option<&str>) -> Guard {
    let mut cmd = fdctl();
    cmd.arg("serve")
        .arg("--corpus")
        .arg(corpus)
        .arg("--model")
        .arg(model)
        .args(["--addr", &format!("127.0.0.1:{port}")]);
    if let Some(spec) = shard {
        cmd.args(["--shard", spec]);
    }
    Guard(cmd.stdout(Stdio::null()).stderr(Stdio::null()).spawn().expect("spawn fdctl serve"))
}

/// Polls `path` until it answers 200 or the timeout lapses.
fn wait_http_ok(addr: &str, path: &str, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if let Ok(mut client) = HttpClient::connect(addr) {
            if client.set_timeout(Duration::from_secs(5)).is_ok() {
                if let Ok((200, _)) = client.get(path) {
                    return true;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

fn get(addr: &str, path: &str) -> (u16, String) {
    let mut client = HttpClient::connect(addr).expect("connect");
    client.set_timeout(Duration::from_secs(10)).expect("timeout");
    client.get(path).expect("get")
}

/// The `fd_router_breaker_opens_total` sample from the router's
/// Prometheus exposition (0.0 when the counter has not fired yet and
/// is therefore absent).
fn breaker_opens(router_addr: &str) -> f64 {
    let (status, text) = get(router_addr, "/metrics");
    assert_eq!(status, 200, "metrics endpoint failed: {text}");
    text.lines()
        .find(|line| line.starts_with("fd_router_breaker_opens_total"))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|value| value.parse().ok())
        .unwrap_or(0.0)
}

#[test]
fn shard_flag_validation_errors_are_clean() {
    // None of these reach the corpus: the spec itself is bad, and the
    // process must exit non-zero with a pointed message, not a panic.
    for (spec, needle) in [
        ("3/2", "out of range"),
        ("2/2", "out of range"),
        ("0/0", "must be at least 1"),
        ("banana", "expected the form i/n"),
        ("1:2", "expected the form i/n"),
        ("x/2", "is not a number"),
        ("0/y", "is not a number"),
    ] {
        let out = fdctl()
            .args(["serve", "--corpus", "absent.json", "--model", "absent.json", "--shard", spec])
            .output()
            .expect("run fdctl serve");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!out.status.success(), "--shard {spec} must fail");
        assert!(stderr.contains(needle), "--shard {spec}: stderr lacks {needle:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "--shard {spec} panicked: {stderr}");
    }
}

#[test]
fn corpus_with_fewer_entities_than_shards_is_refused() {
    let root = tmp_root("tiny");
    let (corpus, model) = generate_and_train(&root);
    // The 0.02-scale corpus holds a few dozen entities of its smallest
    // type; 10000 shards cannot all own at least one.
    let out = fdctl()
        .arg("serve")
        .arg("--corpus")
        .arg(&corpus)
        .arg("--model")
        .arg(&model)
        .args(["--addr", "127.0.0.1:0", "--shard", "0/10000"])
        .output()
        .expect("run fdctl serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "a 10000-shard split of a tiny corpus must be refused");
    assert!(
        stderr.contains("fewer") && stderr.contains("10000"),
        "stderr should explain the entity shortfall: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "refusal must not be a panic: {stderr}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn replica_kill_under_load_is_invisible_and_recovers() {
    let root = tmp_root("failover");
    let (corpus, model) = generate_and_train(&root);

    // The tier: an unsharded control plus 2 shards × 2 replicas on
    // fixed ports, fronted by one router.
    let [control_port, s0r0, s0r1, s1r0, s1r1, router_port] =
        [free_port(), free_port(), free_port(), free_port(), free_port(), free_port()];
    let control = spawn_worker(&corpus, &model, control_port, None);
    let mut victim = spawn_worker(&corpus, &model, s0r0, Some("0/2"));
    let workers = [
        spawn_worker(&corpus, &model, s0r1, Some("0/2")),
        spawn_worker(&corpus, &model, s1r0, Some("1/2")),
        spawn_worker(&corpus, &model, s1r1, Some("1/2")),
    ];
    let control_addr = format!("127.0.0.1:{control_port}");
    for port in [control_port, s0r0, s0r1, s1r0, s1r1] {
        assert!(
            wait_http_ok(&format!("127.0.0.1:{port}"), "/healthz", Duration::from_secs(60)),
            "worker on port {port} never became healthy"
        );
    }
    let spec = format!("127.0.0.1:{s0r0},127.0.0.1:{s0r1};127.0.0.1:{s1r0},127.0.0.1:{s1r1}");
    let router_proc = Guard(
        fdctl()
            .args(["route", "--shards", &spec])
            .args(["--addr", &format!("127.0.0.1:{router_port}")])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn fdctl route"),
    );
    let router_addr = format!("127.0.0.1:{router_port}");
    assert!(
        wait_http_ok(&router_addr, "/healthz", Duration::from_secs(60)),
        "router never became healthy"
    );

    // The request mix: by-id readouts on both shards plus inductive
    // scoring, each answered once by the single-process control server
    // as the bitwise reference.
    let bodies: Vec<String> = (0..12)
        .map(|i| {
            if i % 3 == 0 {
                format!("{{\"id\":{i}}}")
            } else {
                format!("{{\"text\":\"claim {i} disputes the official numbers\",\"creator\":{}}}", i % 5)
            }
        })
        .collect();
    let reference: Vec<String> = bodies
        .iter()
        .map(|body| {
            let mut client = HttpClient::connect(&control_addr).expect("connect control");
            client.set_timeout(Duration::from_secs(30)).expect("timeout");
            let (status, response) = client.post("/v1/predict", body).expect("control post");
            assert_eq!(status, 200, "control request failed: {response}");
            response
        })
        .collect();

    // Continuous load from 6 keep-alive clients. Every response must
    // be a bitwise-identical 200 — the drill fails on the first
    // client-visible wobble, killed replica or not.
    let stop = Arc::new(AtomicBool::new(false));
    let bodies = Arc::new(bodies);
    let reference = Arc::new(reference);
    let clients: Vec<_> = (0..6)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let bodies = Arc::clone(&bodies);
            let reference = Arc::clone(&reference);
            let addr = router_addr.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(&addr).expect("connect router");
                client.set_timeout(Duration::from_secs(30)).expect("timeout");
                let mut sent = 0usize;
                let mut i = c;
                while !stop.load(Ordering::Relaxed) {
                    let body = &bodies[i % bodies.len()];
                    let (status, response) = client.post("/v1/predict", body).expect("post");
                    assert_eq!(status, 200, "client-visible failure during failover: {response}");
                    assert_eq!(
                        response,
                        reference[i % reference.len()],
                        "routed answer drifted from the single-process control"
                    );
                    sent += 1;
                    i += 1;
                }
                sent
            })
        })
        .collect();

    // Let the load warm up, then SIGKILL one shard-0 replica mid-load.
    std::thread::sleep(Duration::from_millis(500));
    let opens_before = breaker_opens(&router_addr);
    victim.0.kill().expect("kill -9 the victim replica");
    victim.0.wait().expect("reap the victim");
    std::thread::sleep(Duration::from_millis(2_000));
    stop.store(true, Ordering::Relaxed);
    let total: usize = clients.into_iter().map(|c| c.join().expect("load client")).sum();
    assert!(total > 50, "load harness barely ran ({total} requests)");

    let opens_after = breaker_opens(&router_addr);
    assert!(
        opens_after > opens_before,
        "the killed replica's breaker never tripped ({opens_before} -> {opens_after})"
    );

    // Restart the victim on the same port; the router's half-open
    // probe must fold it back in: healthz shows every replica up with
    // a closed breaker.
    victim = spawn_worker(&corpus, &model, s0r0, Some("0/2"));
    let deadline = Instant::now() + Duration::from_secs(60);
    let recovered = loop {
        let (status, body) = get(&router_addr, "/healthz");
        if status == 200 && !body.contains("\"up\":0") && !body.contains("\"breaker\":\"open\"") {
            break true;
        }
        if Instant::now() >= deadline {
            eprintln!("last healthz: {body}");
            break false;
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    assert!(recovered, "restarted replica never rejoined via the half-open probe");

    // And the tier still answers correctly end to end.
    let mut client = HttpClient::connect(&router_addr).expect("connect router");
    client.set_timeout(Duration::from_secs(30)).expect("timeout");
    for (body, expected) in bodies.iter().zip(reference.iter()) {
        let (status, response) = client.post("/v1/predict", body).expect("post");
        assert_eq!(status, 200, "post-recovery request failed: {response}");
        assert_eq!(&response, expected, "post-recovery answer drifted");
    }

    drop(victim);
    drop(router_proc);
    drop(workers);
    drop(control);
    let _ = std::fs::remove_dir_all(&root);
}

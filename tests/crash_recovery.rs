//! Crash/recovery integration tests through the compiled `fdctl`
//! binary: a training run killed (deterministically, via
//! `FD_FAULT=kill-after-ckpt`) right after a durable checkpoint and
//! restarted with `--resume` must finish with a final checkpoint that
//! is byte-for-byte identical to an uninterrupted control run. Also
//! covers `fdctl ckpt inspect` on valid and corrupted files.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fdctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fdctl"))
}

fn tmp_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdctl-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn train_cmd(corpus: &Path, out: &Path, ckpt_dir: &Path, epochs: &str) -> Command {
    let mut cmd = fdctl();
    cmd.arg("train")
        .arg("--corpus")
        .arg(corpus)
        .arg("--out")
        .arg(out)
        .args(["--epochs", epochs, "--mode", "binary", "--checkpoint-every", "1"])
        .arg("--checkpoint-dir")
        .arg(ckpt_dir);
    cmd
}

/// Newest checkpoint file in a directory, by epoch-encoded name.
fn latest_ckpt(dir: &Path) -> PathBuf {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("read checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "fdck"))
        .collect();
    files.sort();
    files.pop().unwrap_or_else(|| panic!("no checkpoints in {}", dir.display()))
}

#[test]
fn killed_training_resumes_to_bitwise_identical_checkpoint() {
    let root = tmp_root();
    let corpus = root.join("corpus.json");
    let out = fdctl()
        .args(["generate", "--scale", "0.012", "--seed", "7", "--out"])
        .arg(&corpus)
        .output()
        .expect("run fdctl generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));

    // Control: 4 epochs straight through.
    let control_dir = root.join("ckpt-control");
    let out = train_cmd(&corpus, &root.join("control.json"), &control_dir, "4")
        .output()
        .expect("run control train");
    assert!(out.status.success(), "control train failed: {}", String::from_utf8_lossy(&out.stderr));

    // Crash run: FD_FAULT aborts the process right after epoch 2's
    // checkpoint is durably on disk — a deterministic SIGKILL.
    let crash_dir = root.join("ckpt-crash");
    let crash_model = root.join("crash.json");
    let out = train_cmd(&corpus, &crash_model, &crash_dir, "4")
        .env("FD_FAULT", "kill-after-ckpt:2")
        .output()
        .expect("run crashing train");
    assert!(!out.status.success(), "the faulted run must die, not complete");
    assert!(!crash_model.exists(), "a killed run must not have written its bundle");
    let survived = latest_ckpt(&crash_dir);
    assert!(
        survived.file_name().is_some_and(|n| n == "ckpt-00000002.fdck"),
        "expected the epoch-2 checkpoint to be the newest survivor, found {}",
        survived.display()
    );

    // Resume from the wreckage with the same arguments.
    let out = train_cmd(&corpus, &crash_model, &crash_dir, "4")
        .arg("--resume")
        .output()
        .expect("run resumed train");
    assert!(out.status.success(), "resume failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(crash_model.exists());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("resuming from the newest valid checkpoint"),
        "resume should announce itself: {stderr}"
    );

    // The recovery guarantee: both runs end in the same durable state,
    // byte for byte.
    let control_final = latest_ckpt(&control_dir);
    let resumed_final = latest_ckpt(&crash_dir);
    assert_eq!(control_final.file_name(), resumed_final.file_name());
    let control_bytes = std::fs::read(&control_final).expect("read control checkpoint");
    let resumed_bytes = std::fs::read(&resumed_final).expect("read resumed checkpoint");
    assert_eq!(
        control_bytes, resumed_bytes,
        "final checkpoints must be byte-identical after crash + resume"
    );

    // `ckpt inspect` verifies the file and reports the epoch cursor.
    let out = fdctl()
        .args(["ckpt", "inspect"])
        .arg(&resumed_final)
        .output()
        .expect("run ckpt inspect");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "inspect failed on a valid file: {stdout}");
    assert!(stdout.contains("VALID"), "inspect output: {stdout}");
    assert!(stdout.contains("epoch"), "inspect output: {stdout}");

    // Corrupt one byte mid-file: inspect must flag it and exit nonzero.
    let corrupted = root.join("corrupted.fdck");
    let mut bytes = control_bytes;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&corrupted, &bytes).expect("write corrupted file");
    let out = fdctl()
        .args(["ckpt", "inspect"])
        .arg(&corrupted)
        .output()
        .expect("run ckpt inspect on corrupted file");
    assert!(!out.status.success(), "inspect must fail on a corrupted checkpoint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("INVALID"), "inspect output: {stdout}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn resume_flag_requires_checkpoint_dir() {
    let out = fdctl()
        .args(["train", "--corpus", "/nonexistent.json", "--out", "/tmp/x.json", "--resume"])
        .output()
        .expect("run fdctl train");
    assert!(!out.status.success());
    // The flag contract is checked before any file I/O.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--resume needs --checkpoint-dir"), "{stderr}");
}

//! Workspace-level integration: the full pipeline through the facade
//! crate — generate → tokenise → split → featurise → train every model →
//! score — plus serialisation round-trips across crate boundaries.

use fakedetector::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn pipeline(mode: LabelMode) -> (Corpus, TrainSets, TrainSets, Vec<(String, Predictions)>) {
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.012), 4242);
    let tokenized = TokenizedCorpus::build(&corpus, 10, 4000);
    let mut rng = StdRng::seed_from_u64(1);
    let a = CvSplits::new(corpus.articles.len(), 10, &mut rng);
    let c = CvSplits::new(corpus.creators.len(), 10, &mut rng);
    let s = CvSplits::new(corpus.subjects.len(), 6, &mut rng);
    let (a_train, a_test) = a.fold(0);
    let (c_train, c_test) = c.fold(0);
    let (s_train, s_test) = s.fold(0);
    let train = TrainSets { articles: a_train, creators: c_train, subjects: s_train };
    let test = TrainSets { articles: a_test, creators: c_test, subjects: s_test };
    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 40);
    let ctx = ExperimentContext {
        corpus: &corpus,
        tokenized: &tokenized,
        explicit: &explicit,
        train: &train,
        mode,
        seed: 17,
    };

    let mut outputs = Vec::new();
    let fd = FakeDetector::new(FakeDetectorConfig { epochs: 5, ..Default::default() });
    outputs.push((fd.name().to_string(), fd.fit_predict(&ctx)));
    for model in [
        Box::new(SvmBaseline::default()) as Box<dyn CredibilityModel>,
        Box::new(Propagation::default()),
    ] {
        outputs.push((model.name().to_string(), model.fit_predict(&ctx)));
    }
    (corpus, train, test, outputs)
}

#[test]
fn full_binary_pipeline_runs_and_scores() {
    let (corpus, _train, test, outputs) = pipeline(LabelMode::Binary);
    assert_eq!(outputs.len(), 3);
    for (name, preds) in &outputs {
        let mut cm = ConfusionMatrix::new(2);
        for &i in &test.articles {
            cm.record(
                LabelMode::Binary.target(corpus.articles[i].label),
                preds.articles[i],
            );
        }
        assert_eq!(cm.total() as usize, test.articles.len(), "{name}");
        // Any trained model should at least produce both classes' worth
        // of structure — accuracy must be a valid probability.
        let acc = cm.accuracy();
        assert!((0.0..=1.0).contains(&acc), "{name}: accuracy {acc}");
    }
}

#[test]
fn full_multiclass_pipeline_runs() {
    let (_, _, _, outputs) = pipeline(LabelMode::MultiClass);
    for (name, preds) in &outputs {
        assert!(
            preds.articles.iter().all(|&p| p < 6),
            "{name}: out-of-range class"
        );
    }
}

#[test]
fn corpus_roundtrips_through_json_across_crates() {
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.012), 7);
    let json = corpus.to_json();
    let back = Corpus::from_json(&json).expect("roundtrip");
    assert_eq!(back.articles.len(), corpus.articles.len());
    assert_eq!(
        back.graph.n_subject_links(),
        corpus.graph.n_subject_links()
    );
    // Labels and graph structure intact ⇒ derived scores identical.
    for u in 0..corpus.creators.len() {
        assert_eq!(back.creator_mean_score(u), corpus.creator_mean_score(u));
    }
}

#[test]
fn sweep_results_roundtrip_through_json() {
    let mut results = SweepResults::new("articles", "bi-class", vec![0.1, 1.0]);
    results.push("FakeDetector", vec![[0.6, 0.7, 0.65, 0.75], [0.7, 0.75, 0.7, 0.8]]);
    let back: SweepResults = serde_json::from_str(&results.to_json()).unwrap();
    assert_eq!(
        back.value("FakeDetector", 1, MetricKind::Accuracy),
        Some(0.7)
    );
}

#[test]
fn prelude_exposes_the_documented_api() {
    // Compile-time check that the facade stays complete: every name the
    // README examples use must resolve through the prelude.
    let _ = GeneratorConfig::politifact;
    let _ = FakeDetectorConfig::default;
    let _ = default_baselines;
    let _: fn(&[usize], f64, &mut StdRng) -> Vec<usize> = sample_ratio;
    let _ = Credibility::ALL;
    let _ = NodeType::ALL;
}

//! End-to-end test of the `fdctl` binary: generate → train → predict →
//! score, all through the compiled CLI in a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn fdctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fdctl"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fdctl-test");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn full_cli_workflow() {
    let corpus = tmp("corpus.json");
    let model = tmp("model.json");
    let preds = tmp("predictions.json");

    // generate
    let out = fdctl()
        .args(["generate", "--scale", "0.012", "--seed", "7", "--out"])
        .arg(&corpus)
        .output()
        .expect("run fdctl generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(corpus.exists());

    // train (few epochs to keep the test quick)
    let out = fdctl()
        .args(["train", "--corpus"])
        .arg(&corpus)
        .args(["--out"])
        .arg(&model)
        .args(["--epochs", "4", "--mode", "binary"])
        .output()
        .expect("run fdctl train");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    // predict
    let out = fdctl()
        .args(["predict", "--corpus"])
        .arg(&corpus)
        .args(["--model"])
        .arg(&model)
        .args(["--out"])
        .arg(&preds)
        .output()
        .expect("run fdctl predict");
    assert!(out.status.success(), "predict failed: {}", String::from_utf8_lossy(&out.stderr));
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&preds).unwrap()).unwrap();
    assert_eq!(parsed["mode"], "binary");
    assert!(parsed["articles"].as_array().unwrap().len() > 100);

    // score a new statement
    let out = fdctl()
        .args(["score", "--corpus"])
        .arg(&corpus)
        .args(["--model"])
        .arg(&model)
        .args(["--text", "federal budget report unemployment data", "--creator", "0"])
        .output()
        .expect("run fdctl score");
    assert!(out.status.success(), "score failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("p(credible)"), "unexpected score output: {stdout}");

    // evaluate held-out entities
    let out = fdctl()
        .args(["evaluate", "--corpus"])
        .arg(&corpus)
        .args(["--model"])
        .arg(&model)
        .output()
        .expect("run fdctl evaluate");
    assert!(out.status.success(), "evaluate failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("held-out articles"), "unexpected evaluate output: {stdout}");
    assert!(stdout.contains("precision"));

    // analyze
    let out = fdctl()
        .args(["analyze", "--corpus"])
        .arg(&corpus)
        .output()
        .expect("run fdctl analyze");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("top subjects"));
}

#[test]
fn cli_reports_errors_cleanly() {
    // Unknown command.
    let out = fdctl().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required option.
    let out = fdctl().args(["generate", "--scale", "0.01"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out is required"));

    // Missing corpus file.
    let out = fdctl()
        .args(["analyze", "--corpus", "/nonexistent/corpus.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

//! Microbench: the synthetic PolitiFact generator at several scales
//! (the fixed cost every experiment pays first).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_data::{generate, GeneratorConfig, TokenizedCorpus};
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_generate");
    group.sample_size(10);
    for &scale in &[0.02f64, 0.08, 0.25] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scale),
            &scale,
            |bench, &scale| {
                let cfg = GeneratorConfig::politifact().scaled(scale);
                bench.iter(|| black_box(generate(&cfg, 42).articles.len()))
            },
        );
    }
    group.finish();
}

fn bench_tokenize_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_tokenize");
    group.sample_size(10);
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.08), 42);
    group.bench_function("scale0.08_q12", |bench| {
        bench.iter(|| black_box(TokenizedCorpus::build(&corpus, 12, 6000).vocab.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_generate, bench_tokenize_corpus);
criterion_main!(benches);

//! Microbenches for the fd-tensor kernels the training loops live on.
//!
//! The matmul family is benched three ways per shape: the reference
//! scalar kernel (`*_naive`), the cache-blocked kernel pinned to one
//! thread, and the same kernel with the row-parallel driver at four
//! threads — so a single run shows both the blocking win and the
//! threading win (the latter is only visible on multi-core hosts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_tensor::parallel::with_thread_count;
use fd_tensor::{softmax_rows, Matrix};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn rand_m(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    fd_tensor::uniform_in(rows, cols, -1.0, 1.0, &mut rng)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for &n in &[16usize, 64, 128, 256] {
        let a = rand_m(n, n, 1);
        let b = rand_m(n, n, 2);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_naive(&b)));
        });
        group.bench_with_input(BenchmarkId::new("blocked_1t", n), &n, |bench, _| {
            bench.iter(|| with_thread_count(1, || black_box(a.matmul(&b))));
        });
        group.bench_with_input(BenchmarkId::new("blocked_4t", n), &n, |bench, _| {
            bench.iter(|| with_thread_count(4, || black_box(a.matmul(&b))));
        });
    }
    // The hot shape in training: a 1xK row against a KxH weight.
    let row = rand_m(1, 84, 3);
    let w = rand_m(84, 24, 4);
    group.bench_function("row_1x84_by_84x24", |bench| {
        bench.iter(|| black_box(row.matmul(&w)));
    });
    group.finish();
}

fn bench_fused_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_transpose");
    group.sample_size(20);
    for &n in &[64usize, 256] {
        let a = rand_m(n, n, 5);
        let b = rand_m(n, n, 6);
        group.bench_with_input(BenchmarkId::new("transpose_matmul_naive", n), &n, |bench, _| {
            bench.iter(|| black_box(a.transpose_matmul_naive(&b)));
        });
        group.bench_with_input(BenchmarkId::new("transpose_matmul_1t", n), &n, |bench, _| {
            bench.iter(|| with_thread_count(1, || black_box(a.transpose_matmul(&b))));
        });
        group.bench_with_input(BenchmarkId::new("transpose_matmul_4t", n), &n, |bench, _| {
            bench.iter(|| with_thread_count(4, || black_box(a.transpose_matmul(&b))));
        });
        group.bench_with_input(BenchmarkId::new("matmul_transpose_naive", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_transpose_naive(&b)));
        });
        group.bench_with_input(BenchmarkId::new("matmul_transpose_1t", n), &n, |bench, _| {
            bench.iter(|| with_thread_count(1, || black_box(a.matmul_transpose(&b))));
        });
    }
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("elementwise");
    group.sample_size(30);
    let a = rand_m(1, 4096, 7);
    let b = rand_m(1, 4096, 8);
    group.bench_function("add_4096", |bench| bench.iter(|| black_box(a.add(&b))));
    group.bench_function("mul_4096", |bench| bench.iter(|| black_box(a.mul(&b))));
    let mut acc = rand_m(1, 4096, 9);
    group.bench_function("axpy_4096", |bench| {
        bench.iter(|| {
            acc.add_assign_scaled(&b, 0.5);
            black_box(&acc);
        })
    });
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax");
    group.sample_size(30);
    let logits = rand_m(256, 6, 10);
    group.bench_function("rows_256x6", |bench| {
        bench.iter(|| black_box(softmax_rows(&logits)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_fused_transpose,
    bench_elementwise,
    bench_softmax
);
criterion_main!(benches);

//! Microbenches for the text pipeline: tokenisation, vocabulary build,
//! χ² word-set extraction and bag-of-words featurisation.

use criterion::{criterion_group, criterion_main, Criterion};
use fd_data::{generate, GeneratorConfig};
use fd_text::{bow_features, chi_squared_scores, Tokenizer, Vocab, WordSet};
use std::hint::black_box;

fn bench_text(c: &mut Criterion) {
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.05), 1);
    let tokenizer = Tokenizer::default();
    let docs: Vec<Vec<String>> = corpus
        .articles
        .iter()
        .map(|a| tokenizer.tokenize(&a.text))
        .collect();
    let labels: Vec<bool> = corpus.articles.iter().map(|a| a.label.is_true_group()).collect();

    let mut group = c.benchmark_group("text_pipeline");
    group.sample_size(10);
    group.bench_function("tokenize_700_articles", |bench| {
        bench.iter(|| {
            let n: usize = corpus
                .articles
                .iter()
                .map(|a| tokenizer.tokenize(&a.text).len())
                .sum();
            black_box(n)
        })
    });
    group.bench_function("vocab_build", |bench| {
        bench.iter(|| black_box(Vocab::build(docs.iter().cloned(), 2, 6000).len()))
    });
    group.bench_function("chi2_scores", |bench| {
        bench.iter(|| black_box(chi_squared_scores(&docs, &labels).len()))
    });
    let word_set = WordSet::extract(&docs, &labels, 60);
    group.bench_function("bow_700_articles", |bench| {
        bench.iter(|| {
            let s: f32 = docs.iter().map(|d| bow_features(d, &word_set).sum()).sum();
            black_box(s)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_text);
criterion_main!(benches);

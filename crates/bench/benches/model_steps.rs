//! Macro-ish benches: one full training epoch / inference pass of each
//! model family on a tiny corpus — the numbers that predict sweep
//! wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use fd_baselines::{CredibilityModel, Propagation, SvmBaseline};
use fd_bench::{prepare, SweepConfig};
use fd_core::{FakeDetector, FakeDetectorConfig};
use fd_data::{ExperimentContext, ExplicitFeatures, LabelMode};
use fd_tensor::parallel::with_thread_count;
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let config = SweepConfig { scale: 0.012, folds: 1, ..SweepConfig::default() };
    let prepared = prepare(&config);
    let (train, _test) = prepared.split(0, 1.0, config.seed);
    let explicit =
        ExplicitFeatures::extract(&prepared.corpus, &prepared.tokenized, &train, 60);
    let ctx = ExperimentContext {
        corpus: &prepared.corpus,
        tokenized: &prepared.tokenized,
        explicit: &explicit,
        train: &train,
        mode: LabelMode::Binary,
        seed: 7,
    };

    let mut group = c.benchmark_group("model_fits_tiny");
    group.sample_size(10);
    group.bench_function("label_propagation", |bench| {
        let model = Propagation::default();
        bench.iter(|| black_box(model.fit_predict(&ctx).articles.len()))
    });
    group.bench_function("svm", |bench| {
        let model = SvmBaseline::default();
        bench.iter(|| black_box(model.fit_predict(&ctx).articles.len()))
    });
    group.bench_function("fakedetector_3_epochs", |bench| {
        let model = FakeDetector::new(FakeDetectorConfig {
            epochs: 3,
            ..FakeDetectorConfig::default()
        });
        bench.iter(|| black_box(model.fit_predict(&ctx).articles.len()))
    });
    group.finish();

    // Training: one full-graph epoch, the per-node reference tape vs the
    // batched matrix-level graph. Both produce bit-comparable losses;
    // the spread is the tentpole batching win.
    let mut group = c.benchmark_group("model_epoch_tiny");
    group.sample_size(10);
    let epoch_config = |batched| FakeDetectorConfig {
        epochs: 1,
        validation_fraction: 0.0,
        batched_training: batched,
        ..FakeDetectorConfig::default()
    };
    group.bench_function("per_node_tape", |bench| {
        let model = FakeDetector::new(epoch_config(false));
        bench.iter(|| black_box(model.fit(&ctx).report().losses.len()))
    });
    group.bench_function("batched_1t", |bench| {
        let model = FakeDetector::new(epoch_config(true));
        bench.iter(|| with_thread_count(1, || black_box(model.fit(&ctx).report().losses.len())))
    });
    group.bench_function("batched_4t", |bench| {
        let model = FakeDetector::new(epoch_config(true));
        bench.iter(|| with_thread_count(4, || black_box(model.fit(&ctx).report().losses.len())))
    });
    group.finish();

    // Inference: the per-node tape replay against the batched tape-free
    // path, serial and at four threads. These return identical
    // predictions; the spread is pure kernel/batching win.
    let trained = FakeDetector::new(FakeDetectorConfig {
        epochs: 1,
        ..FakeDetectorConfig::default()
    })
    .fit(&ctx);
    let mut group = c.benchmark_group("model_predict_tiny");
    group.sample_size(10);
    group.bench_function("per_node_tape", |bench| {
        bench.iter(|| black_box(trained.predict_per_node(&ctx).articles.len()))
    });
    group.bench_function("batched_1t", |bench| {
        bench.iter(|| with_thread_count(1, || black_box(trained.predict(&ctx).articles.len())))
    });
    group.bench_function("batched_4t", |bench| {
        bench.iter(|| with_thread_count(4, || black_box(trained.predict(&ctx).articles.len())))
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);

//! Microbenches for the recurrent cells: one GRU step and one GDU step,
//! forward-only and forward+backward — the inner loop of every training
//! epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use fd_autograd::Tape;
use fd_core::GduCell;
use fd_nn::{Binding, GruCell, Params};
use fd_tensor::parallel::with_thread_count;
use fd_tensor::Matrix;
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn bench_gru_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("gru_step");
    group.sample_size(30);
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(1);
    let cell = GruCell::new(&mut params, "g", 16, 24, &mut rng);
    let x_val = Matrix::filled(1, 16, 0.3);

    group.bench_function("forward", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let bind = Binding::new(&tape, &params);
            let h0 = cell.zero_state(&bind);
            let x = tape.leaf(x_val.clone());
            black_box(tape.value(cell.step(&bind, x, h0)))
        })
    });
    group.bench_function("forward_backward_8steps", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let bind = Binding::new(&tape, &params);
            let mut h = cell.zero_state(&bind);
            for _ in 0..8 {
                let x = tape.leaf(x_val.clone());
                h = cell.step(&bind, x, h);
            }
            let loss = tape.square_norm(h);
            tape.backward(loss);
            black_box(bind.grads().len())
        })
    });
    group.finish();
}

fn bench_gdu_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("gdu_step");
    group.sample_size(30);
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(2);
    let cell = GduCell::new(&mut params, "gdu", 84, 24, &mut rng);
    let x_val = Matrix::filled(1, 84, 0.2);
    let n_val = Matrix::filled(1, 24, -0.1);

    group.bench_function("forward", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let bind = Binding::new(&tape, &params);
            let x = tape.leaf(x_val.clone());
            let z = tape.leaf(n_val.clone());
            let t = tape.leaf(n_val.clone());
            black_box(tape.value(cell.forward(&bind, x, z, t, true)))
        })
    });
    group.bench_function("forward_backward", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let bind = Binding::new(&tape, &params);
            let x = tape.leaf(x_val.clone());
            let z = tape.leaf(n_val.clone());
            let t = tape.leaf(n_val.clone());
            let h = cell.forward(&bind, x, z, t, true);
            let loss = tape.square_norm(h);
            tape.backward(loss);
            black_box(bind.grads().len())
        })
    });
    group.bench_function("forward_no_gates", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let bind = Binding::new(&tape, &params);
            let x = tape.leaf(x_val.clone());
            let z = tape.leaf(n_val.clone());
            let t = tape.leaf(n_val.clone());
            black_box(tape.value(cell.forward(&bind, x, z, t, false)))
        })
    });
    group.finish();
}

/// 256 GDU evaluations: one tape pass per node (how training runs)
/// against a single batched tape-free `forward_matrix` (how inference
/// runs), serial and at four threads. The outputs are bit-identical.
fn bench_gdu_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("gdu_batched_256");
    group.sample_size(20);
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(3);
    let cell = GduCell::new(&mut params, "gdu", 84, 24, &mut rng);
    let n = 256;
    let x_val = fd_tensor::uniform_in(n, 84, -1.0, 1.0, &mut rng);
    let z_val = fd_tensor::uniform_in(n, 24, -1.0, 1.0, &mut rng);
    let t_val = fd_tensor::uniform_in(n, 24, -1.0, 1.0, &mut rng);

    group.bench_function("per_node_tape", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let bind = Binding::new(&tape, &params);
            let mut sum = 0.0f32;
            for i in 0..n {
                let x = tape.leaf(x_val.row_matrix(i));
                let z = tape.leaf(z_val.row_matrix(i));
                let t = tape.leaf(t_val.row_matrix(i));
                sum += tape.with_value(cell.forward(&bind, x, z, t, true), |m| m[(0, 0)]);
            }
            black_box(sum)
        })
    });
    group.bench_function("batched_1t", |bench| {
        bench.iter(|| {
            with_thread_count(1, || {
                black_box(cell.forward_matrix(&params, &x_val, &z_val, &t_val, true))
            })
        })
    });
    group.bench_function("batched_4t", |bench| {
        bench.iter(|| {
            with_thread_count(4, || {
                black_box(cell.forward_matrix(&params, &x_val, &z_val, &t_val, true))
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gru_step, bench_gdu_step, bench_gdu_batched);
criterion_main!(benches);

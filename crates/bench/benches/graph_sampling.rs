//! Microbenches for the graph substrate: random walks (DeepWalk's corpus
//! generator) and alias sampling (LINE's edge sampler).

use criterion::{criterion_group, criterion_main, Criterion};
use fd_data::{generate, GeneratorConfig};
use fd_graph::{generate_walks, AliasTable, WalkConfig};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn bench_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_walks");
    group.sample_size(10);
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.05), 1);
    let cfg = WalkConfig { walks_per_node: 2, walk_length: 20 };
    group.bench_function("scale0.05_2x20", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(generate_walks(&corpus.graph, &cfg, &mut rng).len())
        })
    });
    group.finish();
}

fn bench_alias(c: &mut Criterion) {
    let mut group = c.benchmark_group("alias_table");
    group.sample_size(30);
    let weights: Vec<f64> = (1..=10_000).map(|i| 1.0 / i as f64).collect();
    group.bench_function("build_10k", |bench| {
        bench.iter(|| black_box(AliasTable::new(&weights).len()))
    });
    let table = AliasTable::new(&weights);
    group.bench_function("sample_10k_draws", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc ^= table.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_edges(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_list");
    group.sample_size(20);
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.05), 2);
    group.bench_function("edges_global_scale0.05", |bench| {
        bench.iter(|| black_box(corpus.graph.edges_global().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_walks, bench_alias, bench_edges);
criterion_main!(benches);

//! Microbenches for the graph substrate: random walks (DeepWalk's corpus
//! generator), the CSR neighbour hot path, deterministic neighbour
//! sampling, and alias sampling (LINE's edge sampler).
//!
//! `random_walks` and `neighbor_scan` are the regression gauges for the
//! CSR adjacency refactor: both used to allocate a fresh `Vec<NodeRef>`
//! per `neighbors()` call and now read borrowed CSR slices.

use criterion::{criterion_group, criterion_main, Criterion};
use fd_data::{generate, GeneratorConfig};
use fd_graph::{generate_walks, AliasTable, NeighborSampler, NodeRef, NodeType, WalkConfig};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn bench_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_walks");
    group.sample_size(10);
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.05), 1);
    corpus.graph.finalize();
    let cfg = WalkConfig { walks_per_node: 2, walk_length: 20 };
    group.bench_function("scale0.05_2x20", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(generate_walks(&corpus.graph, &cfg, &mut rng).len())
        })
    });
    group.finish();
}

fn all_nodes(graph: &fd_graph::HetGraph) -> Vec<NodeRef> {
    let mut nodes = Vec::with_capacity(graph.n_nodes());
    for ty in NodeType::ALL {
        let count = match ty {
            NodeType::Article => graph.n_articles(),
            NodeType::Creator => graph.n_creators(),
            NodeType::Subject => graph.n_subjects(),
        };
        nodes.extend((0..count).map(|idx| NodeRef { ty, idx }));
    }
    nodes
}

fn bench_neighbor_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_scan");
    group.sample_size(30);
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.05), 1);
    corpus.graph.finalize();
    let nodes = all_nodes(&corpus.graph);
    group.bench_function("all_nodes_scale0.05", |bench| {
        bench.iter(|| {
            let mut acc = 0usize;
            for &node in &nodes {
                for n in corpus.graph.neighbors(node) {
                    acc ^= n.idx;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_neighbor_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_sampling");
    group.sample_size(30);
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.05), 1);
    corpus.graph.finalize();
    let nodes = all_nodes(&corpus.graph);
    let sampler = NeighborSampler::new(7, [8, 6, 6]);
    group.bench_function("fanout_8_6_6_scale0.05", |bench| {
        bench.iter(|| {
            let mut out = Vec::new();
            let mut acc = 0usize;
            for &node in &nodes {
                sampler.sample_neighbors_into(&corpus.graph, node, 0, &mut out);
                acc ^= out.len();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_alias(c: &mut Criterion) {
    let mut group = c.benchmark_group("alias_table");
    group.sample_size(30);
    let weights: Vec<f64> = (1..=10_000).map(|i| 1.0 / i as f64).collect();
    group.bench_function("build_10k", |bench| {
        bench.iter(|| black_box(AliasTable::new(&weights).len()))
    });
    let table = AliasTable::new(&weights);
    group.bench_function("sample_10k_draws", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc ^= table.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_edges(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_list");
    group.sample_size(20);
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.05), 2);
    group.bench_function("edges_global_scale0.05", |bench| {
        bench.iter(|| black_box(corpus.graph.edges_global().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_walks, bench_neighbor_scan, bench_neighbor_sampling, bench_alias, bench_edges);
criterion_main!(benches);

//! Regenerates **Table 1** ("Properties of the Heterogeneous Networks"):
//! node and link counts of the News-HSN, printed paper-vs-generated.
//!
//! `cargo run --release -p fd-bench --bin table1 [--scale f] [--seed n]`

use fd_data::{generate, GeneratorConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    fd_obs::event(
        fd_obs::Level::Info,
        "table1.generate",
        &[("scale", scale.into()), ("seed", seed.into())],
    );
    let corpus = generate(&GeneratorConfig::politifact().scaled(scale), seed);
    corpus.validate().expect("generated corpus must validate");

    println!("Table 1: Properties of the Heterogeneous Networks");
    println!("{:<28}{:>12}{:>12}", "property", "paper", "generated");
    let rows: [(&str, usize, usize); 5] = [
        ("# node  articles", 14_055, corpus.articles.len()),
        ("# node  creators", 3_634, corpus.creators.len()),
        ("# node  subjects", 152, corpus.subjects.len()),
        ("# link  creator-article", 14_055, corpus.graph.n_authorship_links()),
        ("# link  article-subject", 48_756, corpus.graph.n_subject_links()),
    ];
    for (name, paper, generated) in rows {
        let paper_scaled = if scale < 1.0 {
            format!("~{}", (paper as f64 * scale) as usize)
        } else {
            paper.to_string()
        };
        println!("{name:<28}{paper_scaled:>12}{generated:>12}");
    }
    println!();
    println!(
        "articles per creator: paper 3.86, generated {:.2}",
        corpus.articles.len() as f64 / corpus.creators.len() as f64
    );
    println!(
        "subjects per article: paper ~3.47, generated {:.2}",
        corpus.graph.n_subject_links() as f64 / corpus.articles.len() as f64
    );
}

//! Ablation study over the design choices DESIGN.md calls out:
//!
//! * `no-explicit`  — HFLU latent features only;
//! * `no-latent`    — HFLU explicit features only;
//! * `no-diffusion` — GDU with zeroed neighbour ports (per-entity MLP);
//! * `no-gates`     — forget/adjust gates fixed to 1;
//! * `rounds-1/2/3` — depth of the unrolled diffusion.
//!
//! `cargo run --release -p fd-bench --bin ablation [-- --scale f|--folds n|--seed n]`

use fd_bench::{run_sweep, save_results, SweepConfig};
use fd_core::{FakeDetector, FakeDetectorConfig};
use fd_data::{CredibilityModel, LabelMode};

/// A named FakeDetector variant (CredibilityModel requires a 'static
/// name, so each variant is its own thin wrapper).
struct Variant {
    name: &'static str,
    config: FakeDetectorConfig,
}

impl CredibilityModel for Variant {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit_predict(&self, ctx: &fd_data::ExperimentContext<'_>) -> fd_data::Predictions {
        FakeDetector::new(self.config.clone()).fit_predict(ctx)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = SweepConfig::from_args(&args);
    if !args.iter().any(|a| a == "--full" || a == "--scale") {
        config.scale = 0.05;
    }
    // Ablations compare at full supervision; the θ sweep belongs to fig4/5.
    config.thetas = vec![1.0];

    let base = FakeDetectorConfig::default();
    let models: Vec<Box<dyn CredibilityModel>> = vec![
        Box::new(Variant { name: "full", config: base.clone() }),
        Box::new(Variant {
            name: "no-explicit",
            config: FakeDetectorConfig { use_explicit: false, ..base.clone() },
        }),
        Box::new(Variant {
            name: "no-latent",
            config: FakeDetectorConfig { use_latent: false, ..base.clone() },
        }),
        Box::new(Variant {
            name: "no-diffusion",
            config: FakeDetectorConfig { use_diffusion: false, ..base.clone() },
        }),
        Box::new(Variant {
            name: "no-gates",
            config: FakeDetectorConfig { use_gates: false, ..base.clone() },
        }),
        Box::new(Variant {
            name: "rounds-1",
            config: FakeDetectorConfig { diffusion_rounds: 1, ..base.clone() },
        }),
        Box::new(Variant {
            name: "rounds-3",
            config: FakeDetectorConfig { diffusion_rounds: 3, ..base.clone() },
        }),
    ];

    let results = run_sweep(&config, LabelMode::Binary, &models);
    for r in &results {
        println!("{}", r.all_tables());
    }
    save_results("ablation", &results);
}

//! Renders the `results/*.json` sweep outputs as the markdown tables
//! EXPERIMENTS.md embeds.
//!
//! `cargo run --release -p fd-bench --bin report [-- results_dir]`

use fd_metrics::{MetricKind, SweepResults};

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    for experiment in ["fig4", "fig5", "ablation"] {
        for entity in ["articles", "creators", "subjects"] {
            let path = format!("{dir}/{experiment}_{entity}.json");
            let Ok(json) = std::fs::read_to_string(&path) else {
                eprintln!("skipping {path} (not found)");
                continue;
            };
            let results: SweepResults = match serde_json::from_str(&json) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("skipping {path}: {e}");
                    continue;
                }
            };
            println!("### {experiment} — {} ({})\n", results.entity, results.mode);
            print_markdown(&results);
        }
    }
}

fn print_markdown(results: &SweepResults) {
    for metric in MetricKind::ALL {
        let m = MetricKind::ALL.iter().position(|&k| k == metric).expect("member");
        println!("**{}**\n", metric.name());
        print!("| method |");
        for t in &results.thetas {
            print!(" θ={t} |");
        }
        println!();
        print!("|---|");
        for _ in &results.thetas {
            print!("---|");
        }
        println!();
        for series in &results.series {
            print!("| {} |", series.method);
            for point in &series.values {
                print!(" {:.3} |", point[m]);
            }
            println!();
        }
        println!();
    }
}

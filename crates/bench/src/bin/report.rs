//! Report generation over the experiment outputs.
//!
//! Two modes:
//!
//! * `cargo run --release -p fd-bench --bin report [-- results_dir]`
//!   renders the `results/*.json` sweep outputs as the markdown tables
//!   EXPERIMENTS.md embeds.
//! * `cargo run --release -p fd-bench --bin report -- tensor [out.json]`
//!   times the tensor kernels and a full model inference step —
//!   seed-era naive kernels vs the blocked serial kernels vs the
//!   row-parallel path — and writes the numbers to `BENCH_tensor.json`.
//! * `cargo run --release -p fd-bench --bin report -- train [out.json] [scale]`
//!   times full training epochs at Table-1 scale (default `scale` 1.0) —
//!   the per-node reference tape vs the batched matrix-level graph at
//!   `FD_THREADS` 1 and 4 — and writes `BENCH_train.json`.

use fd_metrics::{MetricKind, SweepResults};
use fd_obs::{event, Level};

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next() {
        Some(mode) if mode == "tensor" => {
            let out = args.next().unwrap_or_else(|| "BENCH_tensor.json".into());
            tensor::write_report(&out);
        }
        Some(mode) if mode == "train" => {
            let out = args.next().unwrap_or_else(|| "BENCH_train.json".into());
            let scale: f64 = args
                .next()
                .map(|s| s.parse().unwrap_or_else(|e| panic!("bad scale `{s}`: {e}")))
                .unwrap_or(1.0);
            train::write_report(&out, scale);
        }
        dir => markdown_report(&dir.unwrap_or_else(|| "results".into())),
    }
}

fn markdown_report(dir: &str) {
    for experiment in ["fig4", "fig5", "ablation"] {
        for entity in ["articles", "creators", "subjects"] {
            let path = format!("{dir}/{experiment}_{entity}.json");
            let Ok(json) = std::fs::read_to_string(&path) else {
                event(
                    Level::Info,
                    "report.skip",
                    &[("path", path.as_str().into()), ("reason", "not found".into())],
                );
                continue;
            };
            let results: SweepResults = match serde_json::from_str(&json) {
                Ok(r) => r,
                Err(e) => {
                    event(
                        Level::Error,
                        "report.skip",
                        &[("path", path.as_str().into()), ("reason", e.to_string().into())],
                    );
                    continue;
                }
            };
            println!("### {experiment} — {} ({})\n", results.entity, results.mode);
            print_markdown(&results);
        }
    }
}

fn print_markdown(results: &SweepResults) {
    for metric in MetricKind::ALL {
        let m = MetricKind::ALL.iter().position(|&k| k == metric).expect("member");
        println!("**{}**\n", metric.name());
        print!("| method |");
        for t in &results.thetas {
            print!(" θ={t} |");
        }
        println!();
        print!("|---|");
        for _ in &results.thetas {
            print!("---|");
        }
        println!();
        for series in &results.series {
            print!("| {} |", series.method);
            for point in &series.values {
                print!(" {:.3} |", point[m]);
            }
            println!();
        }
        println!();
    }
}

mod train {
    //! The `train` mode: full training-epoch timings at Table-1 scale,
    //! batched matrix-level graph vs the per-node reference tape.

    use fd_bench::{prepare, SweepConfig};
    use fd_core::{FakeDetector, FakeDetectorConfig};
    use fd_data::{ExperimentContext, ExplicitFeatures, LabelMode};
    use fd_tensor::parallel;

    fn round2(v: f64) -> f64 {
        (v * 100.0).round() / 100.0
    }

    fn median(samples: &[f64]) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        sorted[sorted.len() / 2]
    }

    /// Fits `epochs` full-graph steps and returns the per-epoch
    /// wall-clock milliseconds the trainer recorded.
    fn epoch_times(
        ctx: &ExperimentContext<'_>,
        epochs: usize,
        batched: bool,
        threads: usize,
    ) -> Vec<f64> {
        let config = FakeDetectorConfig {
            epochs,
            validation_fraction: 0.0,
            batched_training: batched,
            ..FakeDetectorConfig::default()
        };
        parallel::with_thread_count(threads, || {
            FakeDetector::new(config).fit(ctx).report().epoch_ms.clone()
        })
    }

    pub fn write_report(out_path: &str, scale: f64) {
        let config = SweepConfig { scale, folds: 1, ..SweepConfig::default() };
        let prepared = prepare(&config);
        let (train, _test) = prepared.split(0, 1.0, config.seed);
        let explicit = ExplicitFeatures::extract(&prepared.corpus, &prepared.tokenized, &train, 60);
        let ctx = ExperimentContext {
            corpus: &prepared.corpus,
            tokenized: &prepared.tokenized,
            explicit: &explicit,
            train: &train,
            mode: LabelMode::Binary,
            seed: 3,
        };

        let epochs = 3;
        let per_node_ms = epoch_times(&ctx, epochs, false, 1);
        let batched_serial_ms = epoch_times(&ctx, epochs, true, 1);
        let batched_4t_ms = epoch_times(&ctx, epochs, true, 4);
        let (per_node, serial, four_t) =
            (median(&per_node_ms), median(&batched_serial_ms), median(&batched_4t_ms));

        fd_obs::event(
            fd_obs::Level::Info,
            "bench.model_train",
            &[
                ("articles", prepared.corpus.articles.len().into()),
                ("per_node_epoch_ms", per_node.into()),
                ("batched_serial_epoch_ms", serial.into()),
                ("batched_parallel_4t_epoch_ms", four_t.into()),
            ],
        );
        let report = serde_json::json!({
            "generator": "cargo run --release -p fd-bench --bin report -- train",
            "machine_threads": std::thread::available_parallelism().map_or(1, |n| n.get()),
            "fd_threads_env": std::env::var("FD_THREADS").unwrap_or_default(),
            "scale": scale,
            "articles": prepared.corpus.articles.len(),
            "creators": prepared.corpus.creators.len(),
            "subjects": prepared.corpus.subjects.len(),
            "epochs_timed": epochs,
            "per_node_epoch_ms": per_node_ms.iter().map(|&v| round2(v)).collect::<Vec<_>>(),
            "batched_serial_epoch_ms":
                batched_serial_ms.iter().map(|&v| round2(v)).collect::<Vec<_>>(),
            "batched_parallel_4t_epoch_ms":
                batched_4t_ms.iter().map(|&v| round2(v)).collect::<Vec<_>>(),
            "median_per_node_epoch_ms": round2(per_node),
            "median_batched_serial_epoch_ms": round2(serial),
            "median_batched_parallel_4t_epoch_ms": round2(four_t),
            "speedup_batched_serial_vs_per_node": round2(per_node / serial),
            "speedup_batched_4t_vs_per_node": round2(per_node / four_t),
        });
        let json = serde_json::to_string_pretty(&report).expect("serialise report");
        std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("{out_path}: {e}"));
        fd_obs::event(fd_obs::Level::Info, "report.wrote", &[("path", out_path.into())]);
    }
}

mod tensor {
    //! The `tensor` mode: kernel and model-step timings.

    use fd_tensor::{parallel, uniform_in, Matrix};
    use rand::{rngs::StdRng, SeedableRng};
    use std::time::Instant;

    /// Median wall-clock milliseconds of `runs` calls to `f`.
    fn median_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
        let mut samples: Vec<f64> = (0..runs)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        samples[samples.len() / 2]
    }

    fn round2(v: f64) -> f64 {
        (v * 100.0).round() / 100.0
    }

    /// Times one kernel at `size`³ across the three implementations.
    fn kernel_section(
        name: &str,
        size: usize,
        runs: usize,
        naive: impl Fn(&Matrix, &Matrix) -> Matrix,
        blocked: impl Fn(&Matrix, &Matrix) -> Matrix,
    ) -> serde_json::Value {
        let mut rng = StdRng::seed_from_u64(42);
        let a = uniform_in(size, size, -1.0, 1.0, &mut rng);
        let b = uniform_in(size, size, -1.0, 1.0, &mut rng);

        let naive_ms = median_ms(runs, || naive(&a, &b));
        let blocked_serial_ms =
            parallel::with_thread_count(1, || median_ms(runs, || blocked(&a, &b)));
        let blocked_4t_ms = parallel::with_thread_count(4, || median_ms(runs, || blocked(&a, &b)));

        fd_obs::event(
            fd_obs::Level::Info,
            "bench.kernel",
            &[
                ("kernel", name.into()),
                ("size", size.into()),
                ("naive_ms", naive_ms.into()),
                ("blocked_serial_ms", blocked_serial_ms.into()),
                ("blocked_parallel_4t_ms", blocked_4t_ms.into()),
            ],
        );
        serde_json::json!({
            "size": size,
            "naive_serial_ms": round2(naive_ms),
            "blocked_serial_ms": round2(blocked_serial_ms),
            "blocked_parallel_4t_ms": round2(blocked_4t_ms),
            "speedup_blocked_serial_vs_naive": round2(naive_ms / blocked_serial_ms),
            "speedup_parallel_4t_vs_naive": round2(naive_ms / blocked_4t_ms),
        })
    }

    /// Times a full FakeDetector inference step (diffusion + heads) on a
    /// small synthetic corpus: the per-node seed path vs the batched
    /// forward, serial and row-parallel.
    fn model_section() -> serde_json::Value {
        use fd_bench::{prepare, SweepConfig};
        use fd_core::{FakeDetector, FakeDetectorConfig};
        use fd_data::{ExperimentContext, ExplicitFeatures, LabelMode};

        let config = SweepConfig { scale: 0.05, folds: 1, ..SweepConfig::default() };
        let prepared = prepare(&config);
        let (train, _test) = prepared.split(0, 1.0, config.seed);
        let explicit = ExplicitFeatures::extract(&prepared.corpus, &prepared.tokenized, &train, 60);
        let ctx = ExperimentContext {
            corpus: &prepared.corpus,
            tokenized: &prepared.tokenized,
            explicit: &explicit,
            train: &train,
            mode: LabelMode::Binary,
            seed: 3,
        };
        let model_cfg = FakeDetectorConfig { epochs: 1, ..FakeDetectorConfig::default() };
        let trained = FakeDetector::new(model_cfg).fit(&ctx);
        let corpus = &prepared.corpus;

        let per_node_ms = median_ms(3, || trained.predict_per_node(&ctx));
        let batched_serial_ms =
            parallel::with_thread_count(1, || median_ms(3, || trained.predict(&ctx)));
        let batched_4t_ms =
            parallel::with_thread_count(4, || median_ms(3, || trained.predict(&ctx)));
        fd_obs::event(
            fd_obs::Level::Info,
            "bench.model_predict",
            &[
                ("articles", corpus.articles.len().into()),
                ("per_node_ms", per_node_ms.into()),
                ("batched_serial_ms", batched_serial_ms.into()),
                ("batched_parallel_4t_ms", batched_4t_ms.into()),
            ],
        );
        serde_json::json!({
            "articles": corpus.articles.len(),
            "per_node_ms": round2(per_node_ms),
            "batched_serial_ms": round2(batched_serial_ms),
            "batched_parallel_4t_ms": round2(batched_4t_ms),
            "speedup_batched_serial_vs_per_node": round2(per_node_ms / batched_serial_ms),
            "speedup_batched_4t_vs_per_node": round2(per_node_ms / batched_4t_ms),
        })
    }

    pub fn write_report(out_path: &str) {
        let report = serde_json::json!({
            "generator": "cargo run --release -p fd-bench --bin report -- tensor",
            "machine_threads": std::thread::available_parallelism().map_or(1, |n| n.get()),
            "fd_threads_env": std::env::var("FD_THREADS").unwrap_or_default(),
            "matmul": kernel_section("matmul", 512, 5, Matrix::matmul_naive, Matrix::matmul),
            "transpose_matmul": kernel_section(
                "transpose_matmul",
                512,
                5,
                Matrix::transpose_matmul_naive,
                Matrix::transpose_matmul,
            ),
            "matmul_transpose": kernel_section(
                "matmul_transpose",
                512,
                5,
                Matrix::matmul_transpose_naive,
                Matrix::matmul_transpose,
            ),
            "model_predict": model_section(),
        });
        let json = serde_json::to_string_pretty(&report).expect("serialise report");
        std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("{out_path}: {e}"));
        fd_obs::event(fd_obs::Level::Info, "report.wrote", &[("path", out_path.into())]);
    }
}

//! Report generation over the experiment outputs.
//!
//! Two modes:
//!
//! * `cargo run --release -p fd-bench --bin report [-- results_dir]`
//!   renders the `results/*.json` sweep outputs as the markdown tables
//!   EXPERIMENTS.md embeds.
//! * `cargo run --release -p fd-bench --bin report -- tensor [out.json]`
//!   times the tensor kernels and a full model inference step —
//!   seed-era naive kernels vs the blocked serial kernels vs the
//!   row-parallel path — and writes the numbers to `BENCH_tensor.json`.
//! * `cargo run --release -p fd-bench --bin report -- train [out.json] [scale] [sweep_scales]`
//!   times full training epochs at Table-1 scale (default `scale` 1.0) —
//!   the per-node reference tape vs the batched matrix-level graph at
//!   `FD_THREADS` 1 and 4 — then runs one neighbour-sampled epoch at
//!   each comma-separated corpus scale in `sweep_scales` (default
//!   `0.1,1,8`; pass `""` to skip), recording articles, epoch
//!   wall-clock and per-run peak RSS, and writes `BENCH_train.json`.
//! * `cargo run --release -p fd-bench --bin report -- serve [out.json] [clients] [per_client]`
//!   trains a small model, starts the fd-serve HTTP server in-process,
//!   drives it with concurrent keep-alive clients (default 32 × 12
//!   requests), verifies every response is bitwise-identical to the
//!   sequential reference pass, and writes throughput, latency
//!   percentiles and the observed batch-size histogram to
//!   `BENCH_serve.json`.
//! * `cargo run --release -p fd-bench --bin report -- load [out.json] [total] [slo_ms]`
//!   the open-loop load benchmark of the sharded serving tier: an
//!   in-process router in front of 2 shards × 2 replicas, driven at
//!   fixed arrival rates (latency measured from each request's
//!   *scheduled* arrival, so queueing delay is never hidden). A short
//!   closed-loop probe finds the tier's capacity; the harness then
//!   runs ≥100k requests at a rated load (60% of capacity, gated on
//!   p99 ≤ `slo_ms`) and a 2× overload phase, asserting the router
//!   sheds with `429 + Retry-After` while successful-request latency
//!   stays bounded — 429s must rise before latency collapses. Every
//!   200 is verified bitwise against a single-process unsharded
//!   control server. Writes `BENCH_load.json`.
//! * `cargo run --release -p fd-bench --bin report -- ingest [out.json] [scales]`
//!   the early-detection benchmark of `POST /v1/ingest`: at each
//!   comma-separated corpus scale (default `1,8`) it trains a model,
//!   starts the server in-process, ingests single articles at subject
//!   degrees 0–5 under continuous predict load, checks every ingested
//!   node against a full extended-graph recompute (documented bound
//!   1e-5), and writes per-degree latency percentiles, the delta
//!   curve, and the cross-scale latency ratio to `BENCH_ingest.json`.
//!   The ratio gate (< 4× between the largest and smallest scale) is
//!   the corpus-size-independence claim, enforced at run time.

use fd_metrics::{MetricKind, SweepResults};
use fd_obs::{event, Level};

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next() {
        Some(mode) if mode == "tensor" => {
            let out = args.next().unwrap_or_else(|| "BENCH_tensor.json".into());
            tensor::write_report(&out);
        }
        Some(mode) if mode == "train" => {
            let out = args.next().unwrap_or_else(|| "BENCH_train.json".into());
            let scale: f64 = args
                .next()
                .map(|s| s.parse().unwrap_or_else(|e| panic!("bad scale `{s}`: {e}")))
                .unwrap_or(1.0);
            // Comma-separated corpus scales for the sampled-training
            // sweep (empty string disables it). Scales > 1 tile whole
            // Table-1 shards: 8 ≈ 112k articles.
            let sweep: Vec<f64> = args
                .next()
                .map(|s| {
                    s.split(',')
                        .filter(|t| !t.trim().is_empty())
                        .map(|t| {
                            t.trim()
                                .parse()
                                .unwrap_or_else(|e| panic!("bad sweep scale `{t}`: {e}"))
                        })
                        .collect()
                })
                .unwrap_or_else(|| vec![0.1, 1.0, 8.0]);
            train::write_report(&out, scale, &sweep);
        }
        // Internal: one scale-sweep point, run by `train` in a child
        // process so each point's VmHWM reading is its own.
        Some(mode) if mode == "train-scale-point" => {
            let scale: f64 = args
                .next()
                .expect("train-scale-point needs a scale")
                .parse()
                .unwrap_or_else(|e| panic!("bad scale: {e}"));
            let point = train::sampled_scale_run(scale);
            println!("{}", serde_json::to_string(&point).expect("serialise scale point"));
        }
        Some(mode) if mode == "ingest" => {
            let out = args.next().unwrap_or_else(|| "BENCH_ingest.json".into());
            // Comma-separated corpus scales; the latency-ratio gate
            // compares the last against the first.
            let scales: Vec<f64> = args
                .next()
                .map(|s| {
                    s.split(',')
                        .filter(|t| !t.trim().is_empty())
                        .map(|t| {
                            t.trim()
                                .parse()
                                .unwrap_or_else(|e| panic!("bad ingest scale `{t}`: {e}"))
                        })
                        .collect()
                })
                .unwrap_or_else(|| vec![1.0, 8.0]);
            ingest::write_report(&out, &scales);
        }
        Some(mode) if mode == "load" => {
            let out = args.next().unwrap_or_else(|| "BENCH_load.json".into());
            let total: usize = args
                .next()
                .map(|s| s.parse().unwrap_or_else(|e| panic!("bad total `{s}`: {e}")))
                .unwrap_or(105_000);
            let slo_ms: f64 = args
                .next()
                .map(|s| s.parse().unwrap_or_else(|e| panic!("bad slo_ms `{s}`: {e}")))
                .unwrap_or(500.0);
            load::write_report(&out, total, slo_ms);
        }
        Some(mode) if mode == "serve" => {
            let out = args.next().unwrap_or_else(|| "BENCH_serve.json".into());
            let clients: usize = args
                .next()
                .map(|s| s.parse().unwrap_or_else(|e| panic!("bad clients `{s}`: {e}")))
                .unwrap_or(32);
            let per_client: usize = args
                .next()
                .map(|s| s.parse().unwrap_or_else(|e| panic!("bad per_client `{s}`: {e}")))
                .unwrap_or(12);
            serve::write_report(&out, clients, per_client);
        }
        dir => markdown_report(&dir.unwrap_or_else(|| "results".into())),
    }
}

/// The FD_THREADS widths every scaling sweep runs at. Index 0 must be
/// the serial width (it is the speedup baseline) and the list must
/// contain 4 (the legacy `*_4t` keys read it back out).
const SWEEP_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Renders a `[(threads, ms)]` sweep as the `thread_scaling` object:
/// per-width median milliseconds and speedup over the 1-thread run.
/// Widths the machine cannot actually run in parallel (requested >
/// `machine_threads`) are annotated `"oversubscribed": true` — their
/// "speedup" is scheduling noise, not a runtime regression, and
/// consumers must not gate on it.
fn scaling_curve(sweep: &[(usize, f64)]) -> serde_json::Value {
    let serial_ms = sweep[0].1;
    let machine = machine_threads();
    serde_json::Value::from_content(serde::Content::Map(
        sweep
            .iter()
            .map(|&(threads, ms)| {
                let point = if threads > machine {
                    serde_json::json!({
                        "ms": (ms * 100.0).round() / 100.0,
                        "speedup_vs_1t": (serial_ms / ms * 100.0).round() / 100.0,
                        "oversubscribed": true,
                    })
                } else {
                    serde_json::json!({
                        "ms": (ms * 100.0).round() / 100.0,
                        "speedup_vs_1t": (serial_ms / ms * 100.0).round() / 100.0,
                    })
                };
                (threads.to_string(), point.as_content().clone())
            })
            .collect(),
    ))
}

/// Peak resident set size in MiB, read from `/proc/self/status`
/// `VmHWM` (Linux only; `None` elsewhere). Pair with
/// [`reset_peak_rss`] to scope the high-water mark to one run.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some((kb / 1024.0 * 100.0).round() / 100.0)
}

/// Rewinds the kernel's RSS high-water mark (`echo 5 >
/// /proc/self/clear_refs`), so the next [`peak_rss_mb`] read reflects
/// only memory touched after this call. Best-effort: when the write is
/// not supported the cumulative process peak stays in place, which is
/// still a valid upper bound.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// `available_parallelism()` as actually observed by this run — the
/// hardware half of the provenance header every BENCH_*.json carries.
/// Without it (plus the resolved width and SIMD tier), a flat scaling
/// curve on a 1-core container is indistinguishable from a runtime
/// regression.
fn machine_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn markdown_report(dir: &str) {
    for experiment in ["fig4", "fig5", "ablation"] {
        for entity in ["articles", "creators", "subjects"] {
            let path = format!("{dir}/{experiment}_{entity}.json");
            let Ok(json) = std::fs::read_to_string(&path) else {
                event(
                    Level::Info,
                    "report.skip",
                    &[("path", path.as_str().into()), ("reason", "not found".into())],
                );
                continue;
            };
            let results: SweepResults = match serde_json::from_str(&json) {
                Ok(r) => r,
                Err(e) => {
                    event(
                        Level::Error,
                        "report.skip",
                        &[("path", path.as_str().into()), ("reason", e.to_string().into())],
                    );
                    continue;
                }
            };
            println!("### {experiment} — {} ({})\n", results.entity, results.mode);
            print_markdown(&results);
        }
    }
}

fn print_markdown(results: &SweepResults) {
    for metric in MetricKind::ALL {
        let m = MetricKind::ALL.iter().position(|&k| k == metric).expect("member");
        println!("**{}**\n", metric.name());
        print!("| method |");
        for t in &results.thetas {
            print!(" θ={t} |");
        }
        println!();
        print!("|---|");
        for _ in &results.thetas {
            print!("---|");
        }
        println!();
        for series in &results.series {
            print!("| {} |", series.method);
            for point in &series.values {
                print!(" {:.3} |", point[m]);
            }
            println!();
        }
        println!();
    }
}

mod train {
    //! The `train` mode: full training-epoch timings at Table-1 scale,
    //! batched matrix-level graph vs the per-node reference tape.

    use fd_bench::{prepare, SweepConfig};
    use fd_core::{FakeDetector, FakeDetectorConfig, TrainMode};
    use fd_data::{ExperimentContext, ExplicitFeatures, LabelMode};
    use fd_tensor::parallel;

    fn round2(v: f64) -> f64 {
        (v * 100.0).round() / 100.0
    }

    fn median(samples: &[f64]) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        sorted[sorted.len() / 2]
    }

    /// Fits `epochs` full-graph steps and returns the per-epoch
    /// wall-clock milliseconds and loss curve the trainer recorded.
    fn epoch_times(
        ctx: &ExperimentContext<'_>,
        epochs: usize,
        batched: bool,
        threads: usize,
    ) -> (Vec<f64>, Vec<f32>) {
        let config = FakeDetectorConfig {
            epochs,
            validation_fraction: 0.0,
            batched_training: batched,
            ..FakeDetectorConfig::default()
        };
        parallel::with_thread_count(threads, || {
            let trained = FakeDetector::new(config).fit(ctx);
            let report = trained.report();
            (report.epoch_ms.clone(), report.losses.clone())
        })
    }

    /// One bounded-memory data point for the scale sweep: generates
    /// the corpus at `scale` (whole-number scales > 1 tile Table-1
    /// shards), runs a single neighbour-sampled epoch, and reports the
    /// epoch wall-clock plus the run's own peak RSS (the high-water
    /// mark is rewound first, so each scale prices only itself).
    /// Runs one scale-sweep point in a child `report train-scale-point`
    /// process and parses the JSON it prints on stdout. FD_LOG_FILE is
    /// stripped from the child's environment so it cannot truncate a
    /// log file the parent run owns.
    fn scale_point_in_child(scale: f64) -> serde_json::Value {
        let exe = std::env::current_exe().expect("locate the report binary");
        let out = std::process::Command::new(exe)
            .args(["train-scale-point", &scale.to_string()])
            .env_remove("FD_LOG_FILE")
            .output()
            .unwrap_or_else(|e| panic!("spawn scale-point child at scale {scale}: {e}"));
        assert!(
            out.status.success(),
            "scale-point child failed at scale {scale}:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("scale-point child stdout is utf-8");
        let line = stdout
            .lines()
            .rev()
            .find(|l| l.trim_start().starts_with('{'))
            .unwrap_or_else(|| panic!("no JSON line from scale-point child at scale {scale}"));
        serde_json::from_str(line).expect("parse scale-point child JSON")
    }

    pub fn sampled_scale_run(scale: f64) -> serde_json::Value {
        super::reset_peak_rss();
        let config = SweepConfig { scale, folds: 1, ..SweepConfig::default() };
        let prepared = prepare(&config);
        let (train, _test) = prepared.split(0, 1.0, config.seed);
        let explicit = ExplicitFeatures::extract(&prepared.corpus, &prepared.tokenized, &train, 60);
        let ctx = ExperimentContext {
            corpus: &prepared.corpus,
            tokenized: &prepared.tokenized,
            explicit: &explicit,
            train: &train,
            mode: LabelMode::Binary,
            seed: 3,
        };
        let (batch_size, fanout, rounds) = (256, 8, 2);
        let model_cfg = FakeDetectorConfig {
            epochs: 1,
            validation_fraction: 0.0,
            train_mode: TrainMode::Sampled { batch_size, fanout, rounds },
            ..FakeDetectorConfig::default()
        };
        let trained = FakeDetector::new(model_cfg).fit(&ctx);
        let epoch_ms = trained.report().epoch_ms.first().copied().unwrap_or(0.0);
        fd_obs::event(
            fd_obs::Level::Info,
            "bench.scale_point",
            &[
                ("scale", scale.into()),
                ("articles", prepared.corpus.articles.len().into()),
                ("sampled_epoch_ms", epoch_ms.into()),
            ],
        );
        serde_json::json!({
            "scale": scale,
            "articles": prepared.corpus.articles.len(),
            "creators": prepared.corpus.creators.len(),
            "subjects": prepared.corpus.subjects.len(),
            "batch_size": batch_size,
            "fanout": fanout,
            "rounds": rounds,
            "sampled_epoch_ms": round2(epoch_ms),
            "peak_rss_mb": super::peak_rss_mb(),
        })
    }

    pub fn write_report(out_path: &str, scale: f64, sweep_scales: &[f64]) {
        let config = SweepConfig { scale, folds: 1, ..SweepConfig::default() };
        let prepared = prepare(&config);
        let (train, _test) = prepared.split(0, 1.0, config.seed);
        let explicit = ExplicitFeatures::extract(&prepared.corpus, &prepared.tokenized, &train, 60);
        let ctx = ExperimentContext {
            corpus: &prepared.corpus,
            tokenized: &prepared.tokenized,
            explicit: &explicit,
            train: &train,
            mode: LabelMode::Binary,
            seed: 3,
        };

        let epochs = 3;
        let (per_node_ms, _) = epoch_times(&ctx, epochs, false, 1);

        // FD_THREADS sweep over the batched trainer. Identical loss
        // curves at every width are the deterministic-runtime contract;
        // a benchmark that traded answers for speed must fail loudly.
        let mut sweep = Vec::new();
        let mut serial_losses: Option<Vec<f32>> = None;
        for &threads in &super::SWEEP_WIDTHS {
            let (ms, losses) = epoch_times(&ctx, epochs, true, threads);
            match &serial_losses {
                None => serial_losses = Some(losses),
                Some(reference) => {
                    let drift = reference
                        .iter()
                        .zip(&losses)
                        .any(|(a, b)| a.to_bits() != b.to_bits())
                        || reference.len() != losses.len();
                    assert!(
                        !drift,
                        "loss curve at FD_THREADS={threads} is not bit-identical to serial"
                    );
                }
            }
            sweep.push((threads, median(&ms), ms));
        }
        let batched_serial_ms = sweep[0].2.clone();
        let batched_4t_ms = sweep[2].2.clone();
        let scaling: Vec<(usize, f64)> = sweep.iter().map(|&(t, m, _)| (t, m)).collect();
        let (per_node, serial, four_t) = (median(&per_node_ms), scaling[0].1, scaling[2].1);

        fd_obs::event(
            fd_obs::Level::Info,
            "bench.model_train",
            &[
                ("articles", prepared.corpus.articles.len().into()),
                ("per_node_epoch_ms", per_node.into()),
                ("batched_serial_epoch_ms", serial.into()),
                ("batched_parallel_4t_epoch_ms", four_t.into()),
            ],
        );
        // The bounded-memory scale sweep: each point runs in its own
        // child process. In-process, the kernel's RSS high-water mark
        // cannot rewind below the memory the allocator still retains
        // from the full-graph timing sweep above (~1.5 GiB at Table-1
        // scale), which would swamp every point's reading; a child's
        // VmHWM is genuinely its own.
        let scale_sweep: Vec<serde_json::Value> =
            sweep_scales.iter().map(|&s| scale_point_in_child(s)).collect();

        let report = serde_json::json!({
            "generator": "cargo run --release -p fd-bench --bin report -- train",
            "machine_threads": super::machine_threads(),
            "fd_threads_env": std::env::var("FD_THREADS").unwrap_or_default(),
            "fd_threads_resolved": parallel::current_threads(),
            "simd_level": fd_tensor::simd_level().name(),
            "scale": scale,
            "articles": prepared.corpus.articles.len(),
            "creators": prepared.corpus.creators.len(),
            "subjects": prepared.corpus.subjects.len(),
            "epochs_timed": epochs,
            "per_node_epoch_ms": per_node_ms.iter().map(|&v| round2(v)).collect::<Vec<_>>(),
            "batched_serial_epoch_ms":
                batched_serial_ms.iter().map(|&v| round2(v)).collect::<Vec<_>>(),
            "batched_parallel_4t_epoch_ms":
                batched_4t_ms.iter().map(|&v| round2(v)).collect::<Vec<_>>(),
            "median_per_node_epoch_ms": round2(per_node),
            "median_batched_serial_epoch_ms": round2(serial),
            "median_batched_parallel_4t_epoch_ms": round2(four_t),
            "speedup_batched_serial_vs_per_node": round2(per_node / serial),
            "speedup_batched_4t_vs_per_node": round2(per_node / four_t),
            "thread_scaling": super::scaling_curve(&scaling),
            "losses_bit_identical_across_widths": true,
            "scale_sweep": scale_sweep,
        });
        let json = serde_json::to_string_pretty(&report).expect("serialise report");
        std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("{out_path}: {e}"));
        fd_obs::event(fd_obs::Level::Info, "report.wrote", &[("path", out_path.into())]);
    }
}

mod serve {
    //! The `serve` mode: an end-to-end load benchmark of the fd-serve
    //! HTTP server. Trains a small model, starts the server on an
    //! ephemeral port, sends every request once sequentially to build a
    //! reference, then replays them from `clients` concurrent keep-alive
    //! connections. Responses must match the reference byte for byte —
    //! the micro-batching path is bitwise-deterministic, so any drift is
    //! a bug and the benchmark panics (which makes `scripts/bench.sh`
    //! fail loudly).

    use fd_core::{FakeDetector, FakeDetectorConfig, ScoreRequest, TrainedFakeDetector};
    use fd_data::{
        generate, CvSplits, ExperimentContext, ExplicitFeatures, GeneratorConfig, LabelMode,
        TokenizedCorpus, TrainSets,
    };
    use fd_serve::{HttpClient, Precision, ServeConfig, ServeModel, Server};
    use fd_tensor::parallel;
    use rand::{rngs::StdRng, SeedableRng};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn round2(v: f64) -> f64 {
        (v * 100.0).round() / 100.0
    }

    /// The latency histogram the load passes record into — fine
    /// exponential buckets (≈15% wide) from 50µs to ~30s, so the
    /// bucket-interpolated [`fd_obs::Histogram::percentile`] quotes
    /// match nearest-rank percentiles to well under bucket width.
    fn latency_histogram() -> &'static fd_obs::Histogram {
        fd_obs::histogram("bench.serve.latency_ms", &fd_obs::exponential_buckets(0.05, 1.15, 96))
    }

    /// A deterministic request body for request `i`, cycling node
    /// neighbours through the corpus so batches mix all three slots.
    fn request_body(i: usize, creators: usize, subjects: usize) -> String {
        let text = format!(
            "breaking statement {i} disputes the official budget and health care numbers"
        );
        format!(
            "{{\"text\":\"{text}\",\"creator\":{},\"subjects\":[{}]}}",
            i % creators,
            i % subjects
        )
    }

    /// Trains a small model once and wraps the same weights in one
    /// serving handle per precision (the int8 twin is built from a JSON
    /// round-trip of the f32 weights, exactly as a reload would).
    /// Shared with the `load` mode, which serves the f32 handle from
    /// every worker of the sharded tier.
    pub(super) fn build_models() -> (ServeModel, ServeModel) {
        let seed = 42;
        let corpus = generate(&GeneratorConfig::politifact().scaled(0.02), seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 10, &mut rng).fold(0).0,
        };
        let (explicit_dim, seq_len, max_vocab) = (60, 12, 6000);
        let tokenized = TokenizedCorpus::build(&corpus, seq_len, max_vocab);
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, explicit_dim);
        let ctx = ExperimentContext {
            corpus: &corpus,
            tokenized: &tokenized,
            explicit: &explicit,
            train: &train,
            mode: LabelMode::Binary,
            seed,
        };
        let config = FakeDetectorConfig {
            epochs: 2,
            validation_fraction: 0.0,
            ..FakeDetectorConfig::default()
        };
        let trained = FakeDetector::new(config).fit(&ctx);
        drop((tokenized, explicit));
        let twin = TrainedFakeDetector::from_json(&trained.to_json()).expect("weights round-trip");
        let f32_model = ServeModel::new(
            corpus.clone(),
            trained,
            train.clone(),
            LabelMode::Binary,
            explicit_dim,
            seq_len,
            max_vocab,
        );
        let int8_model =
            ServeModel::new(corpus, twin, train, LabelMode::Binary, explicit_dim, seq_len, max_vocab)
                .with_precision(Precision::Int8);
        (f32_model, int8_model)
    }

    /// Direct (in-process, no HTTP) scoring comparison: an FD_THREADS
    /// sweep of the f32 batch scorer plus f32-vs-int8 throughput and
    /// the measured parity numbers the docs quote.
    fn precision_section(
        f32_model: &ServeModel,
        int8_model: &ServeModel,
        creators: usize,
        subjects: usize,
    ) -> serde_json::Value {
        let requests: Vec<ScoreRequest> = (0..64)
            .map(|i| {
                ScoreRequest::article(
                    format!("statement {i} disputes the official budget and health numbers"),
                    Some(i % creators),
                    vec![i % subjects],
                )
            })
            .collect();

        let median_batch_ms = |model: &ServeModel| {
            let mut samples: Vec<f64> = (0..5)
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(model.score(&requests).expect("score"));
                    start.elapsed().as_secs_f64() * 1e3
                })
                .collect();
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            samples[samples.len() / 2]
        };

        let sweep: Vec<(usize, f64)> = super::SWEEP_WIDTHS
            .iter()
            .map(|&t| (t, parallel::with_thread_count(t, || median_batch_ms(f32_model))))
            .collect();

        let f32_ms = sweep[0].1;
        let int8_ms = parallel::with_thread_count(1, || median_batch_ms(int8_model));

        let exact = f32_model.score(&requests).expect("f32 scores");
        let quant = int8_model.score(&requests).expect("int8 scores");
        let mut max_abs_delta = 0.0f32;
        let mut labels_match = true;
        for (e, q) in exact.iter().zip(&quant) {
            for (a, b) in e.iter().zip(q) {
                max_abs_delta = max_abs_delta.max((a - b).abs());
            }
            let argmax = |p: &[f32]| {
                p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(j, _)| j)
            };
            labels_match &= argmax(e) == argmax(q);
        }
        assert!(labels_match, "int8 serving path flipped a label vs f32");
        assert!(max_abs_delta <= 4e-3, "int8 parity gate violated: max |Δ| {max_abs_delta}");

        let rps = |ms: f64| (requests.len() as f64 / (ms / 1e3) * 100.0).round() / 100.0;
        serde_json::json!({
            "requests_per_batch": requests.len(),
            "thread_scaling": super::scaling_curve(&sweep),
            "f32_batch_ms": round2(f32_ms),
            "int8_batch_ms": round2(int8_ms),
            "f32_throughput_rps": rps(f32_ms),
            "int8_throughput_rps": rps(int8_ms),
            "int8_speedup_vs_f32": round2(f32_ms / int8_ms),
            "int8_max_abs_delta": max_abs_delta,
            "int8_labels_match": labels_match,
        })
    }

    /// Replays every body from `clients` concurrent keep-alive
    /// connections and asserts each response matches `reference`.
    /// Returns (wall-clock seconds, max latency ms); when
    /// `record_latency` is set, per-request latencies also go into
    /// [`latency_histogram`].
    fn concurrent_pass(
        addr: &str,
        bodies: &[String],
        reference: &[String],
        clients: usize,
        per_client: usize,
        record_latency: bool,
    ) -> (f64, f64) {
        let loaded = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.to_string();
                let slice: Vec<(usize, String)> = (c * per_client..(c + 1) * per_client)
                    .map(|i| (i, bodies[i].clone()))
                    .collect();
                std::thread::spawn(move || {
                    let mut client = HttpClient::connect(&addr).expect("connect");
                    client.set_timeout(Duration::from_secs(30)).expect("timeout");
                    slice
                        .into_iter()
                        .map(|(i, body)| {
                            let sent = Instant::now();
                            let (status, response) =
                                client.post("/v1/predict", &body).expect("post");
                            (i, status, response, sent.elapsed().as_secs_f64() * 1e3)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut max_ms = 0.0f64;
        for worker in workers {
            for (i, status, response, ms) in worker.join().expect("client thread") {
                assert_eq!(status, 200, "request {i} failed under load: {response}");
                assert_eq!(
                    response, reference[i],
                    "request {i}: batched response differs from sequential reference"
                );
                max_ms = max_ms.max(ms);
                if record_latency {
                    latency_histogram().record(ms);
                }
            }
        }
        (loaded.elapsed().as_secs_f64(), max_ms)
    }

    pub fn write_report(out_path: &str, clients: usize, per_client: usize) {
        assert!(clients >= 1 && per_client >= 1, "need at least one client and request");
        let (model, int8_model) = build_models();
        let (articles, creators, subjects) = model.corpus_sizes();
        let precision_json = precision_section(&model, &int8_model, creators, subjects);
        drop(int8_model);
        let config = ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() };
        let server = Server::start(Arc::new(model), &config).expect("start server");
        let addr = server.local_addr().to_string();

        let total = clients * per_client;
        let bodies: Vec<String> =
            (0..total).map(|i| request_body(i, creators, subjects)).collect();

        // Sequential reference pass: one connection, one request at a
        // time, so every request is scored in a batch of size 1.
        let mut reference = Vec::with_capacity(total);
        {
            let mut client = HttpClient::connect(&addr).expect("connect");
            client.set_timeout(Duration::from_secs(30)).expect("timeout");
            for body in &bodies {
                let (status, response) = client.post("/v1/predict", body).expect("post");
                assert_eq!(status, 200, "sequential reference request failed: {response}");
                reference.push(response);
            }
        }

        // Concurrent load: the same requests from `clients` keep-alive
        // connections at once. First with tracing off — the numbers the
        // report headlines — then the identical pass again with
        // FD_TRACE on at sample 1 to price the tracing hot path.
        let (wall_s, max_ms) = concurrent_pass(&addr, &bodies, &reference, clients, per_client, true);

        fd_obs::trace::set_enabled(true);
        fd_obs::trace::set_sample(1);
        let (traced_wall_s, _) =
            concurrent_pass(&addr, &bodies, &reference, clients, per_client, false);
        fd_obs::trace::set_enabled(false);
        let traced_spans = fd_obs::trace::take_spans().len();
        assert!(traced_spans > 0, "traced load pass recorded no spans");

        let draining = Instant::now();
        server.shutdown();
        let shutdown_ms = draining.elapsed().as_secs_f64() * 1e3;
        // First registration wins in fd-obs, and the server registered
        // these before any request ran, so the placeholder bounds here
        // never take effect.
        let batch_hist = fd_obs::histogram("serve.batch_size", &[1.0]);
        let wait_hist = fd_obs::histogram("serve.queue_wait_us", &[1.0]);
        let batch_count = batch_hist.count().max(1) as f64;

        fd_obs::event(
            fd_obs::Level::Info,
            "bench.serve",
            &[
                ("clients", clients.into()),
                ("total_requests", total.into()),
                ("throughput_rps", (total as f64 / wall_s).into()),
                ("p99_ms", latency_histogram().percentile(0.99).into()),
            ],
        );
        let corpus_json = serde_json::json!({
            "articles": articles,
            "creators": creators,
            "subjects": subjects,
        });
        let latency_hist = latency_histogram();
        let latency_json = serde_json::json!({
            "p50": round2(latency_hist.percentile(0.50)),
            "p90": round2(latency_hist.percentile(0.90)),
            "p99": round2(latency_hist.percentile(0.99)),
            "max": round2(max_ms),
        });
        // Tracing overhead: identical load pass with FD_TRACE on at
        // sample 1 vs the off pass above. The off pass is the shipping
        // configuration — its cost over an uninstrumented build is one
        // relaxed atomic load per span site.
        let trace_json = serde_json::json!({
            "off_throughput_rps": round2(total as f64 / wall_s),
            "on_throughput_rps": round2(total as f64 / traced_wall_s),
            "on_sample": 1,
            "on_spans_recorded": traced_spans,
            "on_overhead_pct": round2((traced_wall_s / wall_s - 1.0) * 100.0),
        });
        let batch_json = serde_json::json!({
            "bounds": batch_hist.bounds().to_vec(),
            "buckets": batch_hist.bucket_counts(),
            "batches": batch_hist.count(),
            "mean": round2(batch_hist.sum() / batch_count),
        });
        let report = serde_json::json!({
            "generator": "cargo run --release -p fd-bench --bin report -- serve",
            "machine_threads": super::machine_threads(),
            "fd_threads_env": std::env::var("FD_THREADS").unwrap_or_default(),
            "fd_threads_resolved": parallel::current_threads(),
            "simd_level": fd_tensor::simd_level().name(),
            "corpus": corpus_json,
            "max_batch": config.max_batch,
            "max_delay_ms": config.max_delay_ms,
            "clients": clients,
            "requests_per_client": per_client,
            "total_requests": total,
            "wall_s": round2(wall_s),
            "throughput_rps": round2(total as f64 / wall_s),
            "latency_ms": latency_json,
            "batch_size": batch_json,
            "queue_wait_us_mean": round2(wait_hist.sum() / wait_hist.count().max(1) as f64),
            "bitwise_identical_to_sequential": true,
            "graceful_shutdown_ms": round2(shutdown_ms),
            "trace": trace_json,
            "precision": precision_json,
        });
        let json = serde_json::to_string_pretty(&report).expect("serialise report");
        std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("{out_path}: {e}"));
        fd_obs::event(fd_obs::Level::Info, "report.wrote", &[("path", out_path.into())]);
    }
}

mod load {
    //! The `load` mode: an open-loop load harness for the sharded
    //! serving tier. An in-process `fd-router` fronts 2 shards × 2
    //! replicas of fd-serve (all sharing one trained model, so any
    //! answer is bitwise-comparable to the unsharded control server).
    //!
    //! Open-loop means arrivals follow a fixed schedule, not the
    //! clients' progress: request `i` of a phase is due at
    //! `start + i/rate`, and its latency is measured from that
    //! *scheduled* instant. A closed-loop harness slows its arrival
    //! rate exactly when the server struggles, hiding overload — this
    //! one keeps pushing and reports the queueing delay it caused.
    //!
    //! Three gates, all panicking on violation so `scripts/bench.sh`
    //! fails loudly:
    //!
    //! 1. every 200 is bitwise-identical to the control server;
    //! 2. at the rated load (60% of probed capacity) p99 ≤ the SLO and
    //!    shed/deadline responses stay ≈ 0;
    //! 3. at 2× the rated load the router says `429 + Retry-After` on
    //!    a meaningful fraction of requests while successful-request
    //!    p99 stays bounded — shedding must kick in *before* latency
    //!    collapses into the deadline.

    use fd_router::{Router, RouterConfig, Topology};
    use fd_serve::{HttpClient, ServeConfig, Server};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Router admission bound for the benchmark tier. Deliberately
    /// below the worker count so the overload phase exercises the
    /// bounded-queue shed path instead of piling work up in memory,
    /// and small enough that admitted work stays far from the routing
    /// deadline even on a single busy core.
    const INFLIGHT_BOUND: usize = 48;
    /// Open-loop sender threads. Must exceed [`INFLIGHT_BOUND`], or the
    /// harness itself becomes the admission limit and no 429 can ever
    /// happen. Kept modest: sender threads share the machine with the
    /// tier, and on a small box an army of them turns scheduler noise
    /// into phantom latency.
    const WORKERS: usize = 64;
    /// Rated load as a fraction of probed capacity. Conservative on
    /// purpose: the closed-loop probe quotes burst capacity, and the
    /// rated phase must hold its p99 for the whole (much longer) run —
    /// on a shared single-core box the gap between burst and sustained
    /// is real (a 72-second rated phase at 0.5× burst still shed ~1%).
    const RATED_FRACTION: f64 = 0.35;
    /// Distinct request bodies; requests cycle through them so the
    /// bitwise reference stays small while batches mix by-id readouts
    /// with inductive scoring.
    const UNIQUE_BODIES: usize = 256;

    fn round2(v: f64) -> f64 {
        (v * 100.0).round() / 100.0
    }

    /// Nearest-rank percentile of an unsorted latency sample.
    fn percentile(samples: &mut [f64], q: f64) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let rank = (q * samples.len() as f64).ceil() as usize;
        samples[rank.clamp(1, samples.len()) - 1]
    }

    /// One phase's merged outcome counts and success latencies.
    #[derive(Default)]
    struct PhaseStats {
        ok: usize,
        shed: usize,
        deadline: usize,
        other: usize,
        mismatches: usize,
        missing_retry_after: usize,
        lat_ok_ms: Vec<f64>,
    }

    impl PhaseStats {
        fn total(&self) -> usize {
            self.ok + self.shed + self.deadline + self.other
        }

        fn merge(&mut self, other: PhaseStats) {
            self.ok += other.ok;
            self.shed += other.shed;
            self.deadline += other.deadline;
            self.other += other.other;
            self.mismatches += other.mismatches;
            self.missing_retry_after += other.missing_retry_after;
            self.lat_ok_ms.extend(other.lat_ok_ms);
        }

        fn shed_fraction(&self) -> f64 {
            self.shed as f64 / self.total().max(1) as f64
        }

        fn json(&mut self, scheduled_rps: f64, wall_s: f64) -> serde_json::Value {
            let (p50, p99, p999) = (
                percentile(&mut self.lat_ok_ms, 0.50),
                percentile(&mut self.lat_ok_ms, 0.99),
                percentile(&mut self.lat_ok_ms, 0.999),
            );
            let latency = serde_json::json!({
                "p50": round2(p50),
                "p99": round2(p99),
                "p999": round2(p999),
            });
            serde_json::json!({
                "scheduled_rps": round2(scheduled_rps),
                "achieved_rps": round2(self.total() as f64 / wall_s),
                "wall_s": round2(wall_s),
                "requests": self.total(),
                "ok": self.ok,
                "shed_429": self.shed,
                "deadline_504": self.deadline,
                "other_failures": self.other,
                "shed_fraction": round2(self.shed_fraction() * 100.0) / 100.0,
                "latency_ms": latency,
            })
        }
    }

    /// The request mix: every fourth body is a by-id readout (the
    /// sharded ownership path), the rest inductive scoring (served by
    /// any replica; routed for load spread).
    fn bodies(articles: usize, creators: usize, subjects: usize) -> Vec<String> {
        (0..UNIQUE_BODIES)
            .map(|i| {
                if i % 4 == 0 {
                    format!("{{\"id\":{}}}", (i * 7) % articles)
                } else {
                    format!(
                        "{{\"text\":\"urgent report {i} contradicts the senate budget figures\",\
                         \"creator\":{},\"subjects\":[{}]}}",
                        i % creators,
                        i % subjects
                    )
                }
            })
            .collect()
    }

    /// Sends every unique body once, sequentially, to the unsharded
    /// control server: the bitwise reference for the whole run.
    fn reference_pass(control_addr: &str, bodies: &[String]) -> Vec<String> {
        let mut client = HttpClient::connect(control_addr).expect("connect control");
        client.set_timeout(Duration::from_secs(30)).expect("timeout");
        bodies
            .iter()
            .map(|body| {
                let (status, response) = client.post("/v1/predict", body).expect("control post");
                assert_eq!(status, 200, "control reference request failed: {response}");
                response
            })
            .collect()
    }

    /// Closed-loop capacity probe: `clients` keep-alive connections
    /// hammer the router back-to-back; returns the achieved rate of
    /// *successful* responses — shed 429s are tolerated but do not
    /// count as capacity, or a saturated probe would quote its own
    /// rejection throughput as tier throughput. This is the
    /// denominator the rated/overload arrival rates derive from.
    fn closed_loop_probe(addr: &str, bodies: &Arc<Vec<String>>, clients: usize, per_client: usize) -> f64 {
        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.to_string();
                let bodies = Arc::clone(bodies);
                std::thread::spawn(move || {
                    let mut client = HttpClient::connect(&addr).expect("connect router");
                    client.set_timeout(Duration::from_secs(30)).expect("timeout");
                    let mut ok = 0usize;
                    for i in 0..per_client {
                        let body = &bodies[(c * per_client + i) % bodies.len()];
                        let (status, response) =
                            client.post("/v1/predict", body).expect("probe post");
                        assert!(
                            status == 200 || status == 429,
                            "probe request got {status}: {response}"
                        );
                        ok += usize::from(status == 200);
                    }
                    ok
                })
            })
            .collect();
        let ok: usize = handles.into_iter().map(|h| h.join().expect("probe client")).sum();
        assert!(ok > 0, "capacity probe saw no successful responses");
        ok as f64 / start.elapsed().as_secs_f64()
    }

    /// One open-loop phase: `total` requests at `rate_rps`, spread over
    /// [`WORKERS`] sender threads. Worker `w` owns requests
    /// `w, w+W, w+2W, …`; each is due at `start + i/rate` and its
    /// latency runs from that scheduled instant, so a sender that fell
    /// behind reports the lateness instead of quietly easing the load.
    fn open_loop(
        addr: &str,
        bodies: &Arc<Vec<String>>,
        reference: &Arc<Vec<String>>,
        rate_rps: f64,
        total: usize,
    ) -> (PhaseStats, f64) {
        let start = Instant::now();
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let addr = addr.to_string();
                let bodies = Arc::clone(bodies);
                let reference = Arc::clone(reference);
                std::thread::spawn(move || {
                    let mut client: Option<HttpClient> = None;
                    let mut stats = PhaseStats::default();
                    let mut i = w;
                    while i < total {
                        let due = start + Duration::from_secs_f64(i as f64 / rate_rps);
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let body = &bodies[i % bodies.len()];
                        let result = (|| {
                            if client.is_none() {
                                let mut fresh = HttpClient::connect_timeout(
                                    &addr,
                                    Duration::from_secs(10),
                                )?;
                                fresh.set_timeout(Duration::from_secs(30))?;
                                client = Some(fresh);
                            }
                            client
                                .as_mut()
                                .expect("client just connected")
                                .post_with_headers("/v1/predict", body, &[])
                        })();
                        let ms = due.elapsed().as_secs_f64() * 1e3;
                        match result {
                            Ok((200, response, _)) => {
                                stats.ok += 1;
                                stats.lat_ok_ms.push(ms);
                                if response != reference[i % reference.len()] {
                                    stats.mismatches += 1;
                                }
                            }
                            Ok((429, _, headers)) => {
                                stats.shed += 1;
                                if !headers.iter().any(|(name, _)| name == "retry-after") {
                                    stats.missing_retry_after += 1;
                                }
                            }
                            Ok((504, _, _)) => stats.deadline += 1,
                            Ok(_) => stats.other += 1,
                            Err(_) => {
                                // Transport error: count it and dial a
                                // fresh connection for the next request.
                                stats.other += 1;
                                client = None;
                            }
                        }
                        i += WORKERS;
                    }
                    stats
                })
            })
            .collect();
        let mut merged = PhaseStats::default();
        for handle in handles {
            merged.merge(handle.join().expect("load worker"));
        }
        (merged, start.elapsed().as_secs_f64())
    }

    pub fn write_report(out_path: &str, total_requests: usize, slo_ms: f64) {
        assert!(total_requests >= 1_000, "need at least 1000 requests for stable percentiles");
        let (model, int8_model) = super::serve::build_models();
        drop(int8_model);
        let model = Arc::new(model);
        let (articles, creators, subjects) = model.corpus_sizes();

        // The tier: 2 shards × 2 replicas plus the unsharded control,
        // all serving the same weights in this process on ephemeral
        // ports. The router's admission bound is lowered so overload
        // exercises the shed path (see INFLIGHT_BOUND).
        let shard_server = |index: usize| {
            let config = ServeConfig {
                addr: "127.0.0.1:0".into(),
                shard: Some((index, 2)),
                ..ServeConfig::default()
            };
            Server::start(Arc::clone(&model), &config).expect("start shard worker")
        };
        let tier = [shard_server(0), shard_server(0), shard_server(1), shard_server(1)];
        let control = {
            let config = ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() };
            Server::start(Arc::clone(&model), &config).expect("start control server")
        };
        let spec = format!(
            "{},{};{},{}",
            tier[0].local_addr(),
            tier[1].local_addr(),
            tier[2].local_addr(),
            tier[3].local_addr()
        );
        let mut router_config =
            RouterConfig::new(Topology::parse(&spec).expect("tier topology"));
        router_config.inflight_bound = INFLIGHT_BOUND;
        let deadline_ms = router_config.deadline_ms;
        let router = Router::start(router_config).expect("start router");
        let router_addr = router.local_addr().to_string();

        let bodies = Arc::new(bodies(articles, creators, subjects));
        let reference = Arc::new(reference_pass(&control.local_addr().to_string(), &bodies));

        // Let the first health-probe round mark every replica up before
        // measuring anything.
        std::thread::sleep(Duration::from_millis(500));
        let max_rps = closed_loop_probe(&router_addr, &bodies, 32, 150);
        // Settle: the probe leaves the tier saturated, and the rated
        // phase must not start by shedding the probe's backlog.
        std::thread::sleep(Duration::from_millis(500));
        let rated_rps = RATED_FRACTION * max_rps;
        let overload_rps = 2.0 * rated_rps;
        let overload_n = total_requests / 5;
        let rated_n = total_requests - overload_n;

        eprintln!(
            "capacity probe: {max_rps:.0} rps; rated {rated_rps:.0} rps × {rated_n}, \
             overload {overload_rps:.0} rps × {overload_n}"
        );
        let (mut rated, rated_wall) =
            open_loop(&router_addr, &bodies, &reference, rated_rps, rated_n);
        // Drain between phases so overload starts from an idle tier.
        std::thread::sleep(Duration::from_millis(500));
        let (mut overload, overload_wall) =
            open_loop(&router_addr, &bodies, &reference, overload_rps, overload_n);

        let rated_p99 = percentile(&mut rated.lat_ok_ms, 0.99);
        let overload_p99 = percentile(&mut overload.lat_ok_ms, 0.99);

        // Gate 1: sharded answers are the single-process answers.
        assert_eq!(
            rated.mismatches + overload.mismatches,
            0,
            "routed responses drifted from the single-process control"
        );
        // Gate 2: the rated load meets its SLO without shedding.
        assert!(
            rated_p99 <= slo_ms,
            "rated-load p99 {rated_p99:.1}ms violates the {slo_ms}ms SLO"
        );
        assert!(
            rated.shed_fraction() < 0.01,
            "rated load shed {:.1}% of requests; the tier is under-provisioned",
            rated.shed_fraction() * 100.0
        );
        assert_eq!(rated.deadline, 0, "rated load hit the routing deadline");
        // Gate 3: overload sheds with 429s while successful-request
        // latency stays far from the deadline — backpressure must show
        // up before latency collapse does.
        assert!(
            overload.shed_fraction() > rated.shed_fraction() && overload.shed > 0,
            "2x overload shed {:.2}% (rated {:.2}%): the bounded queue never pushed back",
            overload.shed_fraction() * 100.0,
            rated.shed_fraction() * 100.0
        );
        assert!(
            overload_p99 <= (deadline_ms as f64) / 2.0,
            "overload success p99 {overload_p99:.0}ms collapsed toward the {deadline_ms}ms deadline"
        );
        assert_eq!(
            rated.missing_retry_after + overload.missing_retry_after,
            0,
            "a 429 arrived without a Retry-After header"
        );

        fd_obs::event(
            fd_obs::Level::Info,
            "bench.load",
            &[
                ("capacity_rps", max_rps.into()),
                ("rated_p99_ms", rated_p99.into()),
                ("overload_shed_fraction", overload.shed_fraction().into()),
            ],
        );
        let corpus_json = serde_json::json!({
            "articles": articles,
            "creators": creators,
            "subjects": subjects,
        });
        let tier_json = serde_json::json!({
            "shards": 2,
            "replicas_per_shard": 2,
            "router_inflight_bound": INFLIGHT_BOUND,
            "router_deadline_ms": deadline_ms,
        });
        let harness_json = serde_json::json!({
            "discipline": "open-loop (latency from scheduled arrival)",
            "workers": WORKERS,
            "unique_bodies": UNIQUE_BODIES,
            "by_id_fraction": 0.25,
        });
        let gates_json = serde_json::json!({
            "bitwise_identical_to_control": true,
            "rated_p99_within_slo": true,
            "overload_sheds_before_latency_collapse": true,
            "every_429_has_retry_after": true,
        });
        let report = serde_json::json!({
            "generator": "cargo run --release -p fd-bench --bin report -- load",
            "machine_threads": super::machine_threads(),
            "fd_threads_env": std::env::var("FD_THREADS").unwrap_or_default(),
            "fd_threads_resolved": fd_tensor::parallel::current_threads(),
            "simd_level": fd_tensor::simd_level().name(),
            "corpus": corpus_json,
            "tier": tier_json,
            "harness": harness_json,
            "rated_fraction_of_capacity": RATED_FRACTION,
            "capacity_probe_rps": round2(max_rps),
            "slo_p99_ms": slo_ms,
            "total_requests": rated.total() + overload.total(),
            "rated": rated.json(rated_rps, rated_wall),
            "overload": overload.json(overload_rps, overload_wall),
            "gates": gates_json,
        });
        let json = serde_json::to_string_pretty(&report).expect("serialise report");
        std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("{out_path}: {e}"));
        fd_obs::event(fd_obs::Level::Info, "report.wrote", &[("path", out_path.into())]);

        router.shutdown();
        for server in tier {
            server.shutdown();
        }
        control.shutdown();
    }
}

mod ingest {
    //! The `ingest` mode: the early-detection benchmark of
    //! `POST /v1/ingest`. Per corpus scale it trains a model, serves it
    //! in-process, and times single-article ingests at subject degrees
    //! 0–5 while background clients hammer `/v1/predict` (every one of
    //! those must come back 200 — ingest never blocks serving). Every
    //! ingested node's probabilities are then checked against the
    //! honest O(corpus) extended-graph recompute, per degree, against
    //! the documented 1e-5 bound. Across scales, the median ingest
    //! latency of the largest corpus must stay under 4× the smallest —
    //! the measurable form of "ingest cost tracks the neighbourhood,
    //! not the corpus".

    use fd_core::{FakeDetector, FakeDetectorConfig, TrainMode, TrainedFakeDetector};
    use fd_data::{
        generate_at_scale, CvSplits, ExperimentContext, ExplicitFeatures, GeneratorConfig,
        LabelMode, TokenizedCorpus, TrainSets,
    };
    use fd_graph::{GraphOverlay, NodeType};
    use fd_serve::{
        HttpClient, IngestArticle, IngestBatch, IngestReport, ServeConfig, ServeModel, Server,
    };
    use fd_tensor::Matrix;
    use fd_text::{encode_sequence, Tokenizer};
    use rand::{rngs::StdRng, SeedableRng};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const EXPLICIT_DIM: usize = 40;
    const SEQ_LEN: usize = 10;
    const MAX_VOCAB: usize = 4000;
    /// The serving guarantee from DESIGN.md "Incremental diffusion".
    const DELTA_BOUND: f32 = 1e-5;
    const MAX_DEGREE: usize = 5;
    const INGESTS_PER_DEGREE: usize = 8;

    fn round2(v: f64) -> f64 {
        (v * 100.0).round() / 100.0
    }

    /// Nearest-rank percentile over an ascending-sorted sample.
    fn pctl(sorted: &[f64], q: f64) -> f64 {
        sorted[(((sorted.len() - 1) as f64) * q).round() as usize]
    }

    fn median(samples: &[f64]) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        pctl(&sorted, 0.5)
    }

    /// The in-process mirror of the server's attach path over the
    /// frozen feature pipeline; its [`extended_states_rounds`] pass is
    /// the full-recompute reference every delta is judged against.
    ///
    /// [`extended_states_rounds`]: TrainedFakeDetector::extended_states_rounds
    struct Reference<'a> {
        ctx: ExperimentContext<'a>,
        trained: &'a TrainedFakeDetector,
        overlay: GraphOverlay,
        explicit_rows: [Vec<Vec<f32>>; 3],
        sequences: [Vec<Vec<usize>>; 3],
    }

    impl<'a> Reference<'a> {
        fn new(ctx: ExperimentContext<'a>, trained: &'a TrainedFakeDetector) -> Self {
            let overlay = GraphOverlay::new(&ctx.corpus.graph);
            Self {
                ctx,
                trained,
                overlay,
                explicit_rows: Default::default(),
                sequences: Default::default(),
            }
        }

        fn apply_article(&mut self, article: &IngestArticle) {
            self.overlay
                .add_article(article.creator, &article.subjects)
                .expect("bench sends valid articles");
            let tokens = Tokenizer::default().tokenize(&article.text);
            self.explicit_rows[0].push(
                self.ctx.explicit.featurise_tokens(NodeType::Article, &tokens).row(0).to_vec(),
            );
            self.sequences[0].push(encode_sequence(
                &tokens,
                &self.ctx.tokenized.vocab,
                self.ctx.tokenized.seq_len,
            ));
        }

        /// Final-round article probabilities via the honest O(corpus)
        /// recompute over the extended graph.
        fn full_recompute_article_probabilities(&self) -> Vec<Vec<f32>> {
            let new_explicit: [Matrix; 3] = std::array::from_fn(|slot| {
                let rows = &self.explicit_rows[slot];
                let mut m = Matrix::zeros(rows.len(), self.ctx.explicit.dim);
                for (k, row) in rows.iter().enumerate() {
                    m.row_mut(k).copy_from_slice(row);
                }
                m
            });
            let history = self
                .trained
                .extended_states_rounds(&self.ctx, &self.overlay, &new_explicit, &self.sequences)
                .expect("extended recompute");
            let last = history.last().expect("at least one round");
            (0..last[0].rows())
                .map(|i| self.trained.node_probabilities(NodeType::Article, last[0].row(i)))
                .collect()
        }
    }

    struct ScaleRun {
        json: serde_json::Value,
        median_ingest_ms: f64,
    }

    fn scale_run(scale: f64) -> ScaleRun {
        let seed = 42;
        let corpus = generate_at_scale(&GeneratorConfig::politifact(), scale, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 10, &mut rng).fold(0).0,
        };
        let tokenized = TokenizedCorpus::build(&corpus, SEQ_LEN, MAX_VOCAB);
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, EXPLICIT_DIM);
        let ctx = ExperimentContext {
            corpus: &corpus,
            tokenized: &tokenized,
            explicit: &explicit,
            train: &train,
            mode: LabelMode::Binary,
            seed,
        };
        // Above Table-1 scale, train with the bounded-memory sampled
        // path (the ingest timings do not depend on how the weights
        // were fitted, only on the serving graph's size).
        let mut model_cfg = FakeDetectorConfig {
            epochs: 1,
            validation_fraction: 0.0,
            ..FakeDetectorConfig::default()
        };
        if scale > 1.0 {
            model_cfg.train_mode = TrainMode::Sampled { batch_size: 256, fanout: 8, rounds: 2 };
        }
        let trained = FakeDetector::new(model_cfg).fit(&ctx);
        let twin = TrainedFakeDetector::from_json(&trained.to_json()).expect("weights round-trip");

        let warmup = Instant::now();
        let model = ServeModel::new(
            corpus.clone(),
            twin,
            train.clone(),
            LabelMode::Binary,
            EXPLICIT_DIM,
            SEQ_LEN,
            MAX_VOCAB,
        );
        let warmup_ms = warmup.elapsed().as_secs_f64() * 1e3;
        let (articles_n, creators_n, subjects_n) = model.corpus_sizes();
        let config = ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() };
        let server = Server::start(Arc::new(model), &config).expect("start server");
        let addr = server.local_addr().to_string();

        // Background predict hammer: the zero-dropped-requests claim is
        // only worth stating if predicts actually overlap the ingests.
        let stop = Arc::new(AtomicBool::new(false));
        let sent = Arc::new(AtomicUsize::new(0));
        let non_200 = Arc::new(AtomicUsize::new(0));
        let hammers: Vec<_> = (0..2)
            .map(|t| {
                let addr = addr.clone();
                let (stop, sent, non_200) =
                    (Arc::clone(&stop), Arc::clone(&sent), Arc::clone(&non_200));
                std::thread::spawn(move || {
                    let mut client = HttpClient::connect(&addr).expect("hammer connect");
                    client.set_timeout(Duration::from_secs(30)).expect("timeout");
                    let mut i = 0usize;
                    while !stop.load(Ordering::SeqCst) {
                        let body = format!(
                            "{{\"text\":\"load probe {t}-{i} on medicare\",\"creator\":{},\"subjects\":[{}]}}",
                            i % creators_n,
                            i % subjects_n
                        );
                        let (status, _) = client.post("/v1/predict", &body).expect("post");
                        sent.fetch_add(1, Ordering::SeqCst);
                        if status != 200 {
                            non_200.fetch_add(1, Ordering::SeqCst);
                        }
                        i += 1;
                    }
                })
            })
            .collect();

        // Single-article ingests at subject degrees 0..=5 (the creator
        // edge is always present — degree counts the subjects cited).
        let mut reference = Reference::new(ctx, &trained);
        let mut ingest_client = HttpClient::connect(&addr).expect("connect");
        ingest_client.set_timeout(Duration::from_secs(60)).expect("timeout");
        let mut all_ms: Vec<f64> = Vec::new();
        struct DegreeSamples {
            ms: Vec<f64>,
            attach_us: Vec<f64>,
            diffuse_us: Vec<f64>,
            affected: Vec<f64>,
            reported: Vec<(usize, Vec<f32>)>,
        }
        let mut per_degree: Vec<DegreeSamples> = Vec::new();
        for degree in 0..=MAX_DEGREE {
            let mut samples = DegreeSamples {
                ms: Vec::new(),
                attach_us: Vec::new(),
                diffuse_us: Vec::new(),
                affected: Vec::new(),
                reported: Vec::new(),
            };
            for i in 0..INGESTS_PER_DEGREE {
                let article = IngestArticle {
                    text: format!(
                        "breaking claim {degree}-{i} disputes the budget, immigration and health care record"
                    ),
                    creator: (degree * INGESTS_PER_DEGREE + i) % creators_n,
                    subjects: (0..degree).map(|k| (i * 7 + k) % subjects_n).collect(),
                };
                let batch =
                    IngestBatch { articles: vec![article.clone()], ..IngestBatch::default() };
                let body = serde_json::to_string(&batch).expect("batch json");
                let posted = Instant::now();
                let (status, response) =
                    ingest_client.post("/v1/ingest", &body).expect("post ingest");
                let ms = posted.elapsed().as_secs_f64() * 1e3;
                assert_eq!(status, 200, "ingest at degree {degree} failed: {response}");
                let report: IngestReport = serde_json::from_str(&response).expect("report json");
                samples.ms.push(ms);
                all_ms.push(ms);
                samples.attach_us.push(report.attach_us as f64);
                samples.diffuse_us.push(report.diffuse_us as f64);
                samples.affected.push(report.affected_base_nodes as f64);
                let node = &report.articles[0];
                samples.reported.push((node.id, node.probabilities.clone()));
                reference.apply_article(&article);
            }
            per_degree.push(samples);
        }

        stop.store(true, Ordering::SeqCst);
        for hammer in hammers {
            hammer.join().expect("hammer thread");
        }
        server.shutdown();

        // The delta curve: every ingested article vs the full
        // extended-graph recompute, grouped by degree.
        let full = reference.full_recompute_article_probabilities();
        let mut overall_delta = 0.0f32;
        let degrees_json: Vec<serde_json::Value> = per_degree
            .iter()
            .enumerate()
            .map(|(degree, samples)| {
                let mut max_delta = 0.0f32;
                for (id, probs) in &samples.reported {
                    for (a, b) in probs.iter().zip(&full[*id]) {
                        max_delta = max_delta.max((a - b).abs());
                    }
                }
                assert!(
                    max_delta <= DELTA_BOUND,
                    "degree {degree}: max |Δ| {max_delta} exceeds the documented {DELTA_BOUND} bound"
                );
                overall_delta = overall_delta.max(max_delta);
                let mut sorted = samples.ms.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
                let mean =
                    |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
                serde_json::json!({
                    "degree": degree,
                    "ingests": samples.ms.len(),
                    "ingest_ms_p50": round2(pctl(&sorted, 0.50)),
                    "ingest_ms_p90": round2(pctl(&sorted, 0.90)),
                    "ingest_ms_max": round2(pctl(&sorted, 1.0)),
                    "attach_us_median": round2(median(&samples.attach_us)),
                    "diffuse_us_median": round2(median(&samples.diffuse_us)),
                    "affected_base_nodes_mean": round2(mean(&samples.affected)),
                    "max_abs_delta_vs_full_recompute": max_delta,
                })
            })
            .collect();

        let requests = sent.load(Ordering::SeqCst);
        let failures = non_200.load(Ordering::SeqCst);
        assert!(requests > 0, "the predict hammer must have overlapped the ingests");
        assert_eq!(failures, 0, "{failures} of {requests} predicts failed during ingest");

        let mut sorted = all_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median_ingest_ms = pctl(&sorted, 0.5);
        fd_obs::event(
            fd_obs::Level::Info,
            "bench.ingest_scale",
            &[
                ("scale", scale.into()),
                ("articles", articles_n.into()),
                ("median_ingest_ms", median_ingest_ms.into()),
                ("max_abs_delta", (overall_delta as f64).into()),
            ],
        );
        let hammer_json = serde_json::json!({
            "requests": requests,
            "non_200": failures,
        });
        let json = serde_json::json!({
            "scale": scale,
            "articles": articles_n,
            "creators": creators_n,
            "subjects": subjects_n,
            "warmup_full_diffusion_ms": round2(warmup_ms),
            "ingests": all_ms.len(),
            "ingest_ms_p50": round2(pctl(&sorted, 0.50)),
            "ingest_ms_p90": round2(pctl(&sorted, 0.90)),
            "ingest_ms_max": round2(pctl(&sorted, 1.0)),
            "degrees": degrees_json,
            "max_abs_delta_vs_full_recompute": overall_delta,
            "predict_hammer": hammer_json,
        });
        ScaleRun { json, median_ingest_ms }
    }

    pub fn write_report(out_path: &str, scales: &[f64]) {
        assert!(!scales.is_empty(), "need at least one ingest scale");
        let runs: Vec<ScaleRun> = scales.iter().map(|&s| scale_run(s)).collect();
        let ratio = runs.last().expect("non-empty").median_ingest_ms / runs[0].median_ingest_ms;
        if runs.len() > 1 {
            assert!(
                ratio < 4.0,
                "median ingest latency grew {ratio:.2}× from scale {} to {} — \
                 ingest cost must track the neighbourhood, not the corpus",
                scales[0],
                scales[scales.len() - 1],
            );
        }
        let report = serde_json::json!({
            "generator": "cargo run --release -p fd-bench --bin report -- ingest",
            "machine_threads": super::machine_threads(),
            "fd_threads_env": std::env::var("FD_THREADS").unwrap_or_default(),
            "fd_threads_resolved": fd_tensor::parallel::current_threads(),
            "simd_level": fd_tensor::simd_level().name(),
            "delta_bound": DELTA_BOUND,
            "scales": runs.iter().map(|r| r.json.clone()).collect::<Vec<_>>(),
            "median_ingest_ms_ratio_last_vs_first": round2(ratio),
            "corpus_size_independent": ratio < 4.0,
        });
        let json = serde_json::to_string_pretty(&report).expect("serialise report");
        std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("{out_path}: {e}"));
        fd_obs::event(fd_obs::Level::Info, "report.wrote", &[("path", out_path.into())]);
    }
}

mod tensor {
    //! The `tensor` mode: kernel and model-step timings.

    use fd_tensor::{parallel, uniform_in, Matrix};
    use rand::{rngs::StdRng, SeedableRng};
    use std::time::Instant;

    /// Median wall-clock milliseconds of `runs` calls to `f`.
    fn median_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
        let mut samples: Vec<f64> = (0..runs)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        samples[samples.len() / 2]
    }

    fn round2(v: f64) -> f64 {
        (v * 100.0).round() / 100.0
    }

    /// Times one kernel at `size`³ across the three implementations.
    fn kernel_section(
        name: &str,
        size: usize,
        runs: usize,
        naive: impl Fn(&Matrix, &Matrix) -> Matrix,
        blocked: impl Fn(&Matrix, &Matrix) -> Matrix,
    ) -> serde_json::Value {
        let mut rng = StdRng::seed_from_u64(42);
        let a = uniform_in(size, size, -1.0, 1.0, &mut rng);
        let b = uniform_in(size, size, -1.0, 1.0, &mut rng);

        let naive_ms = median_ms(runs, || naive(&a, &b));
        let sweep: Vec<(usize, f64)> = super::SWEEP_WIDTHS
            .iter()
            .map(|&t| (t, parallel::with_thread_count(t, || median_ms(runs, || blocked(&a, &b)))))
            .collect();
        let blocked_serial_ms = sweep[0].1;
        let blocked_4t_ms = sweep[2].1;

        fd_obs::event(
            fd_obs::Level::Info,
            "bench.kernel",
            &[
                ("kernel", name.into()),
                ("size", size.into()),
                ("naive_ms", naive_ms.into()),
                ("blocked_serial_ms", blocked_serial_ms.into()),
                ("blocked_parallel_4t_ms", blocked_4t_ms.into()),
            ],
        );
        serde_json::json!({
            "size": size,
            "naive_serial_ms": round2(naive_ms),
            "blocked_serial_ms": round2(blocked_serial_ms),
            "blocked_parallel_4t_ms": round2(blocked_4t_ms),
            "speedup_blocked_serial_vs_naive": round2(naive_ms / blocked_serial_ms),
            "speedup_parallel_4t_vs_naive": round2(naive_ms / blocked_4t_ms),
            "thread_scaling": super::scaling_curve(&sweep),
        })
    }

    /// Times a full FakeDetector inference step (diffusion + heads) on a
    /// small synthetic corpus: the per-node seed path vs the batched
    /// forward, serial and row-parallel.
    fn model_section() -> serde_json::Value {
        use fd_bench::{prepare, SweepConfig};
        use fd_core::{FakeDetector, FakeDetectorConfig};
        use fd_data::{ExperimentContext, ExplicitFeatures, LabelMode};

        let config = SweepConfig { scale: 0.05, folds: 1, ..SweepConfig::default() };
        let prepared = prepare(&config);
        let (train, _test) = prepared.split(0, 1.0, config.seed);
        let explicit = ExplicitFeatures::extract(&prepared.corpus, &prepared.tokenized, &train, 60);
        let ctx = ExperimentContext {
            corpus: &prepared.corpus,
            tokenized: &prepared.tokenized,
            explicit: &explicit,
            train: &train,
            mode: LabelMode::Binary,
            seed: 3,
        };
        let model_cfg = FakeDetectorConfig { epochs: 1, ..FakeDetectorConfig::default() };
        let trained = FakeDetector::new(model_cfg).fit(&ctx);
        let corpus = &prepared.corpus;

        let per_node_ms = median_ms(3, || trained.predict_per_node(&ctx));
        let sweep: Vec<(usize, f64)> = super::SWEEP_WIDTHS
            .iter()
            .map(|&t| (t, parallel::with_thread_count(t, || median_ms(3, || trained.predict(&ctx)))))
            .collect();
        let batched_serial_ms = sweep[0].1;
        let batched_4t_ms = sweep[2].1;
        fd_obs::event(
            fd_obs::Level::Info,
            "bench.model_predict",
            &[
                ("articles", corpus.articles.len().into()),
                ("per_node_ms", per_node_ms.into()),
                ("batched_serial_ms", batched_serial_ms.into()),
                ("batched_parallel_4t_ms", batched_4t_ms.into()),
            ],
        );
        serde_json::json!({
            "articles": corpus.articles.len(),
            "per_node_ms": round2(per_node_ms),
            "batched_serial_ms": round2(batched_serial_ms),
            "batched_parallel_4t_ms": round2(batched_4t_ms),
            "speedup_batched_serial_vs_per_node": round2(per_node_ms / batched_serial_ms),
            "speedup_batched_4t_vs_per_node": round2(per_node_ms / batched_4t_ms),
            "thread_scaling": super::scaling_curve(&sweep),
        })
    }

    pub fn write_report(out_path: &str) {
        let report = serde_json::json!({
            "generator": "cargo run --release -p fd-bench --bin report -- tensor",
            "machine_threads": super::machine_threads(),
            "fd_threads_env": std::env::var("FD_THREADS").unwrap_or_default(),
            "fd_threads_resolved": parallel::current_threads(),
            "simd_level": fd_tensor::simd_level().name(),
            "matmul": kernel_section("matmul", 512, 5, Matrix::matmul_naive, Matrix::matmul),
            "transpose_matmul": kernel_section(
                "transpose_matmul",
                512,
                5,
                Matrix::transpose_matmul_naive,
                Matrix::transpose_matmul,
            ),
            "matmul_transpose": kernel_section(
                "matmul_transpose",
                512,
                5,
                Matrix::matmul_transpose_naive,
                Matrix::matmul_transpose,
            ),
            "model_predict": model_section(),
        });
        let json = serde_json::to_string_pretty(&report).expect("serialise report");
        std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("{out_path}: {e}"));
        fd_obs::event(fd_obs::Level::Info, "report.wrote", &[("path", out_path.into())]);
    }
}

//! Regenerates **Figure 4**: bi-class credibility inference of articles
//! (4(a)–(d)), creators (4(e)–(h)) and subjects (4(i)–(l)) — Accuracy,
//! F1, Precision and Recall for all six methods across the θ grid.
//!
//! `cargo run --release -p fd-bench --bin fig4 [-- --quick|--full|--scale f|--folds n|--seed n]`
//!
//! The default configuration (scale 0.08, 4 θ points, 2 folds) finishes
//! in minutes on one core; `--full` is the paper-scale protocol.

use fd_baselines::default_baselines;
use fd_bench::{run_sweep, save_results, SweepConfig};
use fd_core::FakeDetector;
use fd_data::{CredibilityModel, LabelMode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = SweepConfig::from_args(&args);

    let mut models: Vec<Box<dyn CredibilityModel>> = vec![Box::new(FakeDetector::default())];
    models.extend(default_baselines());

    let results = run_sweep(&config, LabelMode::Binary, &models);
    for r in &results {
        println!("{}", r.all_tables());
    }
    save_results("fig4", &results);
}

//! Regenerates **Figure 5**: multi-class (6-way Truth-O-Meter) inference
//! of articles (5(a)–(d)), creators (5(e)–(h)) and subjects (5(i)–(l)) —
//! Accuracy, Macro-F1, Macro-Precision and Macro-Recall for all six
//! methods across the θ grid.
//!
//! `cargo run --release -p fd-bench --bin fig5 [-- --quick|--full|--scale f|--folds n|--seed n]`

use fd_baselines::default_baselines;
use fd_bench::{run_sweep, save_results, SweepConfig};
use fd_core::FakeDetector;
use fd_data::{CredibilityModel, LabelMode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = SweepConfig::from_args(&args);

    let mut models: Vec<Box<dyn CredibilityModel>> = vec![Box::new(FakeDetector::default())];
    models.extend(default_baselines());

    let results = run_sweep(&config, LabelMode::MultiClass, &models);
    for r in &results {
        println!("{}", r.all_tables());
    }
    save_results("fig5", &results);
}

//! Regenerates **Figure 1** (the PolitiFact dataset analysis):
//!
//! * `a`  — power-law creator–article distribution (Fig 1(a));
//! * `bc` — frequent words in true vs false articles (Fig 1(b)/(c));
//! * `d`  — top-20 subject credibility distribution (Fig 1(d));
//! * `ef` — case-study creator label mixtures (Fig 1(e)/(f)).
//!
//! `cargo run --release -p fd-bench --bin fig1 [-- a|bc|d|ef|all] [--scale f]`

use fd_data::{
    creator_tally, generate, subject_tallies, word_frequencies, Credibility, GeneratorConfig,
};
use fd_graph::{degree_histogram, fit_power_law};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = 0.25f64;
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "a" | "bc" | "d" | "ef" | "all" => which = args[i].clone(),
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    fd_obs::event(
        fd_obs::Level::Info,
        "fig1.generate",
        &[("scale", scale.into()), ("seed", seed.into())],
    );
    let corpus = generate(&GeneratorConfig::politifact().scaled(scale), seed);

    if which == "a" || which == "all" {
        println!("── Fig 1(a): creator-article power law ──");
        let counts: Vec<usize> = (0..corpus.creators.len())
            .map(|u| corpus.graph.articles_of_creator(u).len())
            .collect();
        let hist = degree_histogram(&counts);
        println!("{:<22}{:>20}", "# published articles", "fraction of creators");
        let total = corpus.creators.len() as f64;
        // Log-spaced sample of the histogram, like the paper's log-log scatter.
        let mut shown = 0;
        let mut last_bucket = 0usize;
        for (&degree, &n) in &hist {
            let bucket = (degree as f64).log2() as usize;
            if bucket != last_bucket || shown < 6 {
                println!("{degree:<22}{:>20.5}", n as f64 / total);
                last_bucket = bucket;
                shown += 1;
            }
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        println!("max articles by one creator: paper 599, generated {max}");
        match fit_power_law(&counts, 2) {
            Some(fit) => println!(
                "power-law fit: alpha = {:.2} (x_min = {}, tail n = {})",
                fit.alpha, fit.x_min, fit.n_tail
            ),
            None => println!("power-law fit: insufficient tail"),
        }
        println!();
    }

    if which == "bc" || which == "all" {
        println!("── Fig 1(b): frequent words in TRUE articles ──");
        for (word, count) in word_frequencies(&corpus, true, 20) {
            println!("{word:<20}{count:>8}");
        }
        println!();
        println!("── Fig 1(c): frequent words in FALSE articles ──");
        for (word, count) in word_frequencies(&corpus, false, 20) {
            println!("{word:<20}{count:>8}");
        }
        println!();
    }

    if which == "d" || which == "all" {
        println!("── Fig 1(d): top-20 subject credibility distribution ──");
        println!("{:<16}{:>8}{:>8}{:>10}", "subject", "true", "false", "true %");
        for tally in subject_tallies(&corpus).into_iter().take(20) {
            println!(
                "{:<16}{:>8}{:>8}{:>9.1}%",
                tally.name,
                tally.true_count,
                tally.false_count,
                100.0 * tally.true_fraction()
            );
        }
        println!("(paper: health 46.5% true of 1,572; economy 63.2% true of 1,498)");
        println!();
    }

    if which == "ef" || which == "all" {
        println!("── Fig 1(e)/(f): case-study creators ──");
        let paper: [(&str, [u32; 6]); 4] = [
            ("rep-archetype-heavy-false", [23, 60, 77, 112, 167, 75]),
            ("rep-archetype-balanced", [4, 5, 14, 8, 13, 0]),
            ("dem-archetype-mostly-true", [123, 165, 161, 70, 71, 9]),
            ("dem-archetype-lean-true", [72, 76, 69, 41, 31, 7]),
        ];
        for (creator, (name, paper_mix)) in paper.iter().enumerate() {
            let tally = creator_tally(&corpus, creator);
            let total: usize = tally.iter().sum();
            println!("{name} ({total} articles at this scale):");
            for (k, label) in Credibility::ALL.iter().enumerate() {
                let paper_total: u32 = paper_mix.iter().sum();
                println!(
                    "  {:<15} generated {:>4} ({:>4.1}%)   paper {:>4} ({:>4.1}%)",
                    label.name(),
                    tally[k],
                    100.0 * tally[k] as f64 / total.max(1) as f64,
                    paper_mix[k],
                    100.0 * paper_mix[k] as f64 / paper_total as f64,
                );
            }
        }
    }
}

//! The experiment harness behind the `table1`, `fig1`, `fig4`, `fig5`
//! and `ablation` binaries.
//!
//! [`run_sweep`] reproduces the paper's evaluation protocol (§5.1.1):
//! 10-fold cross validation per entity type, a sampling ratio θ applied
//! to the 9 training folds, every model trained on the same splits, and
//! fold-merged confusion matrices reported as the four metrics of each
//! figure.

use fd_data::{
    generate_at_scale, sample_ratio, Corpus, CredibilityModel, CvSplits, ExplicitFeatures,
    GeneratorConfig, LabelMode, Predictions, TokenizedCorpus, TrainSets,
};
use fd_graph::NodeType;
use fd_metrics::{ConfusionMatrix, MetricKind, SweepResults};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Sweep parameters shared by the fig4/fig5/ablation binaries.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Corpus scale relative to the paper's crawl (1.0 = Table 1 sizes).
    pub scale: f64,
    /// The θ grid.
    pub thetas: Vec<f64>,
    /// How many of the 10 CV folds to run (the paper runs all 10; the
    /// default keeps single-core wall-clock sane).
    pub folds: usize,
    /// Master seed (corpus, splits and model randomness derive from it).
    pub seed: u64,
    /// Explicit feature dimensionality `d`.
    pub explicit_dim: usize,
    /// Sequence length `q` for the GRU encoders.
    pub seq_len: usize,
    /// Vocabulary cap.
    pub max_vocab: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            scale: 0.12,
            thetas: vec![0.1, 0.4, 0.7, 1.0],
            folds: 3,
            seed: 42,
            explicit_dim: 60,
            seq_len: 12,
            max_vocab: 6000,
        }
    }
}

impl SweepConfig {
    /// The paper-scale protocol: full corpus, θ ∈ {0.1, …, 1.0}, all 10
    /// folds. Expect this to run for many hours on one core.
    pub fn full() -> Self {
        Self {
            scale: 1.0,
            thetas: (1..=10).map(|t| t as f64 / 10.0).collect(),
            folds: 10,
            ..Self::default()
        }
    }

    /// Parses `--scale`, `--folds`, `--seed`, `--full` and `--quick`
    /// from a raw argument list, starting from the defaults.
    pub fn from_args(args: &[String]) -> Self {
        let mut cfg = Self::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => cfg = Self::full(),
                "--quick" => {
                    cfg.scale = 0.03;
                    cfg.folds = 1;
                    cfg.thetas = vec![0.1, 0.55, 1.0];
                }
                "--scale" => {
                    i += 1;
                    cfg.scale = args[i].parse().expect("--scale takes a float");
                }
                "--folds" => {
                    i += 1;
                    cfg.folds = args[i].parse().expect("--folds takes an integer");
                }
                "--seed" => {
                    i += 1;
                    cfg.seed = args[i].parse().expect("--seed takes an integer");
                }
                other => panic!("unknown argument {other}; see DESIGN.md"),
            }
            i += 1;
        }
        cfg
    }
}

/// Everything fixed across models within one (fold, θ) cell.
pub struct PreparedCorpus {
    /// The generated corpus.
    pub corpus: Corpus,
    /// Tokenisation + vocabulary (θ-independent).
    pub tokenized: TokenizedCorpus,
    /// Per-type CV splits.
    pub splits: [CvSplits; 3],
}

/// Generates the corpus and the CV splits for a sweep. Scales ≤ 1 shrink
/// Table 1 proportionally; whole-number scales > 1 tile that many
/// Table-1 shards (`fd_data::generate_at_scale`), so a 100k-article
/// corpus is one `--scale 8` away.
pub fn prepare(config: &SweepConfig) -> PreparedCorpus {
    let corpus = generate_at_scale(&GeneratorConfig::politifact(), config.scale, config.seed);
    let tokenized = TokenizedCorpus::build(&corpus, config.seq_len, config.max_vocab);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xcf);
    let k_articles = 10.min(corpus.articles.len());
    let k_creators = 10.min(corpus.creators.len());
    let k_subjects = 10.min(corpus.subjects.len());
    let splits = [
        CvSplits::new(corpus.articles.len(), k_articles, &mut rng),
        CvSplits::new(corpus.creators.len(), k_creators, &mut rng),
        CvSplits::new(corpus.subjects.len(), k_subjects, &mut rng),
    ];
    PreparedCorpus { corpus, tokenized, splits }
}

impl PreparedCorpus {
    /// Builds the train/test sets of one fold at one θ.
    pub fn split(&self, fold: usize, theta: f64, seed: u64) -> (TrainSets, TrainSets) {
        let mut rng = StdRng::seed_from_u64(seed ^ (fold as u64) << 8 ^ (theta * 1000.0) as u64);
        let (a_train, a_test) = self.splits[0].fold(fold % self.splits[0].k());
        let (c_train, c_test) = self.splits[1].fold(fold % self.splits[1].k());
        let (s_train, s_test) = self.splits[2].fold(fold % self.splits[2].k());
        let train = TrainSets {
            articles: sample_ratio(&a_train, theta, &mut rng),
            creators: sample_ratio(&c_train, theta, &mut rng),
            subjects: sample_ratio(&s_train, theta, &mut rng),
        };
        let test = TrainSets { articles: a_test, creators: c_test, subjects: s_test };
        (train, test)
    }
}

/// Scores predictions on the test indices into per-type confusion
/// matrices.
pub fn score(
    corpus: &Corpus,
    predictions: &Predictions,
    test: &TrainSets,
    mode: LabelMode,
) -> [ConfusionMatrix; 3] {
    let mut out = [
        ConfusionMatrix::new(mode.n_classes()),
        ConfusionMatrix::new(mode.n_classes()),
        ConfusionMatrix::new(mode.n_classes()),
    ];
    for (slot, ty) in NodeType::ALL.iter().enumerate() {
        for &idx in test.for_type(*ty) {
            let truth = match ty {
                NodeType::Article => corpus.articles[idx].label,
                NodeType::Creator => corpus.creators[idx].label,
                NodeType::Subject => corpus.subjects[idx].label,
            };
            out[slot].record(mode.target(truth), predictions.for_type(*ty)[idx]);
        }
    }
    out
}

/// Runs the full θ × fold × model sweep for one label mode, returning
/// one [`SweepResults`] per entity type (articles, creators, subjects).
pub fn run_sweep(
    config: &SweepConfig,
    mode: LabelMode,
    models: &[Box<dyn CredibilityModel>],
) -> [SweepResults; 3] {
    let prepared = prepare(config);
    let mode_name = match mode {
        LabelMode::Binary => "bi-class",
        LabelMode::MultiClass => "multi-class",
    };
    eprintln!(
        "[sweep] {} corpus: {} articles / {} creators / {} subjects; {} thetas x {} folds x {} models",
        mode_name,
        prepared.corpus.articles.len(),
        prepared.corpus.creators.len(),
        prepared.corpus.subjects.len(),
        config.thetas.len(),
        config.folds,
        models.len()
    );

    // values[model][theta][type] -> merged confusion matrix
    let mut merged: Vec<Vec<[ConfusionMatrix; 3]>> = models
        .iter()
        .map(|_| {
            config
                .thetas
                .iter()
                .map(|_| {
                    [
                        ConfusionMatrix::new(mode.n_classes()),
                        ConfusionMatrix::new(mode.n_classes()),
                        ConfusionMatrix::new(mode.n_classes()),
                    ]
                })
                .collect()
        })
        .collect();

    for (ti, &theta) in config.thetas.iter().enumerate() {
        for fold in 0..config.folds {
            let (train, test) = prepared.split(fold, theta, config.seed);
            let explicit = ExplicitFeatures::extract(
                &prepared.corpus,
                &prepared.tokenized,
                &train,
                config.explicit_dim,
            );
            let ctx = fd_data::ExperimentContext {
                corpus: &prepared.corpus,
                tokenized: &prepared.tokenized,
                explicit: &explicit,
                train: &train,
                mode,
                seed: config.seed ^ (fold as u64) << 16 ^ (ti as u64) << 24,
            };
            for (mi, model) in models.iter().enumerate() {
                let t0 = Instant::now();
                let predictions = model.fit_predict(&ctx);
                let cms = score(&prepared.corpus, &predictions, &test, mode);
                for (slot, cm) in cms.iter().enumerate() {
                    merged[mi][ti][slot].merge(cm);
                }
                eprintln!(
                    "[sweep] θ={theta:<4} fold={fold} {:<13} {:.1}s",
                    model.name(),
                    t0.elapsed().as_secs_f64()
                );
            }
        }
    }

    let entities = ["articles", "creators", "subjects"];
    let mut results: Vec<SweepResults> = entities
        .iter()
        .map(|e| SweepResults::new(e, mode_name, config.thetas.clone()))
        .collect();
    for (mi, model) in models.iter().enumerate() {
        for (slot, result) in results.iter_mut().enumerate() {
            let values: Vec<[f64; 4]> = (0..config.thetas.len())
                .map(|ti| {
                    let cm = &merged[mi][ti][slot];
                    [
                        cm.metric(MetricKind::Accuracy),
                        cm.metric(MetricKind::F1),
                        cm.metric(MetricKind::Precision),
                        cm.metric(MetricKind::Recall),
                    ]
                })
                .collect();
            result.push(model.name(), values);
        }
    }
    let mut iter = results.into_iter();
    [
        iter.next().expect("three results"),
        iter.next().expect("three results"),
        iter.next().expect("three results"),
    ]
}

/// Writes a result set to `results/<name>.json` (best effort — the
/// tables on stdout are the primary output).
pub fn save_results(name: &str, results: &[SweepResults; 3]) {
    let _ = std::fs::create_dir_all("results");
    for r in results {
        let path = format!("results/{name}_{}.json", r.entity);
        if let Err(e) = std::fs::write(&path, r.to_json()) {
            eprintln!("[sweep] could not write {path}: {e}");
        } else {
            eprintln!("[sweep] wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_baselines::SvmBaseline;

    fn tiny() -> SweepConfig {
        SweepConfig {
            scale: 0.012,
            thetas: vec![0.5, 1.0],
            folds: 1,
            seed: 9,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn prepare_builds_consistent_splits() {
        let cfg = tiny();
        let p = prepare(&cfg);
        let (train, test) = p.split(0, 1.0, cfg.seed);
        assert_eq!(
            train.articles.len() + test.articles.len(),
            p.corpus.articles.len()
        );
        // θ shrinks only the training side.
        let (small_train, same_test) = p.split(0, 0.2, cfg.seed);
        assert!(small_train.articles.len() < train.articles.len());
        assert_eq!(same_test.articles.len(), test.articles.len());
    }

    #[test]
    fn sweep_produces_full_grid() {
        let cfg = tiny();
        let models: Vec<Box<dyn CredibilityModel>> = vec![Box::new(SvmBaseline::default())];
        let results = run_sweep(&cfg, LabelMode::Binary, &models);
        for r in &results {
            assert_eq!(r.thetas.len(), 2);
            assert_eq!(r.series.len(), 1);
            assert_eq!(r.series[0].method, "svm");
            for point in &r.series[0].values {
                for v in point {
                    assert!((0.0..=1.0).contains(v), "metric {v} out of range");
                }
            }
        }
        assert_eq!(results[0].entity, "articles");
        assert_eq!(results[2].entity, "subjects");
    }

    #[test]
    fn score_counts_only_test_entities() {
        let cfg = tiny();
        let p = prepare(&cfg);
        let (_, test) = p.split(0, 1.0, cfg.seed);
        let preds = fd_data::Predictions {
            articles: vec![0; p.corpus.articles.len()],
            creators: vec![0; p.corpus.creators.len()],
            subjects: vec![0; p.corpus.subjects.len()],
        };
        let cms = score(&p.corpus, &preds, &test, LabelMode::Binary);
        assert_eq!(cms[0].total() as usize, test.articles.len());
        assert_eq!(cms[1].total() as usize, test.creators.len());
        assert_eq!(cms[2].total() as usize, test.subjects.len());
    }

    #[test]
    fn from_args_parses_flags() {
        let cfg = SweepConfig::from_args(&[
            "--scale".into(),
            "0.2".into(),
            "--folds".into(),
            "3".into(),
            "--seed".into(),
            "7".into(),
        ]);
        assert_eq!(cfg.scale, 0.2);
        assert_eq!(cfg.folds, 3);
        assert_eq!(cfg.seed, 7);
        let full = SweepConfig::from_args(&["--full".into()]);
        assert_eq!(full.thetas.len(), 10);
        assert_eq!(full.scale, 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn from_args_rejects_garbage() {
        let _ = SweepConfig::from_args(&["--bogus".into()]);
    }
}

//! Property tests on News-HSN invariants: adjacency symmetry, global-id
//! bijection, walk validity, CSR ↔ edge-list agreement with the
//! pre-CSR adjacency-map semantics, and neighbour-sampler determinism.

use fd_graph::{generate_walks, HetGraph, NeighborSampler, NodeRef, NodeType, WalkConfig};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The pre-CSR `neighbors()` semantics, reimplemented from the relation
/// accessors as an allocating reference: author port first for articles,
/// then insertion-order topic links; creators/subjects list their
/// articles in insertion order.
fn reference_neighbors(g: &HetGraph, node: NodeRef) -> Vec<NodeRef> {
    match node.ty {
        NodeType::Article => {
            let mut out = Vec::new();
            if let Some(c) = g.author_of(node.idx) {
                out.push(NodeRef { ty: NodeType::Creator, idx: c });
            }
            out.extend(
                g.subjects_of_article(node.idx)
                    .iter()
                    .map(|&s| NodeRef { ty: NodeType::Subject, idx: s }),
            );
            out
        }
        NodeType::Creator => g
            .articles_of_creator(node.idx)
            .iter()
            .map(|&a| NodeRef { ty: NodeType::Article, idx: a })
            .collect(),
        NodeType::Subject => g
            .articles_of_subject(node.idx)
            .iter()
            .map(|&a| NodeRef { ty: NodeType::Article, idx: a })
            .collect(),
    }
}

fn nodes_of(g: &HetGraph) -> Vec<NodeRef> {
    let mut out = Vec::with_capacity(g.n_nodes());
    for ty in NodeType::ALL {
        let count = match ty {
            NodeType::Article => g.n_articles(),
            NodeType::Creator => g.n_creators(),
            NodeType::Subject => g.n_subjects(),
        };
        out.extend((0..count).map(|idx| NodeRef { ty, idx }));
    }
    out
}

/// Builds a random well-formed News-HSN from a seed.
fn random_graph(seed: u64, n_articles: usize, n_creators: usize, n_subjects: usize) -> HetGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = HetGraph::new(n_articles, n_creators, n_subjects);
    for a in 0..n_articles {
        if n_creators > 0 {
            g.set_author(a, rng.gen_range(0..n_creators));
        }
        if n_subjects > 0 {
            let k = rng.gen_range(0..=n_subjects.min(4));
            let mut subjects: Vec<usize> = (0..n_subjects).collect();
            for _ in 0..k {
                let i = rng.gen_range(0..subjects.len());
                let s = subjects.swap_remove(i);
                g.add_subject_link(a, s);
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adjacency_is_symmetric(seed in any::<u64>(), a in 1usize..30, c in 1usize..10, s in 1usize..8) {
        let g = random_graph(seed, a, c, s);
        for ty in NodeType::ALL {
            let count = match ty {
                NodeType::Article => g.n_articles(),
                NodeType::Creator => g.n_creators(),
                NodeType::Subject => g.n_subjects(),
            };
            for idx in 0..count {
                let node = NodeRef { ty, idx };
                for &nb in g.neighbors(node) {
                    prop_assert!(
                        g.neighbors(nb).contains(&node),
                        "{node:?} -> {nb:?} not symmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn global_id_is_a_bijection(seed in any::<u64>(), a in 1usize..30, c in 1usize..10, s in 1usize..8) {
        let g = random_graph(seed, a, c, s);
        let mut seen = vec![false; g.n_nodes()];
        for ty in NodeType::ALL {
            let count = match ty {
                NodeType::Article => g.n_articles(),
                NodeType::Creator => g.n_creators(),
                NodeType::Subject => g.n_subjects(),
            };
            for idx in 0..count {
                let id = g.global_id(NodeRef { ty, idx });
                prop_assert!(!seen[id], "global id {id} assigned twice");
                seen[id] = true;
                prop_assert_eq!(g.from_global_id(id), NodeRef { ty, idx });
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn link_counts_are_consistent(seed in any::<u64>(), a in 1usize..40, c in 1usize..10, s in 1usize..8) {
        let g = random_graph(seed, a, c, s);
        // Authorship: sum over creators equals assigned articles.
        let creator_side: usize = (0..g.n_creators()).map(|u| g.articles_of_creator(u).len()).sum();
        prop_assert_eq!(creator_side, g.n_authorship_links());
        // Topic links: both sides agree.
        let article_side: usize = (0..g.n_articles()).map(|n| g.subjects_of_article(n).len()).sum();
        let subject_side: usize = (0..g.n_subjects()).map(|t| g.articles_of_subject(t).len()).sum();
        prop_assert_eq!(article_side, subject_side);
        prop_assert_eq!(article_side, g.n_subject_links());
        // Edge list covers exactly every link once.
        prop_assert_eq!(g.edges_global().len(), g.n_authorship_links() + g.n_subject_links());
    }

    #[test]
    fn csr_matches_adjacency_map_semantics(seed in any::<u64>(), a in 1usize..40, c in 1usize..10, s in 1usize..8) {
        // The CSR slices must reproduce the pre-CSR allocating
        // `neighbors()` exactly: same neighbour sets, same order, and
        // the heterogeneous schema respected (creators/subjects only
        // touch articles).
        let g = random_graph(seed, a, c, s);
        for node in nodes_of(&g) {
            let csr = g.neighbors(node);
            let reference = reference_neighbors(&g, node);
            prop_assert_eq!(csr, reference.as_slice(), "{:?}", node);
            prop_assert_eq!(g.degree(node), csr.len());
            match node.ty {
                NodeType::Article => {
                    prop_assert!(csr.iter().all(|n| n.ty != NodeType::Article));
                }
                _ => prop_assert!(csr.iter().all(|n| n.ty == NodeType::Article)),
            }
        }
        // CSR edge coverage agrees with the edge list, endpoint by
        // endpoint: every (article, other) edge appears on both sides.
        for (ga, gb) in g.edges_global() {
            let (from, to) = (g.from_global_id(ga), g.from_global_id(gb));
            prop_assert!(g.neighbors(from).contains(&to));
            prop_assert!(g.neighbors(to).contains(&from));
        }
        let degree_sum: usize = nodes_of(&g).iter().map(|&n| g.degree(n)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edges_global().len());
    }

    #[test]
    fn csr_survives_serde_roundtrip(seed in any::<u64>(), a in 1usize..30, c in 1usize..8, s in 1usize..6) {
        // The serde representation is the append-side lists (unchanged
        // from before the CSR refactor); a deserialised graph must
        // rebuild an identical CSR view.
        let g = random_graph(seed, a, c, s);
        let json = serde_json::to_string(&g).expect("serialize");
        let back: HetGraph = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back.n_nodes(), g.n_nodes());
        prop_assert_eq!(back.n_subject_links(), g.n_subject_links());
        for node in nodes_of(&g) {
            prop_assert_eq!(back.neighbors(node), g.neighbors(node));
        }
        // Re-serialising yields the same bytes: CSR is a pure view.
        prop_assert_eq!(serde_json::to_string(&back).expect("serialize"), json);
    }

    #[test]
    fn sampler_is_deterministic_and_bounded(
        seed in any::<u64>(),
        sampler_seed in any::<u64>(),
        salt in any::<u64>(),
        a in 1usize..40, c in 1usize..8, s in 1usize..6,
        fa in 0usize..6, fc in 0usize..6, fs in 0usize..6,
    ) {
        let g = random_graph(seed, a, c, s);
        let sampler = NeighborSampler::new(sampler_seed, [fa, fc, fs]);
        let mut first = Vec::new();
        let mut second = Vec::new();
        for node in nodes_of(&g) {
            sampler.sample_neighbors_into(&g, node, salt, &mut first);
            // Bounded by min(degree, fanout) and exact when under it.
            let cap = sampler.fanout(node.ty);
            prop_assert_eq!(first.len(), g.degree(node).min(cap));
            // A subset of the true neighbours, without replacement.
            let full = g.neighbors(node);
            prop_assert!(first.iter().all(|n| full.contains(n)));
            let mut dedup: Vec<_> = first.iter().map(|n| (n.ty as usize, n.idx)).collect();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), first.len());
            // Pure function of (seed, salt, node): a second draw after
            // other nodes were sampled in between must be identical.
            sampler.sample_neighbors_into(&g, node, salt, &mut second);
            prop_assert_eq!(&first, &second);
        }
    }

    #[test]
    fn walks_stay_on_edges(seed in any::<u64>(), a in 1usize..15, c in 1usize..6, s in 1usize..5) {
        let g = random_graph(seed, a, c, s);
        let cfg = WalkConfig { walks_per_node: 2, walk_length: 6 };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
        for walk in generate_walks(&g, &cfg, &mut rng) {
            prop_assert!(!walk.is_empty() && walk.len() <= 6);
            for pair in walk.windows(2) {
                let from = g.from_global_id(pair[0]);
                let to = g.from_global_id(pair[1]);
                prop_assert!(g.neighbors(from).contains(&to));
            }
        }
    }
}

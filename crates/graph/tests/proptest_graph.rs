//! Property tests on News-HSN invariants: adjacency symmetry, global-id
//! bijection, and walk validity on randomly generated graphs.

use fd_graph::{generate_walks, HetGraph, NodeRef, NodeType, WalkConfig};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Builds a random well-formed News-HSN from a seed.
fn random_graph(seed: u64, n_articles: usize, n_creators: usize, n_subjects: usize) -> HetGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = HetGraph::new(n_articles, n_creators, n_subjects);
    for a in 0..n_articles {
        if n_creators > 0 {
            g.set_author(a, rng.gen_range(0..n_creators));
        }
        if n_subjects > 0 {
            let k = rng.gen_range(0..=n_subjects.min(4));
            let mut subjects: Vec<usize> = (0..n_subjects).collect();
            for _ in 0..k {
                let i = rng.gen_range(0..subjects.len());
                let s = subjects.swap_remove(i);
                g.add_subject_link(a, s);
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adjacency_is_symmetric(seed in any::<u64>(), a in 1usize..30, c in 1usize..10, s in 1usize..8) {
        let g = random_graph(seed, a, c, s);
        for ty in NodeType::ALL {
            let count = match ty {
                NodeType::Article => g.n_articles(),
                NodeType::Creator => g.n_creators(),
                NodeType::Subject => g.n_subjects(),
            };
            for idx in 0..count {
                let node = NodeRef { ty, idx };
                for nb in g.neighbors(node) {
                    prop_assert!(
                        g.neighbors(nb).contains(&node),
                        "{node:?} -> {nb:?} not symmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn global_id_is_a_bijection(seed in any::<u64>(), a in 1usize..30, c in 1usize..10, s in 1usize..8) {
        let g = random_graph(seed, a, c, s);
        let mut seen = vec![false; g.n_nodes()];
        for ty in NodeType::ALL {
            let count = match ty {
                NodeType::Article => g.n_articles(),
                NodeType::Creator => g.n_creators(),
                NodeType::Subject => g.n_subjects(),
            };
            for idx in 0..count {
                let id = g.global_id(NodeRef { ty, idx });
                prop_assert!(!seen[id], "global id {id} assigned twice");
                seen[id] = true;
                prop_assert_eq!(g.from_global_id(id), NodeRef { ty, idx });
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn link_counts_are_consistent(seed in any::<u64>(), a in 1usize..40, c in 1usize..10, s in 1usize..8) {
        let g = random_graph(seed, a, c, s);
        // Authorship: sum over creators equals assigned articles.
        let creator_side: usize = (0..g.n_creators()).map(|u| g.articles_of_creator(u).len()).sum();
        prop_assert_eq!(creator_side, g.n_authorship_links());
        // Topic links: both sides agree.
        let article_side: usize = (0..g.n_articles()).map(|n| g.subjects_of_article(n).len()).sum();
        let subject_side: usize = (0..g.n_subjects()).map(|t| g.articles_of_subject(t).len()).sum();
        prop_assert_eq!(article_side, subject_side);
        prop_assert_eq!(article_side, g.n_subject_links());
        // Edge list covers exactly every link once.
        prop_assert_eq!(g.edges_global().len(), g.n_authorship_links() + g.n_subject_links());
    }

    #[test]
    fn walks_stay_on_edges(seed in any::<u64>(), a in 1usize..15, c in 1usize..6, s in 1usize..5) {
        let g = random_graph(seed, a, c, s);
        let cfg = WalkConfig { walks_per_node: 2, walk_length: 6 };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
        for walk in generate_walks(&g, &cfg, &mut rng) {
            prop_assert!(!walk.is_empty() && walk.len() <= 6);
            for pair in walk.windows(2) {
                let from = g.from_global_id(pair[0]);
                let to = g.from_global_id(pair[1]);
                prop_assert!(g.neighbors(from).contains(&to));
            }
        }
    }
}

//! The News-Augmented Heterogeneous Social Network (News-HSN).
//!
//! Definition 2.4 of the paper: `G = (V, E)` where
//! `V = U ∪ N ∪ S` (creators, articles, subjects) and
//! `E = E_{u,n} ∪ E_{n,s}` (authorship links and topic-indication links).
//!
//! This crate stores that structure ([`HetGraph`]), answers the adjacency
//! queries the diffusion model and label propagation need, generates the
//! truncated random walks DeepWalk consumes, provides an alias-method
//! sampler for LINE's edge sampling, and computes the degree statistics
//! behind Fig 1(a) (power-law fit of the creator-article distribution).
//!
//! ```
//! use fd_graph::{HetGraph, NodeRef, NodeType};
//!
//! // 2 articles, 1 creator, 2 subjects.
//! let mut g = HetGraph::new(2, 1, 2);
//! g.set_author(0, 0);
//! g.set_author(1, 0);
//! g.add_subject_link(0, 0);
//! g.add_subject_link(0, 1);
//! g.add_subject_link(1, 1);
//! assert_eq!(g.articles_of_creator(0), &[0, 1]);
//! assert_eq!(g.subjects_of_article(0), &[0, 1]);
//! assert_eq!(g.degree(NodeRef { ty: NodeType::Subject, idx: 1 }), 2);
//! ```

mod alias;
mod hetgraph;
mod overlay;
mod sample;
mod stats;
mod walks;

pub use alias::AliasTable;
pub use hetgraph::{HetGraph, NodeRef, NodeType};
pub use overlay::GraphOverlay;
pub use sample::NeighborSampler;
pub use stats::{degree_histogram, fit_power_law, DegreeStats, PowerLawFit};
pub use walks::{generate_biased_walks, generate_walks, BiasedWalkConfig, WalkConfig};

//! Walker's alias method: O(1) sampling from a discrete distribution.
//!
//! LINE samples edges proportionally to their weight and negative nodes
//! proportionally to degree^{3/4}; both need constant-time weighted
//! sampling over millions of draws, which the alias method provides.

use rand::Rng;

/// Preprocessed discrete distribution supporting O(1) draws.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from non-negative weights.
    ///
    /// # Panics
    /// Panics when `weights` is empty, contains a negative/non-finite
    /// entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "AliasTable: empty weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "AliasTable: bad weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "AliasTable: weights sum to zero");

        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: everything remaining takes probability 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Self { prob, alias }
    }

    /// Draws an index according to the weight distribution.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Always false — construction rejects empty weights.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn frequencies(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let freq = frequencies(&[1.0, 1.0, 1.0, 1.0], 40_000, 1);
        for f in freq {
            assert!((f - 0.25).abs() < 0.02, "frequency {f} far from 0.25");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let freq = frequencies(&[8.0, 1.0, 1.0], 50_000, 2);
        assert!((freq[0] - 0.8).abs() < 0.02);
        assert!((freq[1] - 0.1).abs() < 0.02);
        assert!((freq[2] - 0.1).abs() < 0.02);
    }

    #[test]
    fn zero_weight_never_sampled() {
        let freq = frequencies(&[1.0, 0.0, 1.0], 20_000, 3);
        assert_eq!(freq[1], 0.0);
    }

    #[test]
    fn single_outcome() {
        let freq = frequencies(&[42.0], 100, 4);
        assert_eq!(freq[0], 1.0);
    }

    #[test]
    fn scale_invariance() {
        // The same relative weights must give the same distribution.
        let a = frequencies(&[1.0, 3.0], 50_000, 5);
        let b = frequencies(&[100.0, 300.0], 50_000, 5);
        assert!((a[0] - b[0]).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "empty weights")]
    fn rejects_empty() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "bad weight")]
    fn rejects_negative() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}

//! Append-only delta adjacency over a frozen [`HetGraph`].
//!
//! Online ingestion attaches new articles/creators/subjects to a live
//! News-HSN whose base CSR must stay immutable (it is shared by every
//! in-flight request). A [`GraphOverlay`] records the appended nodes
//! and their edges *beside* the base graph and answers combined
//! adjacency queries as "base CSR slice ++ overlay extras" without
//! copying or rebuilding anything — so attaching a node costs O(its
//! degree), not O(corpus).
//!
//! Two structural facts keep the overlay small and the combined lists
//! bitwise-compatible with a from-scratch rebuild:
//!
//! * **Only new articles introduce edges.** An article names its
//!   creator and subjects at ingest time (mirroring
//!   `HetGraph::set_author` / `add_subject_link` at build time); base
//!   articles never gain or lose neighbours, so their CSR slices stay
//!   authoritative. Ingested creators/subjects start isolated and only
//!   acquire edges when later articles cite them.
//! * **Extras append in ingestion order.** A creator's combined article
//!   list is its base slice followed by the overlay extras in the order
//!   the citing articles arrived — exactly the insertion order a
//!   rebuilt `HetGraph` would produce, so neighbour means computed over
//!   the combined list reduce in the same sequence and match the
//!   rebuild bit for bit.
//!
//! ```
//! use fd_graph::{GraphOverlay, HetGraph};
//!
//! let mut g = HetGraph::new(1, 1, 2);
//! g.set_author(0, 0);
//! g.add_subject_link(0, 1);
//!
//! let mut overlay = GraphOverlay::new(&g);
//! let c = overlay.add_creator(); // first appended creator
//! assert_eq!(c, 1);
//! let a = overlay.add_article(0, &[0, 1]).unwrap(); // cites base creator 0
//! assert_eq!(a, 1);
//! let (base, extra) = overlay.articles_of_creator(&g, 0);
//! assert_eq!((base, extra), (&[0][..], &[1][..]));
//! assert_eq!(overlay.counts(), [2, 2, 2]);
//! ```

use crate::HetGraph;
use std::collections::BTreeMap;

const EMPTY: &[usize] = &[];

/// Appended nodes and edges over a frozen base graph; see the module
/// docs for the structural invariants.
#[derive(Debug, Clone, Default)]
pub struct GraphOverlay {
    /// Base node counts captured at construction:
    /// `[articles, creators, subjects]`.
    base: [usize; 3],
    /// Author (combined creator index) of each appended article.
    new_author: Vec<usize>,
    /// Subjects (combined indices, ingestion order, no duplicates) of
    /// each appended article.
    new_subjects: Vec<Vec<usize>>,
    /// Number of appended creators / subjects.
    new_creators: usize,
    new_subjects_n: usize,
    /// Extra citing articles per combined creator index, appended in
    /// ingestion order. Keys cover base creators that gained edges and
    /// appended creators alike; a `BTreeMap` keeps enumeration of the
    /// changed set deterministic.
    extra_creator_articles: BTreeMap<usize, Vec<usize>>,
    /// Same, per combined subject index.
    extra_subject_articles: BTreeMap<usize, Vec<usize>>,
}

impl GraphOverlay {
    /// An empty overlay anchored to `base`'s current node counts.
    pub fn new(base: &HetGraph) -> Self {
        Self {
            base: [base.n_articles(), base.n_creators(), base.n_subjects()],
            ..Self::default()
        }
    }

    /// The base node counts the overlay was anchored to:
    /// `[articles, creators, subjects]`.
    pub fn base_counts(&self) -> [usize; 3] {
        self.base
    }

    /// Combined node counts (base + appended), same order.
    pub fn counts(&self) -> [usize; 3] {
        [
            self.base[0] + self.new_author.len(),
            self.base[1] + self.new_creators,
            self.base[2] + self.new_subjects_n,
        ]
    }

    /// Appended node counts only, same order.
    pub fn appended(&self) -> [usize; 3] {
        [self.new_author.len(), self.new_creators, self.new_subjects_n]
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.appended() == [0, 0, 0]
    }

    /// Appends an isolated creator; returns its combined index.
    pub fn add_creator(&mut self) -> usize {
        self.new_creators += 1;
        self.base[1] + self.new_creators - 1
    }

    /// Appends an isolated subject; returns its combined index.
    pub fn add_subject(&mut self) -> usize {
        self.new_subjects_n += 1;
        self.base[2] + self.new_subjects_n - 1
    }

    /// Appends an article authored by `creator` and indicating
    /// `subjects` (combined indices — base nodes and previously
    /// appended nodes are both valid targets). Returns the article's
    /// combined index, or an error naming the offending edge target
    /// without mutating anything.
    pub fn add_article(&mut self, creator: usize, subjects: &[usize]) -> Result<usize, String> {
        let [_, n_creators, n_subjects] = self.counts();
        if creator >= n_creators {
            return Err(format!("creator {creator} out of range (graph has {n_creators})"));
        }
        if let Some(&s) = subjects.iter().find(|&&s| s >= n_subjects) {
            return Err(format!("subject {s} out of range (graph has {n_subjects})"));
        }
        for (i, &s) in subjects.iter().enumerate() {
            if subjects[..i].contains(&s) {
                return Err(format!("duplicate subject {s} in article"));
            }
        }
        let article = self.base[0] + self.new_author.len();
        self.new_author.push(creator);
        self.new_subjects.push(subjects.to_vec());
        self.extra_creator_articles.entry(creator).or_default().push(article);
        for &s in subjects {
            self.extra_subject_articles.entry(s).or_default().push(article);
        }
        Ok(article)
    }

    /// Author of a combined article index. Base articles answer from
    /// the base graph; appended articles from the overlay.
    pub fn author_of(&self, base: &HetGraph, article: usize) -> Option<usize> {
        if article < self.base[0] {
            base.author_of(article)
        } else {
            self.new_author.get(article - self.base[0]).copied()
        }
    }

    /// Subjects of a combined article index (base CSR slice or overlay
    /// list — base articles never gain subjects, so either side is
    /// complete on its own).
    pub fn subjects_of_article<'a>(&'a self, base: &'a HetGraph, article: usize) -> &'a [usize] {
        if article < self.base[0] {
            base.subjects_of_article(article)
        } else {
            self.new_subjects.get(article - self.base[0]).map_or(EMPTY, Vec::as_slice)
        }
    }

    /// Articles of a combined creator index as `(base slice, overlay
    /// extras)`; their concatenation, in that order, is the combined
    /// adjacency list in insertion order.
    pub fn articles_of_creator<'a>(
        &'a self,
        base: &'a HetGraph,
        creator: usize,
    ) -> (&'a [usize], &'a [usize]) {
        let base_part =
            if creator < self.base[1] { base.articles_of_creator(creator) } else { EMPTY };
        let extra = self.extra_creator_articles.get(&creator).map_or(EMPTY, Vec::as_slice);
        (base_part, extra)
    }

    /// Articles of a combined subject index, same convention as
    /// [`GraphOverlay::articles_of_creator`].
    pub fn articles_of_subject<'a>(
        &'a self,
        base: &'a HetGraph,
        subject: usize,
    ) -> (&'a [usize], &'a [usize]) {
        let base_part =
            if subject < self.base[2] { base.articles_of_subject(subject) } else { EMPTY };
        let extra = self.extra_subject_articles.get(&subject).map_or(EMPTY, Vec::as_slice);
        (base_part, extra)
    }

    /// Base creators whose adjacency changed (gained citing articles),
    /// ascending. These are exactly the base nodes whose diffused
    /// states an incremental update must recompute.
    pub fn changed_base_creators(&self) -> impl Iterator<Item = usize> + '_ {
        self.extra_creator_articles.keys().copied().take_while(move |&u| u < self.base[1])
    }

    /// Base subjects whose adjacency changed, ascending.
    pub fn changed_base_subjects(&self) -> impl Iterator<Item = usize> + '_ {
        self.extra_subject_articles.keys().copied().take_while(move |&s| s < self.base[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> HetGraph {
        // 3 articles, 2 creators, 3 subjects.
        let mut g = HetGraph::new(3, 2, 3);
        g.set_author(0, 0);
        g.set_author(1, 0);
        g.set_author(2, 1);
        g.add_subject_link(0, 0);
        g.add_subject_link(0, 1);
        g.add_subject_link(1, 1);
        g.add_subject_link(2, 2);
        g
    }

    #[test]
    fn empty_overlay_answers_base_adjacency() {
        let g = base();
        let o = GraphOverlay::new(&g);
        assert!(o.is_empty());
        assert_eq!(o.counts(), [3, 2, 3]);
        assert_eq!(o.author_of(&g, 2), Some(1));
        assert_eq!(o.subjects_of_article(&g, 0), &[0, 1]);
        assert_eq!(o.articles_of_creator(&g, 0), (&[0, 1][..], EMPTY));
        assert_eq!(o.articles_of_subject(&g, 1), (&[0, 1][..], EMPTY));
        assert_eq!(o.changed_base_creators().count(), 0);
    }

    #[test]
    fn appended_article_extends_combined_lists_in_order() {
        let g = base();
        let mut o = GraphOverlay::new(&g);
        let a3 = o.add_article(0, &[1, 2]).unwrap();
        let a4 = o.add_article(0, &[2]).unwrap();
        assert_eq!((a3, a4), (3, 4));
        assert_eq!(o.counts(), [5, 2, 3]);
        assert_eq!(o.author_of(&g, 3), Some(0));
        assert_eq!(o.subjects_of_article(&g, 4), &[2]);
        // Extras arrive in ingestion order after the base slice.
        assert_eq!(o.articles_of_creator(&g, 0), (&[0, 1][..], &[3, 4][..]));
        assert_eq!(o.articles_of_subject(&g, 2), (&[2][..], &[3, 4][..]));
        assert_eq!(o.changed_base_creators().collect::<Vec<_>>(), vec![0]);
        assert_eq!(o.changed_base_subjects().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn appended_creators_and_subjects_start_isolated_then_gain_edges() {
        let g = base();
        let mut o = GraphOverlay::new(&g);
        let c = o.add_creator();
        let s = o.add_subject();
        assert_eq!((c, s), (2, 3));
        assert_eq!(o.articles_of_creator(&g, c), (EMPTY, EMPTY));
        let a = o.add_article(c, &[s]).unwrap();
        assert_eq!(o.articles_of_creator(&g, c), (EMPTY, &[a][..]));
        assert_eq!(o.articles_of_subject(&g, s), (EMPTY, &[a][..]));
        assert_eq!(o.author_of(&g, a), Some(c));
        // Appended nodes are not base nodes: the changed-base sets stay
        // limited to indices below the anchor counts.
        assert_eq!(o.changed_base_creators().count(), 0);
        assert_eq!(o.changed_base_subjects().count(), 0);
    }

    #[test]
    fn bad_edge_targets_are_rejected_without_mutation() {
        let g = base();
        let mut o = GraphOverlay::new(&g);
        assert!(o.add_article(9, &[]).unwrap_err().contains("creator 9 out of range"));
        assert!(o.add_article(0, &[7]).unwrap_err().contains("subject 7 out of range"));
        assert!(o.add_article(0, &[1, 1]).unwrap_err().contains("duplicate subject 1"));
        assert!(o.is_empty());
        assert_eq!(o.changed_base_creators().count(), 0);
    }
}

//! Degree statistics and the discrete power-law fit behind Fig 1(a).

use crate::{HetGraph, NodeRef, NodeType};
use std::collections::BTreeMap;

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Number of nodes considered.
    pub count: usize,
}

impl DegreeStats {
    /// Computes stats over the degrees of all nodes of `ty`.
    pub fn for_type(graph: &HetGraph, ty: NodeType) -> Self {
        let count = match ty {
            NodeType::Article => graph.n_articles(),
            NodeType::Creator => graph.n_creators(),
            NodeType::Subject => graph.n_subjects(),
        };
        let degrees: Vec<usize> = (0..count)
            .map(|idx| graph.degree(NodeRef { ty, idx }))
            .collect();
        let min = degrees.iter().copied().min().unwrap_or(0);
        let max = degrees.iter().copied().max().unwrap_or(0);
        let mean = if count == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / count as f64
        };
        Self { min, max, mean, count }
    }
}

/// Histogram of a degree sequence: `degree -> number of nodes`, sorted by
/// degree. This is exactly the scatter data of Fig 1(a) once both axes
/// are normalised.
pub fn degree_histogram(degrees: &[usize]) -> BTreeMap<usize, usize> {
    let mut hist = BTreeMap::new();
    for &d in degrees {
        *hist.entry(d).or_insert(0) += 1;
    }
    hist
}

/// A fitted discrete power law `p(x) ∝ x^{-alpha}` for `x >= x_min`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Estimated exponent α.
    pub alpha: f64,
    /// Cut-off used for the fit.
    pub x_min: usize,
    /// Number of samples at or above `x_min`.
    pub n_tail: usize,
}

/// Maximum-likelihood power-law exponent (Clauset–Shalizi–Newman
/// continuous approximation): `α = 1 + n / Σ ln(xᵢ / (x_min - ½))`.
///
/// Returns `None` when fewer than 2 samples reach `x_min`.
pub fn fit_power_law(samples: &[usize], x_min: usize) -> Option<PowerLawFit> {
    assert!(x_min >= 1, "fit_power_law: x_min must be >= 1");
    let tail: Vec<f64> = samples
        .iter()
        .filter(|&&x| x >= x_min)
        .map(|&x| x as f64)
        .collect();
    if tail.len() < 2 {
        return None;
    }
    let shift = x_min as f64 - 0.5;
    let log_sum: f64 = tail.iter().map(|&x| (x / shift).ln()).sum();
    if log_sum <= 0.0 {
        return None;
    }
    Some(PowerLawFit {
        alpha: 1.0 + tail.len() as f64 / log_sum,
        x_min,
        n_tail: tail.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn histogram_counts() {
        let hist = degree_histogram(&[1, 1, 2, 5, 5, 5]);
        assert_eq!(hist[&1], 2);
        assert_eq!(hist[&2], 1);
        assert_eq!(hist[&5], 3);
        assert_eq!(hist.len(), 3);
    }

    #[test]
    fn degree_stats_on_small_graph() {
        let mut g = HetGraph::new(2, 1, 1);
        g.set_author(0, 0);
        g.set_author(1, 0);
        g.add_subject_link(0, 0);
        let stats = DegreeStats::for_type(&g, NodeType::Creator);
        assert_eq!(stats, DegreeStats { min: 2, max: 2, mean: 2.0, count: 1 });
        let article_stats = DegreeStats::for_type(&g, NodeType::Article);
        assert_eq!(article_stats.min, 1);
        assert_eq!(article_stats.max, 2);
    }

    #[test]
    fn power_law_recovers_known_exponent() {
        // Draw from a discrete zeta-ish distribution via inverse CDF of
        // the continuous Pareto with α = 2.5 and round.
        let alpha = 2.5f64;
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<usize> = (0..20_000)
            .map(|_| {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                let x = (1.0 - u).powf(-1.0 / (alpha - 1.0));
                x.round().max(1.0) as usize
            })
            .collect();
        let fit = fit_power_law(&samples, 2).expect("fit must succeed");
        assert!(
            (fit.alpha - alpha).abs() < 0.25,
            "recovered {} vs true {alpha}",
            fit.alpha
        );
        assert!(fit.n_tail > 1000);
    }

    #[test]
    fn power_law_needs_tail_samples() {
        assert!(fit_power_law(&[1, 1, 1], 5).is_none());
        assert!(fit_power_law(&[], 1).is_none());
    }

    #[test]
    fn power_law_rejects_degenerate_tail() {
        // All samples exactly at x_min: log-sum is positive but tiny; a
        // constant sequence at x_min gives ln(x/(x_min-0.5)) > 0, fine —
        // but all equal BELOW shift would break. Check a constant tail
        // still yields a finite alpha.
        let fit = fit_power_law(&[3, 3, 3, 3], 3).unwrap();
        assert!(fit.alpha.is_finite() && fit.alpha > 1.0);
    }

    #[test]
    #[should_panic(expected = "x_min must be >= 1")]
    fn power_law_rejects_zero_xmin() {
        let _ = fit_power_law(&[1, 2, 3], 0);
    }
}

//! Truncated random walks over the News-HSN — the corpus generator for
//! the DeepWalk baseline.

use crate::{HetGraph, NodeRef, NodeType};
use rand::seq::SliceRandom;
use rand::Rng;

/// Random-walk parameters (DeepWalk's γ walks of length t per node).
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Walks started from each node (γ).
    pub walks_per_node: usize,
    /// Maximum walk length in nodes (t); walks stop early at dead ends.
    pub walk_length: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self { walks_per_node: 10, walk_length: 40 }
    }
}

/// Generates uniform random walks from every node of every type.
///
/// Each walk is a sequence of **global node ids** (see
/// [`HetGraph::global_id`]); isolated nodes yield length-1 walks so every
/// node appears in the corpus at least once. Start nodes are shuffled per
/// pass, as in the reference DeepWalk implementation.
pub fn generate_walks(graph: &HetGraph, config: &WalkConfig, rng: &mut impl Rng) -> Vec<Vec<usize>> {
    generate_biased_walks(graph, config, &BiasedWalkConfig::uniform(), rng)
}

/// node2vec-style walk biases (Grover & Leskovec, KDD 2016): the return
/// parameter `p` and in-out parameter `q` reshape second-order
/// transitions. `p = q = 1` recovers uniform DeepWalk walks.
#[derive(Debug, Clone, Copy)]
pub struct BiasedWalkConfig {
    /// Return parameter: probability weight `1/p` of revisiting the
    /// previous node. `p > 1` discourages backtracking.
    pub p: f64,
    /// In-out parameter: weight `1/q` for moving away from the previous
    /// node's neighbourhood. `q > 1` keeps walks local (BFS-like),
    /// `q < 1` pushes them outward (DFS-like).
    pub q: f64,
}

impl BiasedWalkConfig {
    /// The unbiased (DeepWalk) setting.
    pub fn uniform() -> Self {
        Self { p: 1.0, q: 1.0 }
    }
}

/// Generates node2vec-biased walks; see [`BiasedWalkConfig`].
///
/// The News-HSN is tripartite-ish (creators and subjects only touch
/// articles), so the "distance 1" case of the node2vec kernel never
/// occurs between the previous node and a candidate — candidates are
/// either the previous node itself (weight `1/p`) or two hops from it
/// (weight `1/q`).
pub fn generate_biased_walks(
    graph: &HetGraph,
    config: &WalkConfig,
    bias: &BiasedWalkConfig,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    assert!(config.walk_length >= 1, "generate_walks: walk_length must be >= 1");
    assert!(bias.p > 0.0 && bias.q > 0.0, "generate_biased_walks: p and q must be positive");
    let mut starts: Vec<NodeRef> = Vec::with_capacity(graph.n_nodes());
    for ty in NodeType::ALL {
        let count = match ty {
            NodeType::Article => graph.n_articles(),
            NodeType::Creator => graph.n_creators(),
            NodeType::Subject => graph.n_subjects(),
        };
        starts.extend((0..count).map(|idx| NodeRef { ty, idx }));
    }

    let uniform = (bias.p - 1.0).abs() < f64::EPSILON && (bias.q - 1.0).abs() < f64::EPSILON;
    let mut walks = Vec::with_capacity(starts.len() * config.walks_per_node);
    // Reused across steps; `graph.neighbors` itself is a borrowed CSR
    // slice, so the walk inner loop allocates nothing.
    let mut weights: Vec<f64> = Vec::new();
    for _ in 0..config.walks_per_node {
        starts.shuffle(rng);
        for &start in &starts {
            let mut walk = Vec::with_capacity(config.walk_length);
            let mut previous: Option<NodeRef> = None;
            let mut current = start;
            walk.push(graph.global_id(current));
            for _ in 1..config.walk_length {
                let neighbors = graph.neighbors(current);
                if neighbors.is_empty() {
                    break;
                }
                let next = match previous {
                    None => *neighbors.choose(rng).expect("non-empty"),
                    Some(_) if uniform => *neighbors.choose(rng).expect("non-empty"),
                    Some(prev) => {
                        weights.clear();
                        weights.extend(
                            neighbors
                                .iter()
                                .map(|&n| if n == prev { 1.0 / bias.p } else { 1.0 / bias.q }),
                        );
                        let total: f64 = weights.iter().sum();
                        let mut roll = rng.gen_range(0.0..total);
                        let mut chosen = neighbors[neighbors.len() - 1];
                        for (&n, &w) in neighbors.iter().zip(&weights) {
                            if roll < w {
                                chosen = n;
                                break;
                            }
                            roll -= w;
                        }
                        chosen
                    }
                };
                walk.push(graph.global_id(next));
                previous = Some(current);
                current = next;
            }
            walks.push(walk);
        }
    }
    walks
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn line_graph() -> HetGraph {
        // creator0 - article0 - subject0: a path of three nodes.
        let mut g = HetGraph::new(1, 1, 1);
        g.set_author(0, 0);
        g.add_subject_link(0, 0);
        g
    }

    #[test]
    fn walk_count_and_length_bounds() {
        let g = line_graph();
        let cfg = WalkConfig { walks_per_node: 3, walk_length: 5 };
        let mut rng = StdRng::seed_from_u64(1);
        let walks = generate_walks(&g, &cfg, &mut rng);
        assert_eq!(walks.len(), 3 * g.n_nodes());
        assert!(walks.iter().all(|w| w.len() <= 5 && !w.is_empty()));
    }

    #[test]
    fn walks_follow_edges() {
        let g = line_graph();
        let cfg = WalkConfig { walks_per_node: 2, walk_length: 6 };
        let mut rng = StdRng::seed_from_u64(2);
        for walk in generate_walks(&g, &cfg, &mut rng) {
            for pair in walk.windows(2) {
                let from = g.from_global_id(pair[0]);
                let to = g.from_global_id(pair[1]);
                assert!(
                    g.neighbors(from).contains(&to),
                    "walk step {from:?} -> {to:?} is not an edge"
                );
            }
        }
    }

    #[test]
    fn isolated_nodes_get_singleton_walks() {
        let g = HetGraph::new(1, 1, 1); // no edges at all
        let cfg = WalkConfig { walks_per_node: 1, walk_length: 4 };
        let mut rng = StdRng::seed_from_u64(3);
        let walks = generate_walks(&g, &cfg, &mut rng);
        assert_eq!(walks.len(), 3);
        assert!(walks.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn every_node_appears_in_corpus() {
        let g = line_graph();
        let cfg = WalkConfig { walks_per_node: 1, walk_length: 2 };
        let mut rng = StdRng::seed_from_u64(4);
        let walks = generate_walks(&g, &cfg, &mut rng);
        let mut seen = vec![false; g.n_nodes()];
        for walk in &walks {
            for &id in walk {
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_under_seed() {
        let g = line_graph();
        let cfg = WalkConfig::default();
        let w1 = generate_walks(&g, &cfg, &mut StdRng::seed_from_u64(9));
        let w2 = generate_walks(&g, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(w1, w2);
    }

    #[test]
    fn biased_walks_follow_edges_too() {
        let g = line_graph();
        let cfg = WalkConfig { walks_per_node: 3, walk_length: 8 };
        let bias = BiasedWalkConfig { p: 4.0, q: 0.5 };
        let mut rng = StdRng::seed_from_u64(5);
        for walk in generate_biased_walks(&g, &cfg, &bias, &mut rng) {
            for pair in walk.windows(2) {
                let from = g.from_global_id(pair[0]);
                let to = g.from_global_id(pair[1]);
                assert!(g.neighbors(from).contains(&to));
            }
        }
    }

    #[test]
    fn high_p_discourages_backtracking() {
        // On a path graph the only non-backtrack move is forward; with a
        // huge p the walk should backtrack far less often than uniform.
        let mut g = HetGraph::new(2, 1, 1);
        g.set_author(0, 0);
        g.set_author(1, 0);
        g.add_subject_link(0, 0);
        let cfg = WalkConfig { walks_per_node: 30, walk_length: 12 };
        let count_backtracks = |walks: &[Vec<usize>]| -> usize {
            walks
                .iter()
                .flat_map(|w| w.windows(3))
                .filter(|t| t[0] == t[2])
                .count()
        };
        let uniform = generate_biased_walks(
            &g,
            &cfg,
            &BiasedWalkConfig::uniform(),
            &mut StdRng::seed_from_u64(6),
        );
        let biased = generate_biased_walks(
            &g,
            &cfg,
            &BiasedWalkConfig { p: 50.0, q: 1.0 },
            &mut StdRng::seed_from_u64(6),
        );
        // Degree-1 nodes (article1, subject0) force backtracking, so the
        // reduction is bounded; require a clear drop rather than a halving.
        assert!(
            (count_backtracks(&biased) as f64) < count_backtracks(&uniform) as f64 * 0.7,
            "p=50 backtracks {} vs uniform {}",
            count_backtracks(&biased),
            count_backtracks(&uniform)
        );
    }

    #[test]
    fn uniform_bias_matches_generate_walks() {
        let g = line_graph();
        let cfg = WalkConfig { walks_per_node: 2, walk_length: 5 };
        let a = generate_walks(&g, &cfg, &mut StdRng::seed_from_u64(8));
        let b = generate_biased_walks(
            &g,
            &cfg,
            &BiasedWalkConfig::uniform(),
            &mut StdRng::seed_from_u64(8),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "p and q must be positive")]
    fn nonpositive_bias_rejected() {
        let g = line_graph();
        let cfg = WalkConfig::default();
        let _ = generate_biased_walks(
            &g,
            &cfg,
            &BiasedWalkConfig { p: 0.0, q: 1.0 },
            &mut StdRng::seed_from_u64(0),
        );
    }

    #[test]
    #[should_panic(expected = "walk_length must be >= 1")]
    fn zero_length_rejected() {
        let g = line_graph();
        let cfg = WalkConfig { walks_per_node: 1, walk_length: 0 };
        let _ = generate_walks(&g, &cfg, &mut StdRng::seed_from_u64(0));
    }
}

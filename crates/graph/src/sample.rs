//! Deterministic seeded neighbour sampling for minibatch training.
//!
//! Subgraph-sampled training expands each frontier node by at most a
//! fixed per-type fan-out. The sampler here is **stateless and keyed**:
//! the kept subset for a node is a pure function of
//! `(sampler seed, salt, node, adjacency list)` — no shared RNG stream —
//! so the same node sampled from two threads, in any order, at any
//! `FD_THREADS`, yields the same neighbours. That keying is what lets
//! the sampled training path keep the repo-wide bitwise-determinism
//! contract (see DESIGN.md "Sparse graph & sampled training").
//!
//! The subset itself is reservoir sampling (Algorithm R) over the CSR
//! slice, driven by a SplitMix64 stream seeded from the mixed key: one
//! pass, no allocation beyond the caller's output buffer, and when the
//! degree is at or under the fan-out the full list is copied through in
//! adjacency order.

use crate::{HetGraph, NodeRef, NodeType};

/// SplitMix64 step — the standard 64-bit finaliser used both to mix the
/// sampling key and to drive the reservoir stream.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit draw onto `[0, n)` by the multiply-shift method.
#[inline]
fn bounded(draw: u64, n: u64) -> u64 {
    ((u128::from(draw) * u128::from(n)) >> 64) as u64
}

/// Per-type salts so `(ty, idx)` pairs never collide in the key mix.
const TYPE_SALT: [u64; 3] = [0x9E6A_5E8C_9D1B_0001, 0x9E6A_5E8C_9D1B_0002, 0x9E6A_5E8C_9D1B_0003];

/// Reservoir-samples up to `k` items of `list` into `out`, keyed by
/// `key`. Copies the whole list when `list.len() <= k`.
fn reservoir_into<T: Copy>(list: &[T], k: usize, key: u64, out: &mut Vec<T>) {
    out.clear();
    if list.len() <= k {
        out.extend_from_slice(list);
        return;
    }
    if k == 0 {
        return;
    }
    out.extend_from_slice(&list[..k]);
    let mut state = key;
    for (i, &item) in list.iter().enumerate().skip(k) {
        let j = bounded(splitmix64(&mut state), i as u64 + 1) as usize;
        if j < k {
            out[j] = item;
        }
    }
}

/// Deterministic fixed fan-out neighbour sampler.
///
/// `fanout[ty]` caps how many neighbours a node of type `ty` contributes
/// when expanded; nodes with degree at or below the cap keep their full
/// neighbour list (in adjacency order). Samples depend only on
/// `(seed, salt, node, adjacency)` — never on thread count or call
/// order — so sampled minibatch training stays bit-identical at any
/// `FD_THREADS`.
///
/// ```
/// use fd_graph::{HetGraph, NeighborSampler, NodeRef, NodeType};
///
/// let mut g = HetGraph::new(3, 1, 1);
/// for a in 0..3 {
///     g.set_author(a, 0);
/// }
/// let sampler = NeighborSampler::new(7, [4, 2, 2]);
/// let mut out = Vec::new();
/// let creator = NodeRef { ty: NodeType::Creator, idx: 0 };
/// sampler.sample_neighbors_into(&g, creator, 0, &mut out);
/// assert_eq!(out.len(), 2); // degree 3 capped at the creator fan-out
/// let first = out.clone();
/// sampler.sample_neighbors_into(&g, creator, 0, &mut out);
/// assert_eq!(out, first); // pure function of (seed, salt, node)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborSampler {
    seed: u64,
    fanout: [usize; 3],
}

impl NeighborSampler {
    /// A sampler with the given seed and per-type fan-out, indexed as
    /// `[article, creator, subject]` (the [`NodeType::ALL`] order).
    pub fn new(seed: u64, fanout: [usize; 3]) -> Self {
        Self { seed, fanout }
    }

    /// The fan-out cap applied when expanding a node of `ty`.
    pub fn fanout(&self, ty: NodeType) -> usize {
        self.fanout[ty as usize]
    }

    /// The sampler's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The mixed key for `(salt, node)` — exposed so callers can derive
    /// auxiliary deterministic choices (e.g. batch shuffling) from the
    /// same keying discipline.
    pub fn key(&self, ty: NodeType, idx: usize, salt: u64) -> u64 {
        let mut state = self.seed ^ TYPE_SALT[ty as usize];
        let a = splitmix64(&mut state);
        let mut state = a ^ (idx as u64);
        let b = splitmix64(&mut state);
        let mut state = b ^ salt;
        splitmix64(&mut state)
    }

    /// Samples up to `fanout(node.ty)` neighbours of `node` into `out`
    /// (cleared first), reading the graph's CSR slice. `salt`
    /// distinguishes independent draws for the same node (diffusion
    /// round, epoch, …); the result is a pure function of
    /// `(seed, salt, node, adjacency)`.
    pub fn sample_neighbors_into(
        &self,
        graph: &HetGraph,
        node: NodeRef,
        salt: u64,
        out: &mut Vec<NodeRef>,
    ) {
        let key = self.key(node.ty, node.idx, salt);
        reservoir_into(graph.neighbors(node), self.fanout(node.ty), key, out);
    }

    /// Samples up to `fanout(ty)` entries of an arbitrary relation list
    /// owned by node `(ty, idx)` into `out` (cleared first). This is the
    /// entry point the training loop uses on the per-relation CSR rows
    /// (`subjects_of_article`, `articles_of_creator`, …), which carry
    /// plain indices rather than typed refs.
    pub fn sample_list_into(
        &self,
        ty: NodeType,
        idx: usize,
        list: &[usize],
        salt: u64,
        out: &mut Vec<usize>,
    ) {
        let key = self.key(ty, idx, salt);
        reservoir_into(list, self.fanout(ty), key, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_graph(n_articles: usize) -> HetGraph {
        let mut g = HetGraph::new(n_articles, 1, 2);
        for a in 0..n_articles {
            g.set_author(a, 0);
            g.add_subject_link(a, a % 2);
        }
        g
    }

    #[test]
    fn sample_is_deterministic_and_a_subset() {
        let g = star_graph(50);
        let sampler = NeighborSampler::new(42, [8, 5, 3]);
        let creator = NodeRef { ty: NodeType::Creator, idx: 0 };
        let mut a = Vec::new();
        let mut b = Vec::new();
        sampler.sample_neighbors_into(&g, creator, 3, &mut a);
        sampler.sample_neighbors_into(&g, creator, 3, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let full = g.neighbors(creator);
        assert!(a.iter().all(|n| full.contains(n)));
        // No duplicates: reservoir sampling is without replacement.
        let mut dedup = a.clone();
        dedup.sort_by_key(|n| n.idx);
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
    }

    #[test]
    fn low_degree_nodes_keep_all_neighbors_in_order() {
        let g = star_graph(4);
        let sampler = NeighborSampler::new(1, [8, 100, 100]);
        let mut out = Vec::new();
        let article = NodeRef { ty: NodeType::Article, idx: 2 };
        sampler.sample_neighbors_into(&g, article, 0, &mut out);
        assert_eq!(out, g.neighbors(article));
    }

    #[test]
    fn salt_and_seed_vary_the_sample() {
        let g = star_graph(200);
        let creator = NodeRef { ty: NodeType::Creator, idx: 0 };
        let s1 = NeighborSampler::new(1, [4, 4, 4]);
        let s2 = NeighborSampler::new(2, [4, 4, 4]);
        let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
        s1.sample_neighbors_into(&g, creator, 0, &mut a);
        s1.sample_neighbors_into(&g, creator, 1, &mut b);
        s2.sample_neighbors_into(&g, creator, 0, &mut c);
        // 4-of-200 draws colliding across salts/seeds is astronomically
        // unlikely; a stuck key would make them identical.
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sample_is_independent_of_call_order() {
        let g = star_graph(100);
        let sampler = NeighborSampler::new(9, [6, 6, 6]);
        let creator = NodeRef { ty: NodeType::Creator, idx: 0 };
        let subject = NodeRef { ty: NodeType::Subject, idx: 0 };
        let mut first = Vec::new();
        let mut other = Vec::new();
        let mut again = Vec::new();
        sampler.sample_neighbors_into(&g, creator, 0, &mut first);
        sampler.sample_neighbors_into(&g, subject, 0, &mut other);
        sampler.sample_neighbors_into(&g, creator, 0, &mut again);
        assert_eq!(first, again);
    }

    #[test]
    fn zero_fanout_yields_empty_sample() {
        let g = star_graph(10);
        let sampler = NeighborSampler::new(3, [0, 0, 0]);
        let mut out = vec![NodeRef { ty: NodeType::Article, idx: 0 }];
        sampler.sample_neighbors_into(&g, NodeRef { ty: NodeType::Creator, idx: 0 }, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn every_neighbor_reachable_across_salts() {
        // Over many salts the reservoir must be able to pick any element,
        // not just a fixed prefix.
        let g = star_graph(20);
        let sampler = NeighborSampler::new(5, [4, 2, 2]);
        let creator = NodeRef { ty: NodeType::Creator, idx: 0 };
        let mut seen = vec![false; 20];
        let mut out = Vec::new();
        for salt in 0..200 {
            sampler.sample_neighbors_into(&g, creator, salt, &mut out);
            for n in &out {
                seen[n.idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some neighbour never sampled: {seen:?}");
    }

    #[test]
    fn list_sampling_matches_keying() {
        let sampler = NeighborSampler::new(11, [3, 3, 3]);
        let list: Vec<usize> = (0..100).collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        sampler.sample_list_into(NodeType::Subject, 7, &list, 2, &mut a);
        sampler.sample_list_into(NodeType::Subject, 7, &list, 2, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|i| *i < 100));
        sampler.sample_list_into(NodeType::Subject, 8, &list, 2, &mut b);
        assert_ne!(a, b, "different nodes must draw different keys");
    }
}

//! Typed node references and the heterogeneous graph itself.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// The three node categories of a News-HSN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeType {
    /// A news article (set `N` in the paper).
    Article,
    /// A news creator (set `U`).
    Creator,
    /// A news subject (set `S`).
    Subject,
}

impl NodeType {
    /// All three types, in the canonical order used for global indexing.
    pub const ALL: [NodeType; 3] = [NodeType::Article, NodeType::Creator, NodeType::Subject];
}

/// A typed node reference: node `idx` within its type's index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeRef {
    /// Node category.
    pub ty: NodeType,
    /// Index within the category (0-based).
    pub idx: usize,
}

/// Finalised CSR view of the undirected typed adjacency: one
/// offset/target array pair per node type, targets in the exact order the
/// old per-call `neighbors()` used to materialise (author port first for
/// articles, then topic links in insertion order).
///
/// Built once from the append-side adjacency logs and cached; any
/// mutation invalidates the cache. `offsets[ty]` has `count(ty) + 1`
/// entries so the neighbour list of node `i` is
/// `targets[ty][offsets[ty][i]..offsets[ty][i + 1]]` — a borrowed slice,
/// no per-call allocation — and degree is an O(1) offset difference.
#[derive(Debug, Clone, Default)]
struct NeighborCsr {
    offsets: [Vec<usize>; 3],
    targets: [Vec<NodeRef>; 3],
}

impl NeighborCsr {
    fn build(g: &HetGraph) -> Self {
        let mut csr = NeighborCsr::default();

        // Articles: author port (when assigned) then subjects in
        // insertion order — the schema order the diffusion ports rely on.
        let slot = NodeType::Article as usize;
        let mut offsets = Vec::with_capacity(g.n_articles + 1);
        let mut targets =
            Vec::with_capacity(g.n_authorship_links() + g.n_subject_links());
        offsets.push(0);
        for a in 0..g.n_articles {
            if g.author[a] != UNSET {
                targets.push(NodeRef { ty: NodeType::Creator, idx: g.author[a] });
            }
            targets.extend(
                g.article_subjects[a]
                    .iter()
                    .map(|&s| NodeRef { ty: NodeType::Subject, idx: s }),
            );
            offsets.push(targets.len());
        }
        csr.offsets[slot] = offsets;
        csr.targets[slot] = targets;

        // Creators and subjects: articles in insertion order.
        for (slot, lists, ty) in [
            (NodeType::Creator as usize, &g.creator_articles, NodeType::Article),
            (NodeType::Subject as usize, &g.subject_articles, NodeType::Article),
        ] {
            let mut offsets = Vec::with_capacity(lists.len() + 1);
            let mut targets = Vec::with_capacity(lists.iter().map(Vec::len).sum());
            offsets.push(0);
            for list in lists {
                targets.extend(list.iter().map(|&a| NodeRef { ty, idx: a }));
                offsets.push(targets.len());
            }
            csr.offsets[slot] = offsets;
            csr.targets[slot] = targets;
        }
        csr
    }

    fn slice(&self, node: NodeRef) -> &[NodeRef] {
        let slot = node.ty as usize;
        let offsets = &self.offsets[slot];
        &self.targets[slot][offsets[node.idx]..offsets[node.idx + 1]]
    }
}

/// The News-HSN: articles, creators and subjects with authorship and
/// topic-indication links.
///
/// Structure is append-only: nodes are fixed at construction, links are
/// added afterwards. Adjacency lists are kept sorted by insertion order
/// (generation order), which downstream code relies on for determinism.
///
/// Reads go through a CSR (compressed sparse row) view — typed
/// offset/target arrays built lazily on first query and invalidated by
/// mutation — so [`HetGraph::neighbors`] returns a borrowed slice with no
/// per-call allocation and [`HetGraph::degree`] is an O(1) offset
/// difference. The append-side lists double as the (unchanged) serde
/// representation, so corpora serialised before the CSR refactor load
/// bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HetGraph {
    n_articles: usize,
    n_creators: usize,
    n_subjects: usize,
    /// `author[a]` = creator of article `a` (every article has exactly one
    /// creator once fully built; `usize::MAX` marks "unset").
    author: Vec<usize>,
    /// Articles written by each creator.
    creator_articles: Vec<Vec<usize>>,
    /// Subjects of each article.
    article_subjects: Vec<Vec<usize>>,
    /// Articles under each subject.
    subject_articles: Vec<Vec<usize>>,
    /// Lazily built CSR adjacency; never serialised, reset on mutation.
    #[serde(skip)]
    csr: OnceLock<NeighborCsr>,
}

const UNSET: usize = usize::MAX;

impl HetGraph {
    /// An edgeless graph with the given node counts.
    pub fn new(n_articles: usize, n_creators: usize, n_subjects: usize) -> Self {
        Self {
            n_articles,
            n_creators,
            n_subjects,
            author: vec![UNSET; n_articles],
            creator_articles: vec![Vec::new(); n_creators],
            article_subjects: vec![Vec::new(); n_articles],
            subject_articles: vec![Vec::new(); n_subjects],
            csr: OnceLock::new(),
        }
    }

    /// The finalised CSR view, building it on first use.
    fn csr(&self) -> &NeighborCsr {
        self.csr.get_or_init(|| NeighborCsr::build(self))
    }

    /// Forces the CSR adjacency to be built now (it is otherwise built
    /// lazily on the first [`HetGraph::neighbors`]/[`HetGraph::degree`]
    /// query). Useful to pay the one-off construction cost at load time
    /// instead of inside a benchmarked or latency-sensitive path.
    pub fn finalize(&self) {
        let _ = self.csr();
    }

    /// The raw CSR arrays for one node type: `(offsets, targets)` with
    /// `offsets.len() == count + 1`, so node `i` of `ty` owns
    /// `targets[offsets[i]..offsets[i + 1]]`.
    pub fn neighbor_csr(&self, ty: NodeType) -> (&[usize], &[NodeRef]) {
        let csr = self.csr();
        (&csr.offsets[ty as usize], &csr.targets[ty as usize])
    }

    /// Number of articles.
    pub fn n_articles(&self) -> usize {
        self.n_articles
    }

    /// Number of creators.
    pub fn n_creators(&self) -> usize {
        self.n_creators
    }

    /// Number of subjects.
    pub fn n_subjects(&self) -> usize {
        self.n_subjects
    }

    /// Total node count across all three types.
    pub fn n_nodes(&self) -> usize {
        self.n_articles + self.n_creators + self.n_subjects
    }

    /// Number of authorship links (articles with a creator assigned).
    pub fn n_authorship_links(&self) -> usize {
        self.author.iter().filter(|&&c| c != UNSET).count()
    }

    /// Number of article–subject links.
    pub fn n_subject_links(&self) -> usize {
        self.article_subjects.iter().map(Vec::len).sum()
    }

    /// Assigns `creator` as the author of `article`.
    ///
    /// # Panics
    /// Panics on out-of-range indices or if the article already has an
    /// author — each article has exactly one creator (Section 4.2).
    pub fn set_author(&mut self, article: usize, creator: usize) {
        assert!(article < self.n_articles, "set_author: article {article} out of range");
        assert!(creator < self.n_creators, "set_author: creator {creator} out of range");
        assert_eq!(
            self.author[article], UNSET,
            "set_author: article {article} already has creator {}",
            self.author[article]
        );
        self.author[article] = creator;
        self.creator_articles[creator].push(article);
        self.csr = OnceLock::new();
    }

    /// Links `article` to `subject` (articles may have many subjects).
    ///
    /// # Panics
    /// Panics on out-of-range indices or a duplicate link.
    pub fn add_subject_link(&mut self, article: usize, subject: usize) {
        assert!(article < self.n_articles, "add_subject_link: article {article} out of range");
        assert!(subject < self.n_subjects, "add_subject_link: subject {subject} out of range");
        assert!(
            !self.article_subjects[article].contains(&subject),
            "add_subject_link: duplicate link {article} -> {subject}"
        );
        self.article_subjects[article].push(subject);
        self.subject_articles[subject].push(article);
        self.csr = OnceLock::new();
    }

    /// The creator of `article`, if assigned.
    pub fn author_of(&self, article: usize) -> Option<usize> {
        match self.author[article] {
            UNSET => None,
            c => Some(c),
        }
    }

    /// Articles written by `creator`, in insertion order.
    pub fn articles_of_creator(&self, creator: usize) -> &[usize] {
        &self.creator_articles[creator]
    }

    /// Subjects of `article`, in insertion order.
    pub fn subjects_of_article(&self, article: usize) -> &[usize] {
        &self.article_subjects[article]
    }

    /// Articles filed under `subject`, in insertion order.
    pub fn articles_of_subject(&self, subject: usize) -> &[usize] {
        &self.subject_articles[subject]
    }

    /// Undirected degree of a node (authorship + topic links combined) —
    /// an O(1) difference of adjacent CSR offsets.
    pub fn degree(&self, node: NodeRef) -> usize {
        let offsets = &self.csr().offsets[node.ty as usize];
        offsets[node.idx + 1] - offsets[node.idx]
    }

    /// Undirected neighbours of a node, respecting the heterogeneous
    /// schema (creators and subjects only touch articles).
    ///
    /// Returns a borrowed CSR slice — no allocation per call. For
    /// articles the author port (when assigned) comes first, then the
    /// topic links in insertion order.
    pub fn neighbors(&self, node: NodeRef) -> &[NodeRef] {
        self.csr().slice(node)
    }

    /// Maps a typed reference to a dense global id in
    /// `[0, n_nodes)` — articles first, then creators, then subjects.
    /// This is the indexing DeepWalk/LINE embeddings use.
    pub fn global_id(&self, node: NodeRef) -> usize {
        match node.ty {
            NodeType::Article => {
                assert!(node.idx < self.n_articles);
                node.idx
            }
            NodeType::Creator => {
                assert!(node.idx < self.n_creators);
                self.n_articles + node.idx
            }
            NodeType::Subject => {
                assert!(node.idx < self.n_subjects);
                self.n_articles + self.n_creators + node.idx
            }
        }
    }

    /// Inverse of [`HetGraph::global_id`].
    ///
    /// # Panics
    /// Panics when `id >= n_nodes`.
    pub fn from_global_id(&self, id: usize) -> NodeRef {
        if id < self.n_articles {
            NodeRef { ty: NodeType::Article, idx: id }
        } else if id < self.n_articles + self.n_creators {
            NodeRef { ty: NodeType::Creator, idx: id - self.n_articles }
        } else {
            assert!(id < self.n_nodes(), "from_global_id: {id} out of {}", self.n_nodes());
            NodeRef { ty: NodeType::Subject, idx: id - self.n_articles - self.n_creators }
        }
    }

    /// All undirected edges as global-id pairs `(article, other)` — the
    /// edge list LINE samples from.
    pub fn edges_global(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::with_capacity(self.n_authorship_links() + self.n_subject_links());
        for (a, &c) in self.author.iter().enumerate() {
            if c != UNSET {
                edges.push((
                    self.global_id(NodeRef { ty: NodeType::Article, idx: a }),
                    self.global_id(NodeRef { ty: NodeType::Creator, idx: c }),
                ));
            }
        }
        for (a, subjects) in self.article_subjects.iter().enumerate() {
            for &s in subjects {
                edges.push((
                    self.global_id(NodeRef { ty: NodeType::Article, idx: a }),
                    self.global_id(NodeRef { ty: NodeType::Subject, idx: s }),
                ));
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HetGraph {
        // Matches Figure 2 of the paper: 3 creators, 4 articles, 3 subjects.
        let mut g = HetGraph::new(4, 3, 3);
        g.set_author(0, 0);
        g.set_author(1, 1);
        g.set_author(2, 1);
        g.set_author(3, 2);
        g.add_subject_link(0, 0);
        g.add_subject_link(1, 0);
        g.add_subject_link(1, 1);
        g.add_subject_link(2, 2);
        g.add_subject_link(3, 2);
        g
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.n_nodes(), 10);
        assert_eq!(g.n_authorship_links(), 4);
        assert_eq!(g.n_subject_links(), 5);
    }

    #[test]
    fn authorship_is_one_to_many() {
        let g = sample();
        assert_eq!(g.author_of(1), Some(1));
        assert_eq!(g.articles_of_creator(1), &[1, 2]);
        assert_eq!(g.articles_of_creator(0), &[0]);
    }

    #[test]
    #[should_panic(expected = "already has creator")]
    fn double_author_rejected() {
        let mut g = sample();
        g.set_author(0, 2);
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_subject_link_rejected() {
        let mut g = sample();
        g.add_subject_link(0, 0);
    }

    #[test]
    fn neighbors_respect_schema() {
        let g = sample();
        let n1 = g.neighbors(NodeRef { ty: NodeType::Article, idx: 1 });
        assert_eq!(n1.len(), 3);
        assert!(n1.contains(&NodeRef { ty: NodeType::Creator, idx: 1 }));
        assert!(n1.contains(&NodeRef { ty: NodeType::Subject, idx: 0 }));
        assert!(n1.contains(&NodeRef { ty: NodeType::Subject, idx: 1 }));

        let creator = g.neighbors(NodeRef { ty: NodeType::Creator, idx: 1 });
        assert!(creator.iter().all(|n| n.ty == NodeType::Article));
        let subject = g.neighbors(NodeRef { ty: NodeType::Subject, idx: 2 });
        assert_eq!(subject.len(), 2);
    }

    #[test]
    fn degree_matches_neighbor_count() {
        let g = sample();
        for ty in NodeType::ALL {
            let count = match ty {
                NodeType::Article => g.n_articles(),
                NodeType::Creator => g.n_creators(),
                NodeType::Subject => g.n_subjects(),
            };
            for idx in 0..count {
                let node = NodeRef { ty, idx };
                assert_eq!(g.degree(node), g.neighbors(node).len(), "{node:?}");
            }
        }
    }

    #[test]
    fn global_id_roundtrip() {
        let g = sample();
        for id in 0..g.n_nodes() {
            assert_eq!(g.global_id(g.from_global_id(id)), id);
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn global_id_bounds() {
        let g = sample();
        let _ = g.from_global_id(10);
    }

    #[test]
    fn edges_cover_both_link_types() {
        let g = sample();
        let edges = g.edges_global();
        assert_eq!(edges.len(), 9);
        // Every edge joins an article to a non-article.
        for (a, b) in edges {
            assert_eq!(g.from_global_id(a).ty, NodeType::Article);
            assert_ne!(g.from_global_id(b).ty, NodeType::Article);
        }
    }

    #[test]
    fn unassigned_author_is_none() {
        let g = HetGraph::new(1, 1, 0);
        assert_eq!(g.author_of(0), None);
        assert_eq!(g.degree(NodeRef { ty: NodeType::Article, idx: 0 }), 0);
        assert!(g.edges_global().is_empty());
    }

    #[test]
    fn csr_rebuilt_after_mutation() {
        let mut g = HetGraph::new(2, 1, 1);
        g.set_author(0, 0);
        // First read builds the CSR...
        assert_eq!(g.neighbors(NodeRef { ty: NodeType::Creator, idx: 0 }).len(), 1);
        // ...and any mutation afterwards must invalidate it.
        g.set_author(1, 0);
        assert_eq!(g.neighbors(NodeRef { ty: NodeType::Creator, idx: 0 }).len(), 2);
        g.add_subject_link(0, 0);
        assert_eq!(g.degree(NodeRef { ty: NodeType::Article, idx: 0 }), 2);
        assert_eq!(
            g.neighbors(NodeRef { ty: NodeType::Article, idx: 0 }),
            &[
                NodeRef { ty: NodeType::Creator, idx: 0 },
                NodeRef { ty: NodeType::Subject, idx: 0 },
            ]
        );
    }

    #[test]
    fn csr_offsets_are_consistent() {
        let g = sample();
        g.finalize();
        let mut total = 0;
        for ty in NodeType::ALL {
            let (offsets, targets) = g.neighbor_csr(ty);
            let count = match ty {
                NodeType::Article => g.n_articles(),
                NodeType::Creator => g.n_creators(),
                NodeType::Subject => g.n_subjects(),
            };
            assert_eq!(offsets.len(), count + 1);
            assert_eq!(offsets[0], 0);
            assert_eq!(*offsets.last().unwrap(), targets.len());
            assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
            total += targets.len();
        }
        // Every undirected edge appears once per endpoint.
        assert_eq!(total, 2 * (g.n_authorship_links() + g.n_subject_links()));
    }

    #[test]
    fn serde_roundtrip() {
        let g = sample();
        let json = serde_json::to_string(&g).unwrap();
        let back: HetGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_subject_links(), g.n_subject_links());
        assert_eq!(back.articles_of_creator(1), g.articles_of_creator(1));
    }
}

//! Property-based gradient checks: random small computation graphs built
//! from the primitive set must always agree with finite differences.

use fd_autograd::{grad_check, Tape, Var};
use fd_tensor::Matrix;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn rand_m(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    fd_tensor::uniform_in(rows, cols, -1.0, 1.0, rng)
}

/// Builds a random elementwise pipeline over a 1 x n row and checks it.
fn random_pipeline(seed: u64, n: usize, depth: usize) -> bool {
    let mut rng = StdRng::seed_from_u64(seed);
    let input = rand_m(1, n, &mut rng);
    let choices: Vec<u8> = (0..depth).map(|_| rng.gen_range(0u8..6)).collect();
    let report = grad_check(
        &[input],
        move |t: &Tape, v: &[Var]| {
            let mut cur = v[0];
            for &c in &choices {
                cur = match c {
                    0 => t.sigmoid(cur),
                    1 => t.tanh(cur),
                    2 => t.scale(cur, 0.7),
                    3 => t.one_minus(cur),
                    4 => t.add(cur, v[0]),
                    _ => t.mul(cur, v[0]),
                };
            }
            t.square_norm(cur)
        },
        1e-2,
    );
    report.passes(2e-2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_elementwise_pipelines_gradcheck(seed in any::<u64>(), n in 1usize..5, depth in 1usize..5) {
        prop_assert!(random_pipeline(seed, n, depth));
    }

    #[test]
    fn random_affine_chains_gradcheck(seed in any::<u64>(), dims in prop::collection::vec(1usize..5, 2..4)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mats = vec![rand_m(1, dims[0], &mut rng)];
        for w in dims.windows(2) {
            mats.push(rand_m(w[0], w[1], &mut rng));
            mats.push(rand_m(1, w[1], &mut rng)); // bias
        }
        let n_layers = dims.len() - 1;
        let report = grad_check(
            &mats,
            move |t, v| {
                let mut h = v[0];
                for l in 0..n_layers {
                    let w = v[1 + 2 * l];
                    let b = v[2 + 2 * l];
                    let a = t.matmul(h, w);
                    let a = t.add_row_broadcast(a, b);
                    h = t.tanh(a);
                }
                t.square_norm(h)
            },
            1e-2,
        );
        prop_assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn cross_entropy_any_target_gradchecks(seed in any::<u64>(), k in 2usize..7, target_raw in any::<usize>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits_in = rand_m(1, 4, &mut rng);
        let w = rand_m(4, k, &mut rng);
        let target = target_raw % k;
        let report = grad_check(
            &[logits_in, w],
            move |t, v| {
                let logits = t.matmul(v[0], v[1]);
                t.softmax_cross_entropy(logits, target)
            },
            1e-2,
        );
        prop_assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn sum_of_losses_gradchecks(seed in any::<u64>(), parts in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<Matrix> = (0..parts).map(|_| rand_m(1, 3, &mut rng)).collect();
        let report = grad_check(
            &inputs,
            |t, v| {
                let losses: Vec<Var> = v.iter().map(|&x| t.square_norm(x)).collect();
                t.sum_n(&losses)
            },
            1e-2,
        );
        prop_assert!(report.passes(2e-2), "{report:?}");
    }
}

#[test]
fn gru_cell_composite_gradchecks() {
    // Full GRU step written out of primitives; this is exactly the
    // computation fd-nn wraps, so a pass here certifies the layer.
    let mut rng = StdRng::seed_from_u64(99);
    let (e, h) = (3, 4);
    let inputs = vec![
        rand_m(1, e, &mut rng),     // x
        rand_m(1, h, &mut rng),     // h_prev
        rand_m(e, h, &mut rng),     // Wz
        rand_m(h, h, &mut rng),     // Uz
        rand_m(1, h, &mut rng),     // bz
        rand_m(e, h, &mut rng),     // Wr
        rand_m(h, h, &mut rng),     // Ur
        rand_m(1, h, &mut rng),     // br
        rand_m(e, h, &mut rng),     // Wn
        rand_m(h, h, &mut rng),     // Un
        rand_m(1, h, &mut rng),     // bn
    ];
    let report = grad_check(
        &inputs,
        |t, v| {
            let (x, hp) = (v[0], v[1]);
            let gate = |w: Var, u: Var, b: Var, hh: Var| {
                let a = t.matmul(x, w);
                let c = t.matmul(hh, u);
                let s = t.add(a, c);
                t.add_row_broadcast(s, b)
            };
            let z = t.sigmoid(gate(v[2], v[3], v[4], hp));
            let r = t.sigmoid(gate(v[5], v[6], v[7], hp));
            let rh = t.mul(r, hp);
            let n_pre = gate(v[8], v[9], v[10], rh);
            let n = t.tanh(n_pre);
            let zn = t.mul(z, n);
            let oz = t.one_minus(z);
            let ozh = t.mul(oz, hp);
            let h_new = t.add(zn, ozh);
            t.square_norm(h_new)
        },
        1e-2,
    );
    assert!(report.passes(2e-2), "{report:?}");
    assert_eq!(report.checked, inputs_len(&inputs));
}

fn inputs_len(inputs: &[Matrix]) -> usize {
    inputs.iter().map(Matrix::len).sum()
}

#[test]
fn gdu_cell_composite_gradchecks() {
    // The paper's GDU, eq. (4): forget gate f, adjust gate e, two
    // selection gates g and r, four tanh branches combined by the gates.
    let mut rng = StdRng::seed_from_u64(7);
    let d = 3; // feature width for x, z, t alike
    let h = 3;
    let inputs = vec![
        rand_m(1, d, &mut rng),         // x
        rand_m(1, d, &mut rng),         // z
        rand_m(1, d, &mut rng),         // t_in
        rand_m(3 * d, d, &mut rng),     // Wf
        rand_m(3 * d, d, &mut rng),     // We
        rand_m(3 * d, h, &mut rng),     // Wg
        rand_m(3 * d, h, &mut rng),     // Wr
        rand_m(3 * d, h, &mut rng),     // Wu
    ];
    let report = grad_check(
        &inputs,
        |t, v| {
            let (x, z, ti) = (v[0], v[1], v[2]);
            let (wf, we, wg, wr, wu) = (v[3], v[4], v[5], v[6], v[7]);
            let xzt = t.concat3(x, z, ti);
            let f = t.sigmoid(t.matmul(xzt, wf));
            let e = t.sigmoid(t.matmul(xzt, we));
            let z_tilde = t.mul(f, z);
            let t_tilde = t.mul(e, ti);
            let g = t.sigmoid(t.matmul(xzt, wg));
            let r = t.sigmoid(t.matmul(xzt, wr));
            let branch = |zz: Var, tt: Var| {
                let cat = t.concat3(x, zz, tt);
                let pre = t.matmul(cat, wu);
                t.tanh(pre)
            };
            let b1 = branch(z_tilde, t_tilde);
            let b2 = branch(z, t_tilde);
            let b3 = branch(z_tilde, ti);
            let b4 = branch(z, ti);
            let og = t.one_minus(g);
            let or = t.one_minus(r);
            let gr = t.mul(g, r);
            let ogr = t.mul(og, r);
            let gor = t.mul(g, or);
            let ogor = t.mul(og, or);
            let p1 = t.mul(gr, b1);
            let p2 = t.mul(ogr, b2);
            let p3 = t.mul(gor, b3);
            let p4 = t.mul(ogor, b4);
            let s12 = t.add(p1, p2);
            let s34 = t.add(p3, p4);
            let hout = t.add(s12, s34);
            t.square_norm(hout)
        },
        1e-2,
    );
    assert!(report.passes(2e-2), "{report:?}");
}

//! The tape: node storage, forward evaluation, and the backward pass.

use fd_tensor::Matrix;
use std::cell::RefCell;
use std::rc::Rc;

/// A handle to a value recorded on a [`Tape`].
///
/// `Var`s are cheap copyable indices; they are only meaningful for the
/// tape that produced them. Mixing handles across tapes is a programmer
/// error caught by the shape asserts at best, so don't.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) u32);

/// Primitive operations the engine can differentiate.
///
/// Parent handles are stored inline; `SoftmaxCrossEntropy` additionally
/// caches the forward soft-max so the backward pass is a single subtract.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Input or parameter; no parents.
    Leaf,
    /// `a · b`.
    MatMul(Var, Var),
    /// `a + b`, same shape.
    Add(Var, Var),
    /// `a + bias` where `bias` is `1 x n` broadcast over rows.
    AddRowBroadcast(Var, Var),
    /// `a - b`, same shape.
    Sub(Var, Var),
    /// Element-wise `a ⊗ b`.
    Mul(Var, Var),
    /// `alpha * a`.
    Scale(Var, f32),
    /// `1 - a`, element-wise.
    OneMinus(Var),
    /// Logistic sigmoid.
    Sigmoid(Var),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Rectified linear unit.
    Relu(Var),
    /// `[a | b]` along columns.
    ConcatCols(Var, Var),
    /// Mean of N same-shaped values (the diffusion aggregator).
    MeanN(Vec<Var>),
    /// Sum of N same-shaped values (loss accumulation).
    SumN(Vec<Var>),
    /// Scalar `-log softmax(logits)[target]`; caches the soft-max row.
    SoftmaxCrossEntropy { logits: Var, target: usize, probs: Matrix },
    /// Scalar `Σ xᵢ²` (L2 regulariser).
    SquareNorm(Var),
    /// Copy of one row of the parent (embedding lookup).
    EmbedRow { table: Var, row: usize },
    /// Batched row gather: output row `i` is `src` row `rows[i]`, or a
    /// zero row for `None`. The matrix generalisation of `EmbedRow`;
    /// the backward direction is a scatter-add.
    GatherRows { src: Var, rows: Rc<Vec<Option<usize>>> },
    /// Batched neighbour mean: output row `i` averages the `lists[i]`
    /// rows of `src` (the diffusion aggregator over graph adjacency);
    /// empty lists yield zero rows.
    MeanRows { src: Var, lists: Rc<Vec<Vec<usize>>> },
    /// Vertical stack `[a; b]` (same column count).
    ConcatRows(Var, Var),
    /// Per-row selection between two same-shaped values: output row `i`
    /// is `a`'s row where `take_a[i]`, else `b`'s.
    MaskRows { a: Var, b: Var, take_a: Rc<Vec<bool>> },
    /// Per-row pooled-sum accumulation (batched GRU pooling): each row
    /// either keeps the running sum, starts it at `h`, or adds `h`.
    AccumRows { sum: Var, h: Var, phase: Rc<Vec<RowAccum>> },
    /// Scalar sum of per-row `-log softmax(logits_i)[targets[i]]`,
    /// accumulated in row order; caches the row-wise soft-max.
    SoftmaxCrossEntropyRows { logits: Var, targets: Rc<Vec<usize>>, probs: Matrix },
}

/// Per-row instruction for [`Tape::accum_rows`]: what the output row
/// does with the running `sum` row and the incoming `h` row.
///
/// `Start` exists because the per-node GRU pooling begins its running
/// sum *at* the first hidden state (a copy), not at `0 + h` — the two
/// differ bitwise when `h` carries a negative zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowAccum {
    /// Row is finished (or never started): keep the `sum` row.
    Skip,
    /// First real step for this row: the output row is a copy of `h`.
    Start,
    /// Subsequent step: the output row is `sum + h`.
    Add,
}

pub(crate) struct Node {
    pub value: Matrix,
    pub grad: Option<Matrix>,
    pub op: Op,
}

/// An append-only record of a computation, able to run reverse-mode
/// differentiation over it. See the crate docs for the usage model.
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: RefCell<Vec<Node>>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocates node storage; purely a performance hint.
    pub fn with_capacity(nodes: usize) -> Self {
        Self { nodes: RefCell::new(Vec::with_capacity(nodes)) }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    pub(crate) fn push(&self, value: Matrix, op: Op) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        let idx = nodes.len();
        assert!(idx <= u32::MAX as usize, "tape overflow: more than u32::MAX nodes");
        nodes.push(Node { value, grad: None, op });
        Var(idx as u32)
    }

    /// Registers an input or parameter value; its gradient is available
    /// after [`Tape::backward`] via [`Tape::grad`].
    pub fn leaf(&self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Shape of a recorded value.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes.borrow()[v.0 as usize].value.shape()
    }

    /// Clones the forward value of `v`.
    pub fn value(&self, v: Var) -> Matrix {
        self.nodes.borrow()[v.0 as usize].value.clone()
    }

    /// Runs `f` with a borrow of the forward value, avoiding a clone.
    pub fn with_value<R>(&self, v: Var, f: impl FnOnce(&Matrix) -> R) -> R {
        f(&self.nodes.borrow()[v.0 as usize].value)
    }

    /// Clones the gradient accumulated at `v`, or `None` if `v` did not
    /// participate in the differentiated sub-graph (or `backward` has not
    /// run yet).
    pub fn grad(&self, v: Var) -> Option<Matrix> {
        self.nodes.borrow()[v.0 as usize].grad.clone()
    }

    /// Reverse-mode differentiation from the scalar `loss`.
    ///
    /// Gradients accumulate (`+=`) into every node that `loss` depends on;
    /// calling `backward` twice on the same tape therefore doubles the
    /// gradients — build a fresh tape per step instead.
    ///
    /// # Panics
    /// Panics when `loss` is not `1 x 1`.
    pub fn backward(&self, loss: Var) {
        let mut nodes = self.nodes.borrow_mut();
        {
            let seed = &mut nodes[loss.0 as usize];
            assert_eq!(
                seed.value.shape(),
                (1, 1),
                "backward: loss must be a 1x1 scalar, got {}x{}",
                seed.value.rows(),
                seed.value.cols()
            );
            seed.grad = Some(Matrix::ones(1, 1));
        }
        for i in (0..=loss.0 as usize).rev() {
            // Take this node's pieces out so we can mutate parents.
            let Some(g) = nodes[i].grad.clone() else { continue };
            let op = nodes[i].op.clone();
            crate::ops::propagate(&mut nodes, i, &g, &op);
        }
    }

    /// Clears every recorded node while keeping the allocated arena, so
    /// a training loop can record each epoch into the same tape. After
    /// the first epoch the arena capacity settles at the previous
    /// epoch's node count — no reallocation, no fresh zeroing.
    ///
    /// All `Var` handles from before the reset are invalidated.
    pub fn reset(&self) {
        self.nodes.borrow_mut().clear();
    }

    /// Drops every accumulated gradient, keeping forward values. Useful
    /// when re-using a tape for gradient checking.
    pub fn zero_grads(&self) {
        for node in self.nodes.borrow_mut().iter_mut() {
            node.grad = None;
        }
    }
}

pub(crate) fn accumulate(nodes: &mut [Node], target: Var, delta: &Matrix) {
    let slot = &mut nodes[target.0 as usize].grad;
    match slot {
        Some(g) => g.add_assign(delta),
        None => *slot = Some(delta.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrips_value() {
        let t = Tape::new();
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        let v = t.leaf(m.clone());
        assert_eq!(t.value(v), m);
        assert_eq!(t.shape(v), (1, 2));
        assert_eq!(t.len(), 1);
        assert!(t.grad(v).is_none());
    }

    #[test]
    fn with_value_borrows() {
        let t = Tape::new();
        let v = t.leaf(Matrix::ones(2, 2));
        let s = t.with_value(v, |m| m.sum());
        assert_eq!(s, 4.0);
    }

    #[test]
    #[should_panic(expected = "loss must be a 1x1 scalar")]
    fn backward_rejects_non_scalar() {
        let t = Tape::new();
        let v = t.leaf(Matrix::ones(1, 2));
        t.backward(v);
    }

    #[test]
    fn zero_grads_clears() {
        let t = Tape::new();
        let x = t.leaf(Matrix::row_vector(&[2.0]));
        let loss = t.square_norm(x);
        t.backward(loss);
        assert!(t.grad(x).is_some());
        t.zero_grads();
        assert!(t.grad(x).is_none());
    }
}

//! Tape-based reverse-mode automatic differentiation over [`fd_tensor`].
//!
//! The FakeDetector model trains three coupled component families — GRU
//! text encoders (HFLU), gated diffusive units (GDU) and soft-max
//! credibility heads — end to end through a heterogeneous graph. Deriving
//! and maintaining those gradients by hand would be fragile, so this crate
//! provides a small, fully gradient-checked autodiff engine instead.
//!
//! # Model
//!
//! A [`Tape`] records every operation as it is executed (eager forward
//! evaluation). Each operation appends a node holding its result; the
//! returned [`Var`] is a copyable index into the tape. Because nodes are
//! append-only, tape order *is* a topological order, and
//! [`Tape::backward`] simply walks it in reverse, dispatching the adjoint
//! rule for each primitive.
//!
//! One tape corresponds to one training step; afterwards either drop it
//! or clear it with [`Tape::reset`], which keeps the node arena's
//! allocation for the next step (how the epoch loop reuses one tape).
//! Parameters live outside the tape (see `fd-nn`) and are re-registered
//! as leaves each step.
//!
//! # Example
//!
//! ```
//! use fd_autograd::Tape;
//! use fd_tensor::Matrix;
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Matrix::row_vector(&[1.0, 2.0]));
//! let w = tape.leaf(Matrix::from_rows(&[&[0.5], &[-0.25]]));
//! let y = tape.matmul(x, w);          // 1x1: [1*0.5 - 2*0.25] = 0.0
//! let loss = tape.square_norm(y);     // y²
//! tape.backward(loss);
//! // d(y²)/dw = 2y·x = 0 here, but the shapes must line up:
//! assert_eq!(tape.grad(w).unwrap().shape(), (2, 1));
//! ```

mod check;
mod ops;
mod tape;

pub use check::{grad_check, GradCheckReport};
pub use tape::{RowAccum, Tape, Var};

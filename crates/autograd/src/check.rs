//! Finite-difference gradient checking.
//!
//! Every differentiable building block in this workspace (GRU cell, GDU
//! cell, soft-max heads, the full diffusion network) is validated against
//! central finite differences through this utility.

use crate::{Tape, Var};
use fd_tensor::Matrix;

/// Summary of a gradient check run. A healthy f32 model shows
/// `max_rel_diff` well below `1e-2` with `eps ≈ 1e-2`.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric partials.
    pub max_abs_diff: f32,
    /// Largest relative difference, guarded by an absolute floor.
    pub max_rel_diff: f32,
    /// Number of scalar partials compared.
    pub checked: usize,
}

impl GradCheckReport {
    /// True when both the absolute and relative gaps are within `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_diff <= tol || self.max_rel_diff <= tol
    }
}

/// Compares analytic gradients of `f` against central finite differences.
///
/// `f` must build a scalar loss from leaves registered for each entry of
/// `inputs`, in order. The function is re-evaluated `2 × Σ len(inputs)`
/// times, so keep the inputs small.
///
/// # Panics
/// Panics when `f` returns a non-scalar, or when an analytic gradient is
/// missing for an input that the numeric check says the loss depends on.
pub fn grad_check<F>(inputs: &[Matrix], f: F, eps: f32) -> GradCheckReport
where
    F: Fn(&Tape, &[Var]) -> Var,
{
    let eval = |perturbed: &[Matrix]| -> f32 {
        let tape = Tape::new();
        let vars: Vec<Var> = perturbed.iter().map(|m| tape.leaf(m.clone())).collect();
        let loss = f(&tape, &vars);
        tape.with_value(loss, |m| {
            assert_eq!(m.shape(), (1, 1), "grad_check: loss must be scalar");
            m[(0, 0)]
        })
    };

    // Analytic pass.
    let tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| tape.leaf(m.clone())).collect();
    let loss = f(&tape, &vars);
    tape.backward(loss);
    let analytic: Vec<Option<Matrix>> = vars.iter().map(|&v| tape.grad(v)).collect();

    let mut report = GradCheckReport { max_abs_diff: 0.0, max_rel_diff: 0.0, checked: 0 };
    let mut work: Vec<Matrix> = inputs.to_vec();
    for (i, input) in inputs.iter().enumerate() {
        for k in 0..input.len() {
            let orig = input.as_slice()[k];
            work[i].as_mut_slice()[k] = orig + eps;
            let plus = eval(&work);
            work[i].as_mut_slice()[k] = orig - eps;
            let minus = eval(&work);
            work[i].as_mut_slice()[k] = orig;

            let numeric = (plus - minus) / (2.0 * eps);
            let exact = analytic[i].as_ref().map_or(0.0, |g| g.as_slice()[k]);
            if analytic[i].is_none() && numeric.abs() > 10.0 * eps {
                panic!(
                    "grad_check: input {i} has no analytic gradient but numeric partial {numeric} at element {k}"
                );
            }
            let abs = (numeric - exact).abs();
            let rel = abs / numeric.abs().max(exact.abs()).max(1e-3);
            report.max_abs_diff = report.max_abs_diff.max(abs);
            report.max_rel_diff = report.max_rel_diff.max(rel);
            report.checked += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_tensor::Matrix;
    use rand::{rngs::StdRng, SeedableRng};

    fn rand_m(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        fd_tensor::uniform_in(rows, cols, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn checks_simple_quadratic() {
        let report = grad_check(
            &[rand_m(1, 4, 1)],
            |t, v| t.square_norm(v[0]),
            1e-2,
        );
        assert!(report.passes(1e-2), "{report:?}");
        assert_eq!(report.checked, 4);
    }

    #[test]
    fn checks_matmul_chain() {
        let report = grad_check(
            &[rand_m(1, 3, 2), rand_m(3, 4, 3), rand_m(4, 2, 4)],
            |t, v| {
                let h = t.matmul(v[0], v[1]);
                let h = t.tanh(h);
                let o = t.matmul(h, v[2]);
                t.square_norm(o)
            },
            1e-2,
        );
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn checks_gated_composite() {
        // A miniature GDU-style gate: g = σ(xW), out = g⊗tanh(xU) + (1-g)⊗x.
        let report = grad_check(
            &[rand_m(1, 3, 5), rand_m(3, 3, 6), rand_m(3, 3, 7)],
            |t, v| {
                let gate_in = t.matmul(v[0], v[1]);
                let g = t.sigmoid(gate_in);
                let cand_in = t.matmul(v[0], v[2]);
                let cand = t.tanh(cand_in);
                let a = t.mul(g, cand);
                let og = t.one_minus(g);
                let b = t.mul(og, v[0]);
                let out = t.add(a, b);
                t.square_norm(out)
            },
            1e-2,
        );
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn checks_cross_entropy_head() {
        let report = grad_check(
            &[rand_m(1, 5, 8), rand_m(5, 6, 9)],
            |t, v| {
                let logits = t.matmul(v[0], v[1]);
                t.softmax_cross_entropy(logits, 2)
            },
            1e-2,
        );
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn checks_mean_and_broadcast() {
        let report = grad_check(
            &[rand_m(1, 4, 10), rand_m(1, 4, 11), rand_m(1, 4, 12)],
            |t, v| {
                let m = t.mean_n(&[v[0], v[1], v[2]]);
                let c = t.concat_cols(m, v[0]);
                t.square_norm(c)
            },
            1e-2,
        );
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    #[should_panic(expected = "loss must be")]
    fn rejects_vector_loss() {
        let _ = grad_check(&[rand_m(1, 2, 13)], |t, v| t.tanh(v[0]), 1e-2);
    }
}

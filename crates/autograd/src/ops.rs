//! Forward definitions and adjoint (backward) rules for every primitive.

use crate::tape::{accumulate, Node, Op, Tape, Var};
use fd_tensor::{softmax_in_place, Matrix};

impl Tape {
    /// Matrix product `a · b`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].value.matmul(&nodes[b.0 as usize].value)
        };
        self.push(value, Op::MatMul(a, b))
    }

    /// Element-wise sum of two same-shaped values.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].value.add(&nodes[b.0 as usize].value)
        };
        self.push(value, Op::Add(a, b))
    }

    /// Adds a `1 x n` bias row to every row of `a`.
    pub fn add_row_broadcast(&self, a: Var, bias: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].value.add_row_broadcast(&nodes[bias.0 as usize].value)
        };
        self.push(value, Op::AddRowBroadcast(a, bias))
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].value.sub(&nodes[b.0 as usize].value)
        };
        self.push(value, Op::Sub(a, b))
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].value.mul(&nodes[b.0 as usize].value)
        };
        self.push(value, Op::Mul(a, b))
    }

    /// `alpha * a`.
    pub fn scale(&self, a: Var, alpha: f32) -> Var {
        let value = self.nodes.borrow()[a.0 as usize].value.scale(alpha);
        self.push(value, Op::Scale(a, alpha))
    }

    /// `1 - a`, element-wise — the complement used by GDU's selection
    /// gates.
    pub fn one_minus(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0 as usize].value.map(|v| 1.0 - v);
        self.push(value, Op::OneMinus(a))
    }

    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    pub fn sigmoid(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0 as usize].value.map(stable_sigmoid);
        self.push(value, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0 as usize].value.map(f32::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Rectified linear unit `max(0, x)`.
    pub fn relu(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0 as usize].value.map(|v| v.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Column-wise concatenation `[a | b]`.
    pub fn concat_cols(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].value.concat_cols(&nodes[b.0 as usize].value)
        };
        self.push(value, Op::ConcatCols(a, b))
    }

    /// Concatenates three row-blocks of columns; convenience for the
    /// `[x⊤, z⊤, t⊤]⊤` stacking in the GDU equations.
    pub fn concat3(&self, a: Var, b: Var, c: Var) -> Var {
        let ab = self.concat_cols(a, b);
        self.concat_cols(ab, c)
    }

    /// Mean of N same-shaped values — the neighbour aggregator of the
    /// diffusion network.
    ///
    /// # Panics
    /// Panics on an empty input set or mismatched shapes.
    pub fn mean_n(&self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "mean_n: empty input set");
        let value = {
            let nodes = self.nodes.borrow();
            let mut acc = nodes[vars[0].0 as usize].value.clone();
            for v in &vars[1..] {
                acc.add_assign(&nodes[v.0 as usize].value);
            }
            acc.scale(1.0 / vars.len() as f32)
        };
        self.push(value, Op::MeanN(vars.to_vec()))
    }

    /// Sum of N same-shaped values (loss accumulation across entities).
    ///
    /// # Panics
    /// Panics on an empty input set or mismatched shapes.
    pub fn sum_n(&self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "sum_n: empty input set");
        let value = {
            let nodes = self.nodes.borrow();
            let mut acc = nodes[vars[0].0 as usize].value.clone();
            for v in &vars[1..] {
                acc.add_assign(&nodes[v.0 as usize].value);
            }
            acc
        };
        self.push(value, Op::SumN(vars.to_vec()))
    }

    /// Scalar cross-entropy `-log softmax(logits)[target]` for a `1 x k`
    /// logits row. The cached soft-max makes the backward pass a single
    /// subtraction.
    ///
    /// # Panics
    /// Panics when `logits` is not a row vector or `target` is out of
    /// range.
    pub fn softmax_cross_entropy(&self, logits: Var, target: usize) -> Var {
        let (probs, loss) = {
            let nodes = self.nodes.borrow();
            let l = &nodes[logits.0 as usize].value;
            assert!(
                l.is_row_vector(),
                "softmax_cross_entropy: logits must be 1 x k, got {}x{}",
                l.rows(),
                l.cols()
            );
            assert!(
                target < l.cols(),
                "softmax_cross_entropy: target {target} out of {} classes",
                l.cols()
            );
            let mut probs = l.clone();
            softmax_in_place(probs.row_mut(0));
            // Clamp avoids -inf loss when a class has underflowed to 0.
            let p = probs[(0, target)].max(1e-12);
            (probs, -p.ln())
        };
        self.push(
            Matrix::filled(1, 1, loss),
            Op::SoftmaxCrossEntropy { logits, target, probs },
        )
    }

    /// Scalar `Σ xᵢ²`, the L2 regularisation term.
    pub fn square_norm(&self, a: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let x = &nodes[a.0 as usize].value;
            Matrix::filled(1, 1, x.as_slice().iter().map(|&v| v * v).sum())
        };
        self.push(value, Op::SquareNorm(a))
    }

    /// Copies row `row` of `table` as a `1 x n` value (embedding lookup);
    /// the gradient scatters back into that row only.
    ///
    /// # Panics
    /// Panics when `row` is out of range.
    pub fn embed_row(&self, table: Var, row: usize) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[table.0 as usize].value.row_matrix(row)
        };
        self.push(value, Op::EmbedRow { table, row })
    }
}

// The sigmoid definition is shared with the tape-free batched inference
// path so both produce identical bits.
pub(crate) use fd_tensor::stable_sigmoid;

/// Applies the adjoint rule of `op` for node `i`, whose output gradient is
/// `g`, accumulating into its parents.
pub(crate) fn propagate(nodes: &mut [Node], i: usize, g: &Matrix, op: &Op) {
    match op {
        Op::Leaf => {}
        Op::MatMul(a, b) => {
            // d/dA (A·B) = G·Bᵀ ; d/dB = Aᵀ·G
            let da = g.matmul_transpose(&nodes[b.0 as usize].value);
            let db = nodes[a.0 as usize].value.transpose_matmul(g);
            accumulate(nodes, *a, &da);
            accumulate(nodes, *b, &db);
        }
        Op::Add(a, b) => {
            accumulate(nodes, *a, g);
            accumulate(nodes, *b, g);
        }
        Op::AddRowBroadcast(a, bias) => {
            accumulate(nodes, *a, g);
            let db = g.col_sums();
            accumulate(nodes, *bias, &db);
        }
        Op::Sub(a, b) => {
            accumulate(nodes, *a, g);
            let db = g.scale(-1.0);
            accumulate(nodes, *b, &db);
        }
        Op::Mul(a, b) => {
            let da = g.mul(&nodes[b.0 as usize].value);
            let db = g.mul(&nodes[a.0 as usize].value);
            accumulate(nodes, *a, &da);
            accumulate(nodes, *b, &db);
        }
        Op::Scale(a, alpha) => {
            let da = g.scale(*alpha);
            accumulate(nodes, *a, &da);
        }
        Op::OneMinus(a) => {
            let da = g.scale(-1.0);
            accumulate(nodes, *a, &da);
        }
        Op::Sigmoid(a) => {
            // y' = y(1-y), in terms of the stored output.
            let y = &nodes[i].value;
            let da = g.zip_map(y, |gv, yv| gv * yv * (1.0 - yv));
            accumulate(nodes, *a, &da);
        }
        Op::Tanh(a) => {
            let y = &nodes[i].value;
            let da = g.zip_map(y, |gv, yv| gv * (1.0 - yv * yv));
            accumulate(nodes, *a, &da);
        }
        Op::Relu(a) => {
            let x = &nodes[a.0 as usize].value;
            let da = g.zip_map(x, |gv, xv| if xv > 0.0 { gv } else { 0.0 });
            accumulate(nodes, *a, &da);
        }
        Op::ConcatCols(a, b) => {
            let a_cols = nodes[a.0 as usize].value.cols();
            let b_cols = nodes[b.0 as usize].value.cols();
            let da = g.slice_cols(0, a_cols);
            let db = g.slice_cols(a_cols, b_cols);
            accumulate(nodes, *a, &da);
            accumulate(nodes, *b, &db);
        }
        Op::MeanN(vars) => {
            let share = g.scale(1.0 / vars.len() as f32);
            for v in vars {
                accumulate(nodes, *v, &share);
            }
        }
        Op::SumN(vars) => {
            for v in vars {
                accumulate(nodes, *v, g);
            }
        }
        Op::SoftmaxCrossEntropy { logits, target, probs } => {
            // dL/dlogits = softmax(logits) - onehot(target), scaled by the
            // incoming scalar gradient.
            let scale = g[(0, 0)];
            let mut dl = probs.clone();
            dl[(0, *target)] -= 1.0;
            let dl = dl.scale(scale);
            accumulate(nodes, *logits, &dl);
        }
        Op::SquareNorm(a) => {
            let scale = 2.0 * g[(0, 0)];
            let da = nodes[a.0 as usize].value.scale(scale);
            accumulate(nodes, *a, &da);
        }
        Op::EmbedRow { table, row } => {
            debug_assert!(g.is_row_vector());
            let cols = nodes[table.0 as usize].value.cols();
            let rows = nodes[table.0 as usize].value.rows();
            let slot = &mut nodes[table.0 as usize].grad;
            if slot.is_none() {
                *slot = Some(Matrix::zeros(rows, cols));
            }
            let gt = slot.as_mut().expect("just initialised");
            for (acc, &v) in gt.row_mut(*row).iter_mut().zip(g.row(0)) {
                *acc += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Tape;
    use fd_tensor::{assert_close, Matrix};

    #[test]
    fn stable_sigmoid_extremes() {
        assert!(super::stable_sigmoid(100.0) > 0.999_999);
        assert!(super::stable_sigmoid(-100.0) < 1e-6);
        assert!((super::stable_sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn matmul_gradients_match_known_formula() {
        // loss = sum((x·W)²) for 1x2 · 2x2; verified against hand algebra.
        let t = Tape::new();
        let x = t.leaf(Matrix::row_vector(&[1.0, -2.0]));
        let w = t.leaf(Matrix::from_rows(&[&[0.5, 1.0], &[2.0, -1.0]]));
        let y = t.matmul(x, w); // [-3.5, 3.0]
        let loss = t.square_norm(y);
        t.backward(loss);
        assert_close(&t.value(y), &Matrix::row_vector(&[-3.5, 3.0]), 1e-6);
        // dL/dy = 2y; dL/dx = 2y·Wᵀ; dL/dW = xᵀ·2y
        let dx = t.grad(x).unwrap();
        assert_close(&dx, &Matrix::row_vector(&[-7.0 * 0.5 + 6.0 * 1.0, -7.0 * 2.0 - 6.0]), 1e-5);
        let dw = t.grad(w).unwrap();
        assert_close(
            &dw,
            &Matrix::from_rows(&[&[-7.0, 6.0], &[14.0, -12.0]]),
            1e-5,
        );
    }

    #[test]
    fn add_and_sub_route_gradients() {
        let t = Tape::new();
        let a = t.leaf(Matrix::row_vector(&[1.0]));
        let b = t.leaf(Matrix::row_vector(&[2.0]));
        let s = t.sub(a, b); // -1
        let sum = t.add(s, a); // 0
        let loss = t.square_norm(sum); // (2a - b)² = 0
        t.backward(loss);
        // d/da (2a-b)² = 2(2a-b)*2 = 0 at a=1,b=2; but gradients still flow.
        assert_eq!(t.grad(a).unwrap().shape(), (1, 1));
        assert_eq!(t.grad(b).unwrap().shape(), (1, 1));
    }

    #[test]
    fn softmax_cross_entropy_gradient_is_probs_minus_onehot() {
        let t = Tape::new();
        let logits = t.leaf(Matrix::row_vector(&[1.0, 2.0, 0.5]));
        let loss = t.softmax_cross_entropy(logits, 1);
        t.backward(loss);
        let g = t.grad(logits).unwrap();
        let p = fd_tensor::softmax_rows(&t.value(logits));
        let mut expected = p;
        expected[(0, 1)] -= 1.0;
        assert_close(&g, &expected, 1e-6);
        // Loss value is -log p₁.
        let p1 = fd_tensor::softmax_rows(&t.value(logits))[(0, 1)];
        assert!((t.value(loss)[(0, 0)] + p1.ln()).abs() < 1e-6);
    }

    #[test]
    fn mean_n_splits_gradient_evenly() {
        let t = Tape::new();
        let a = t.leaf(Matrix::row_vector(&[1.0, 0.0]));
        let b = t.leaf(Matrix::row_vector(&[3.0, 0.0]));
        let c = t.leaf(Matrix::row_vector(&[5.0, 0.0]));
        let m = t.mean_n(&[a, b, c]);
        assert_close(&t.value(m), &Matrix::row_vector(&[3.0, 0.0]), 1e-6);
        let loss = t.square_norm(m);
        t.backward(loss);
        // dL/da = 2·m/3 = [2, 0]
        assert_close(&t.grad(a).unwrap(), &Matrix::row_vector(&[2.0, 0.0]), 1e-5);
        assert_close(&t.grad(b).unwrap(), &t.grad(c).unwrap(), 1e-6);
    }

    #[test]
    fn concat_splits_gradient_by_width() {
        let t = Tape::new();
        let a = t.leaf(Matrix::row_vector(&[1.0]));
        let b = t.leaf(Matrix::row_vector(&[2.0, 3.0]));
        let cat = t.concat_cols(a, b);
        assert_eq!(t.shape(cat), (1, 3));
        let loss = t.square_norm(cat);
        t.backward(loss);
        assert_close(&t.grad(a).unwrap(), &Matrix::row_vector(&[2.0]), 1e-6);
        assert_close(&t.grad(b).unwrap(), &Matrix::row_vector(&[4.0, 6.0]), 1e-6);
    }

    #[test]
    fn embed_row_scatters_into_single_row() {
        let t = Tape::new();
        let table = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let e = t.embed_row(table, 1);
        assert_close(&t.value(e), &Matrix::row_vector(&[3.0, 4.0]), 1e-6);
        let loss = t.square_norm(e);
        t.backward(loss);
        let g = t.grad(table).unwrap();
        assert_close(
            &g,
            &Matrix::from_rows(&[&[0.0, 0.0], &[6.0, 8.0], &[0.0, 0.0]]),
            1e-6,
        );
    }

    #[test]
    fn embed_row_accumulates_on_repeated_lookup() {
        let t = Tape::new();
        let table = t.leaf(Matrix::from_rows(&[&[1.0], &[2.0]]));
        let e1 = t.embed_row(table, 0);
        let e2 = t.embed_row(table, 0);
        let s = t.add(e1, e2);
        let loss = t.square_norm(s);
        t.backward(loss);
        // loss = (2x)², dL/dx = 8x = 8.
        assert_close(&t.grad(table).unwrap(), &Matrix::from_rows(&[&[8.0], &[0.0]]), 1e-5);
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // loss = (x + x)² must see dL/dx = 8x.
        let t = Tape::new();
        let x = t.leaf(Matrix::row_vector(&[3.0]));
        let s = t.add(x, x);
        let loss = t.square_norm(s);
        t.backward(loss);
        assert_close(&t.grad(x).unwrap(), &Matrix::row_vector(&[24.0]), 1e-5);
    }

    #[test]
    fn activations_forward_values() {
        let t = Tape::new();
        let x = t.leaf(Matrix::row_vector(&[-1.0, 0.0, 2.0]));
        assert_close(
            &t.value(t.relu(x)),
            &Matrix::row_vector(&[0.0, 0.0, 2.0]),
            1e-6,
        );
        let s = t.value(t.sigmoid(x));
        assert!((s[(0, 1)] - 0.5).abs() < 1e-6);
        let th = t.value(t.tanh(x));
        assert!((th[(0, 2)] - 2.0f32.tanh()).abs() < 1e-6);
        let om = t.value(t.one_minus(x));
        assert_close(&om, &Matrix::row_vector(&[2.0, 1.0, -1.0]), 1e-6);
    }

    #[test]
    fn scale_and_broadcast_backward() {
        let t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.leaf(Matrix::row_vector(&[0.5, -0.5]));
        let y = t.add_row_broadcast(x, b);
        let z = t.scale(y, 3.0);
        let loss = t.square_norm(z);
        t.backward(loss);
        // Bias gradient is the column sum of the upstream gradient.
        let gb = t.grad(b).unwrap();
        assert_eq!(gb.shape(), (1, 2));
        let gx = t.grad(x).unwrap();
        assert_eq!(gx.shape(), (2, 2));
        // dL/dz = 2z, dL/dy = 6z = 18(y), dL/db = colsum.
        let y_val = t.value(y);
        let expected_gb_0 = 18.0 * (y_val[(0, 0)] + y_val[(1, 0)]);
        assert!((gb[(0, 0)] - expected_gb_0).abs() < 1e-4);
    }
}

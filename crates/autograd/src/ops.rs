//! Forward definitions and adjoint (backward) rules for every primitive.

use crate::tape::{accumulate, Node, Op, RowAccum, Tape, Var};
use fd_tensor::{softmax_in_place, Matrix};
use std::rc::Rc;

impl Tape {
    /// Matrix product `a · b`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].value.matmul(&nodes[b.0 as usize].value)
        };
        self.push(value, Op::MatMul(a, b))
    }

    /// Element-wise sum of two same-shaped values.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].value.add(&nodes[b.0 as usize].value)
        };
        self.push(value, Op::Add(a, b))
    }

    /// Adds a `1 x n` bias row to every row of `a`.
    pub fn add_row_broadcast(&self, a: Var, bias: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].value.add_row_broadcast(&nodes[bias.0 as usize].value)
        };
        self.push(value, Op::AddRowBroadcast(a, bias))
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].value.sub(&nodes[b.0 as usize].value)
        };
        self.push(value, Op::Sub(a, b))
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].value.mul(&nodes[b.0 as usize].value)
        };
        self.push(value, Op::Mul(a, b))
    }

    /// `alpha * a`.
    pub fn scale(&self, a: Var, alpha: f32) -> Var {
        let value = self.nodes.borrow()[a.0 as usize].value.scale(alpha);
        self.push(value, Op::Scale(a, alpha))
    }

    /// `1 - a`, element-wise — the complement used by GDU's selection
    /// gates.
    pub fn one_minus(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0 as usize].value.map(|v| 1.0 - v);
        self.push(value, Op::OneMinus(a))
    }

    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    pub fn sigmoid(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0 as usize].value.map(stable_sigmoid);
        self.push(value, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0 as usize].value.map(f32::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Rectified linear unit `max(0, x)`.
    pub fn relu(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0 as usize].value.map(|v| v.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Column-wise concatenation `[a | b]`.
    pub fn concat_cols(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].value.concat_cols(&nodes[b.0 as usize].value)
        };
        self.push(value, Op::ConcatCols(a, b))
    }

    /// Concatenates three row-blocks of columns; convenience for the
    /// `[x⊤, z⊤, t⊤]⊤` stacking in the GDU equations.
    pub fn concat3(&self, a: Var, b: Var, c: Var) -> Var {
        let ab = self.concat_cols(a, b);
        self.concat_cols(ab, c)
    }

    /// Mean of N same-shaped values — the neighbour aggregator of the
    /// diffusion network.
    ///
    /// # Panics
    /// Panics on an empty input set or mismatched shapes.
    pub fn mean_n(&self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "mean_n: empty input set");
        let value = {
            let nodes = self.nodes.borrow();
            let mut acc = nodes[vars[0].0 as usize].value.clone();
            for v in &vars[1..] {
                acc.add_assign(&nodes[v.0 as usize].value);
            }
            acc.scale(1.0 / vars.len() as f32)
        };
        self.push(value, Op::MeanN(vars.to_vec()))
    }

    /// Sum of N same-shaped values (loss accumulation across entities).
    ///
    /// # Panics
    /// Panics on an empty input set or mismatched shapes.
    pub fn sum_n(&self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "sum_n: empty input set");
        let value = {
            let nodes = self.nodes.borrow();
            let mut acc = nodes[vars[0].0 as usize].value.clone();
            for v in &vars[1..] {
                acc.add_assign(&nodes[v.0 as usize].value);
            }
            acc
        };
        self.push(value, Op::SumN(vars.to_vec()))
    }

    /// Scalar cross-entropy `-log softmax(logits)[target]` for a `1 x k`
    /// logits row. The cached soft-max makes the backward pass a single
    /// subtraction.
    ///
    /// # Panics
    /// Panics when `logits` is not a row vector or `target` is out of
    /// range.
    pub fn softmax_cross_entropy(&self, logits: Var, target: usize) -> Var {
        let (probs, loss) = {
            let nodes = self.nodes.borrow();
            let l = &nodes[logits.0 as usize].value;
            assert!(
                l.is_row_vector(),
                "softmax_cross_entropy: logits must be 1 x k, got {}x{}",
                l.rows(),
                l.cols()
            );
            assert!(
                target < l.cols(),
                "softmax_cross_entropy: target {target} out of {} classes",
                l.cols()
            );
            let mut probs = l.clone();
            softmax_in_place(probs.row_mut(0));
            // Clamp avoids -inf loss when a class has underflowed to 0.
            let p = probs[(0, target)].max(1e-12);
            (probs, -p.ln())
        };
        self.push(
            Matrix::filled(1, 1, loss),
            Op::SoftmaxCrossEntropy { logits, target, probs },
        )
    }

    /// Scalar `Σ xᵢ²`, the L2 regularisation term. Reduced over the
    /// deterministic tree in `fd_tensor::parallel`, so the value is
    /// bit-identical at any `FD_THREADS`; both training paths call this
    /// same op for the regulariser, so their losses stay comparable
    /// bit-for-bit.
    pub fn square_norm(&self, a: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let x = &nodes[a.0 as usize].value;
            Matrix::filled(1, 1, fd_tensor::parallel::tree_sum_squares(x.as_slice()))
        };
        self.push(value, Op::SquareNorm(a))
    }

    /// Copies row `row` of `table` as a `1 x n` value (embedding lookup);
    /// the gradient scatters back into that row only.
    ///
    /// # Panics
    /// Panics when `row` is out of range.
    pub fn embed_row(&self, table: Var, row: usize) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[table.0 as usize].value.row_matrix(row)
        };
        self.push(value, Op::EmbedRow { table, row })
    }

    /// Batched row gather: row `i` of the result is row `rows[i]` of
    /// `src`, or a zero row for `None` (an absent neighbour/port). The
    /// gradient scatter-adds each output row back into its source row,
    /// with repeats accumulating — the matrix form of [`Tape::embed_row`].
    ///
    /// # Panics
    /// Panics when an index is out of range.
    pub fn gather_rows(&self, src: Var, rows: &[Option<usize>]) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            fd_tensor::gather_rows(&nodes[src.0 as usize].value, rows)
        };
        self.push(value, Op::GatherRows { src, rows: Rc::new(rows.to_vec()) })
    }

    /// Batched neighbour mean: row `i` of the result averages the
    /// `lists[i]` rows of `src`; empty lists yield zero rows. Replays
    /// [`Tape::mean_n`]'s arithmetic bitwise per row (copy the first
    /// member, `+=` the rest in order, scale by `1/len`), and the
    /// backward distributes `g_i / len` to every listed row — the
    /// diffusion aggregator over graph adjacency in one op.
    ///
    /// # Panics
    /// Panics when a listed index is out of range.
    pub fn mean_rows(&self, src: Var, lists: Rc<Vec<Vec<usize>>>) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            // Borrow the slice out of the Rc so the closure is Sync and
            // the kernel may fan rows across threads.
            let l: &[Vec<usize>] = &lists;
            fd_tensor::mean_rows(&nodes[src.0 as usize].value, l.len(), |i| l[i].as_slice())
        };
        self.push(value, Op::MeanRows { src, lists })
    }

    /// Vertical stack `[a; b]`; the gradient splits back by row count.
    ///
    /// # Panics
    /// Panics when the column counts differ.
    pub fn concat_rows(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].value.concat_rows(&nodes[b.0 as usize].value)
        };
        self.push(value, Op::ConcatRows(a, b))
    }

    /// Per-row selection between two same-shaped values: row `i` of the
    /// result is `a`'s row where `take_a[i]`, else `b`'s (exact copies).
    /// Gradients route row-by-row to whichever parent supplied the row —
    /// how the batched GRU freezes finished sequences.
    ///
    /// # Panics
    /// Panics on shape mismatch or a wrong mask length.
    pub fn mask_rows(&self, a: Var, b: Var, take_a: &[bool]) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let (av, bv) = (&nodes[a.0 as usize].value, &nodes[b.0 as usize].value);
            assert_eq!(av.shape(), bv.shape(), "mask_rows: shape mismatch");
            assert_eq!(take_a.len(), av.rows(), "mask_rows: mask length mismatch");
            let mut out = bv.clone();
            for (i, &take) in take_a.iter().enumerate() {
                if take {
                    out.row_mut(i).copy_from_slice(av.row(i));
                }
            }
            out
        };
        self.push(value, Op::MaskRows { a, b, take_a: Rc::new(take_a.to_vec()) })
    }

    /// Per-row pooled-sum accumulation: row `i` of the result is the
    /// `sum` row ([`RowAccum::Skip`]), a copy of the `h` row
    /// ([`RowAccum::Start`]), or `sum + h` ([`RowAccum::Add`]). This is
    /// the batched form of the per-node GRU pooling `sum = sum + h`,
    /// including its "first step copies `h`" initialisation.
    ///
    /// # Panics
    /// Panics on shape mismatch or a wrong phase length.
    pub fn accum_rows(&self, sum: Var, h: Var, phase: &[RowAccum]) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let (sv, hv) = (&nodes[sum.0 as usize].value, &nodes[h.0 as usize].value);
            assert_eq!(sv.shape(), hv.shape(), "accum_rows: shape mismatch");
            assert_eq!(phase.len(), sv.rows(), "accum_rows: phase length mismatch");
            let mut out = sv.clone();
            for (i, &ph) in phase.iter().enumerate() {
                match ph {
                    RowAccum::Skip => {}
                    RowAccum::Start => out.row_mut(i).copy_from_slice(hv.row(i)),
                    RowAccum::Add => {
                        for (acc, &v) in out.row_mut(i).iter_mut().zip(hv.row(i)) {
                            *acc += v;
                        }
                    }
                }
            }
            out
        };
        self.push(value, Op::AccumRows { sum, h, phase: Rc::new(phase.to_vec()) })
    }

    /// Batched cross-entropy: the scalar sum over rows of
    /// `-log softmax(logits_i)[targets[i]]`, accumulated in row order
    /// (bit-comparable to summing per-row [`Tape::softmax_cross_entropy`]
    /// terms left to right). The cached row-wise soft-max makes the
    /// backward one subtraction per row.
    ///
    /// # Panics
    /// Panics on empty logits, a wrong target length, or an
    /// out-of-range class.
    pub fn softmax_cross_entropy_rows(&self, logits: Var, targets: &[usize]) -> Var {
        let (probs, loss) = {
            let nodes = self.nodes.borrow();
            let l = &nodes[logits.0 as usize].value;
            assert!(l.rows() > 0, "softmax_cross_entropy_rows: empty logits");
            assert_eq!(
                targets.len(),
                l.rows(),
                "softmax_cross_entropy_rows: target count mismatch"
            );
            let mut probs = l.clone();
            let mut loss = 0.0f32;
            for (i, &target) in targets.iter().enumerate() {
                assert!(
                    target < l.cols(),
                    "softmax_cross_entropy_rows: target {target} out of {} classes",
                    l.cols()
                );
                softmax_in_place(probs.row_mut(i));
                // Clamp avoids -inf loss when a class has underflowed to
                // 0; the running sum starts *at* the first term so even
                // sign-of-zero matches the per-node `sum_n`.
                let term = -probs.row(i)[target].max(1e-12).ln();
                if i == 0 {
                    loss = term;
                } else {
                    loss += term;
                }
            }
            (probs, loss)
        };
        self.push(
            Matrix::filled(1, 1, loss),
            Op::SoftmaxCrossEntropyRows { logits, targets: Rc::new(targets.to_vec()), probs },
        )
    }
}

// The sigmoid definition is shared with the tape-free batched inference
// path so both produce identical bits.
pub(crate) use fd_tensor::stable_sigmoid;

/// Applies the adjoint rule of `op` for node `i`, whose output gradient is
/// `g`, accumulating into its parents.
pub(crate) fn propagate(nodes: &mut [Node], i: usize, g: &Matrix, op: &Op) {
    match op {
        Op::Leaf => {}
        Op::MatMul(a, b) => {
            // d/dA (A·B) = G·Bᵀ ; d/dB = Aᵀ·G
            let da = g.matmul_transpose(&nodes[b.0 as usize].value);
            let db = nodes[a.0 as usize].value.transpose_matmul(g);
            accumulate(nodes, *a, &da);
            accumulate(nodes, *b, &db);
        }
        Op::Add(a, b) => {
            accumulate(nodes, *a, g);
            accumulate(nodes, *b, g);
        }
        Op::AddRowBroadcast(a, bias) => {
            accumulate(nodes, *a, g);
            let db = g.col_sums();
            accumulate(nodes, *bias, &db);
        }
        Op::Sub(a, b) => {
            accumulate(nodes, *a, g);
            let db = g.scale(-1.0);
            accumulate(nodes, *b, &db);
        }
        Op::Mul(a, b) => {
            let da = g.mul(&nodes[b.0 as usize].value);
            let db = g.mul(&nodes[a.0 as usize].value);
            accumulate(nodes, *a, &da);
            accumulate(nodes, *b, &db);
        }
        Op::Scale(a, alpha) => {
            let da = g.scale(*alpha);
            accumulate(nodes, *a, &da);
        }
        Op::OneMinus(a) => {
            let da = g.scale(-1.0);
            accumulate(nodes, *a, &da);
        }
        Op::Sigmoid(a) => {
            // y' = y(1-y), in terms of the stored output.
            let y = &nodes[i].value;
            let da = g.zip_map(y, |gv, yv| gv * yv * (1.0 - yv));
            accumulate(nodes, *a, &da);
        }
        Op::Tanh(a) => {
            let y = &nodes[i].value;
            let da = g.zip_map(y, |gv, yv| gv * (1.0 - yv * yv));
            accumulate(nodes, *a, &da);
        }
        Op::Relu(a) => {
            let x = &nodes[a.0 as usize].value;
            let da = g.zip_map(x, |gv, xv| if xv > 0.0 { gv } else { 0.0 });
            accumulate(nodes, *a, &da);
        }
        Op::ConcatCols(a, b) => {
            let a_cols = nodes[a.0 as usize].value.cols();
            let b_cols = nodes[b.0 as usize].value.cols();
            let da = g.slice_cols(0, a_cols);
            let db = g.slice_cols(a_cols, b_cols);
            accumulate(nodes, *a, &da);
            accumulate(nodes, *b, &db);
        }
        Op::MeanN(vars) => {
            let share = g.scale(1.0 / vars.len() as f32);
            for v in vars {
                accumulate(nodes, *v, &share);
            }
        }
        Op::SumN(vars) => {
            for v in vars {
                accumulate(nodes, *v, g);
            }
        }
        Op::SoftmaxCrossEntropy { logits, target, probs } => {
            // dL/dlogits = softmax(logits) - onehot(target), scaled by the
            // incoming scalar gradient.
            let scale = g[(0, 0)];
            let mut dl = probs.clone();
            dl[(0, *target)] -= 1.0;
            let dl = dl.scale(scale);
            accumulate(nodes, *logits, &dl);
        }
        Op::SquareNorm(a) => {
            let scale = 2.0 * g[(0, 0)];
            let da = nodes[a.0 as usize].value.scale(scale);
            accumulate(nodes, *a, &da);
        }
        Op::EmbedRow { table, row } => {
            debug_assert!(g.is_row_vector());
            let cols = nodes[table.0 as usize].value.cols();
            let rows = nodes[table.0 as usize].value.rows();
            let slot = &mut nodes[table.0 as usize].grad;
            if slot.is_none() {
                *slot = Some(Matrix::zeros(rows, cols));
            }
            let gt = slot.as_mut().expect("just initialised");
            for (acc, &v) in gt.row_mut(*row).iter_mut().zip(g.row(0)) {
                *acc += v;
            }
        }
        Op::GatherRows { src, rows } => {
            // Scatter-add each output-row gradient into its source row;
            // `None` rows took a constant zero and contribute nothing.
            let (r, c) = nodes[src.0 as usize].value.shape();
            let slot = &mut nodes[src.0 as usize].grad;
            if slot.is_none() {
                *slot = Some(Matrix::zeros(r, c));
            }
            fd_tensor::scatter_add_rows(slot.as_mut().expect("just initialised"), rows, g);
        }
        Op::MeanRows { src, lists } => {
            // d mean/d member = 1/len, so row i hands g_i/len to every
            // listed source row (the scatter form of MeanN's backward).
            let (r, c) = nodes[src.0 as usize].value.shape();
            let slot = &mut nodes[src.0 as usize].grad;
            if slot.is_none() {
                *slot = Some(Matrix::zeros(r, c));
            }
            let l: &[Vec<usize>] = lists;
            fd_tensor::scatter_add_mean_rows(
                slot.as_mut().expect("just initialised"),
                g,
                |i| l[i].as_slice(),
            );
        }
        Op::ConcatRows(a, b) => {
            let a_rows = nodes[a.0 as usize].value.rows();
            let b_rows = nodes[b.0 as usize].value.rows();
            let da = g.slice_rows(0, a_rows);
            let db = g.slice_rows(a_rows, b_rows);
            accumulate(nodes, *a, &da);
            accumulate(nodes, *b, &db);
        }
        Op::MaskRows { a, b, take_a } => {
            // Each gradient row flows to whichever parent supplied the
            // value row; the other parent sees zero there.
            let mut da = Matrix::zeros(g.rows(), g.cols());
            let mut db = Matrix::zeros(g.rows(), g.cols());
            for (i, &take) in take_a.iter().enumerate() {
                let dst = if take { &mut da } else { &mut db };
                dst.row_mut(i).copy_from_slice(g.row(i));
            }
            accumulate(nodes, *a, &da);
            accumulate(nodes, *b, &db);
        }
        Op::AccumRows { sum, h, phase } => {
            // Skip: out = sum        → dsum += g
            // Start: out = h         → dh += g
            // Add:  out = sum + h    → both += g
            let mut dsum = Matrix::zeros(g.rows(), g.cols());
            let mut dh = Matrix::zeros(g.rows(), g.cols());
            for (i, &ph) in phase.iter().enumerate() {
                if ph != RowAccum::Start {
                    dsum.row_mut(i).copy_from_slice(g.row(i));
                }
                if ph != RowAccum::Skip {
                    dh.row_mut(i).copy_from_slice(g.row(i));
                }
            }
            accumulate(nodes, *sum, &dsum);
            accumulate(nodes, *h, &dh);
        }
        Op::SoftmaxCrossEntropyRows { logits, targets, probs } => {
            // Per row: dL/dlogits_i = softmax(logits_i) - onehot(t_i),
            // scaled by the incoming scalar gradient — the batched form
            // of the per-node rule.
            let scale = g[(0, 0)];
            let mut dl = probs.clone();
            for (i, &target) in targets.iter().enumerate() {
                dl.row_mut(i)[target] -= 1.0;
            }
            let dl = dl.scale(scale);
            accumulate(nodes, *logits, &dl);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Tape;
    use fd_tensor::{assert_close, Matrix};

    #[test]
    fn stable_sigmoid_extremes() {
        assert!(super::stable_sigmoid(100.0) > 0.999_999);
        assert!(super::stable_sigmoid(-100.0) < 1e-6);
        assert!((super::stable_sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn matmul_gradients_match_known_formula() {
        // loss = sum((x·W)²) for 1x2 · 2x2; verified against hand algebra.
        let t = Tape::new();
        let x = t.leaf(Matrix::row_vector(&[1.0, -2.0]));
        let w = t.leaf(Matrix::from_rows(&[&[0.5, 1.0], &[2.0, -1.0]]));
        let y = t.matmul(x, w); // [-3.5, 3.0]
        let loss = t.square_norm(y);
        t.backward(loss);
        assert_close(&t.value(y), &Matrix::row_vector(&[-3.5, 3.0]), 1e-6);
        // dL/dy = 2y; dL/dx = 2y·Wᵀ; dL/dW = xᵀ·2y
        let dx = t.grad(x).unwrap();
        assert_close(&dx, &Matrix::row_vector(&[-7.0 * 0.5 + 6.0 * 1.0, -7.0 * 2.0 - 6.0]), 1e-5);
        let dw = t.grad(w).unwrap();
        assert_close(
            &dw,
            &Matrix::from_rows(&[&[-7.0, 6.0], &[14.0, -12.0]]),
            1e-5,
        );
    }

    #[test]
    fn add_and_sub_route_gradients() {
        let t = Tape::new();
        let a = t.leaf(Matrix::row_vector(&[1.0]));
        let b = t.leaf(Matrix::row_vector(&[2.0]));
        let s = t.sub(a, b); // -1
        let sum = t.add(s, a); // 0
        let loss = t.square_norm(sum); // (2a - b)² = 0
        t.backward(loss);
        // d/da (2a-b)² = 2(2a-b)*2 = 0 at a=1,b=2; but gradients still flow.
        assert_eq!(t.grad(a).unwrap().shape(), (1, 1));
        assert_eq!(t.grad(b).unwrap().shape(), (1, 1));
    }

    #[test]
    fn softmax_cross_entropy_gradient_is_probs_minus_onehot() {
        let t = Tape::new();
        let logits = t.leaf(Matrix::row_vector(&[1.0, 2.0, 0.5]));
        let loss = t.softmax_cross_entropy(logits, 1);
        t.backward(loss);
        let g = t.grad(logits).unwrap();
        let p = fd_tensor::softmax_rows(&t.value(logits));
        let mut expected = p;
        expected[(0, 1)] -= 1.0;
        assert_close(&g, &expected, 1e-6);
        // Loss value is -log p₁.
        let p1 = fd_tensor::softmax_rows(&t.value(logits))[(0, 1)];
        assert!((t.value(loss)[(0, 0)] + p1.ln()).abs() < 1e-6);
    }

    #[test]
    fn mean_n_splits_gradient_evenly() {
        let t = Tape::new();
        let a = t.leaf(Matrix::row_vector(&[1.0, 0.0]));
        let b = t.leaf(Matrix::row_vector(&[3.0, 0.0]));
        let c = t.leaf(Matrix::row_vector(&[5.0, 0.0]));
        let m = t.mean_n(&[a, b, c]);
        assert_close(&t.value(m), &Matrix::row_vector(&[3.0, 0.0]), 1e-6);
        let loss = t.square_norm(m);
        t.backward(loss);
        // dL/da = 2·m/3 = [2, 0]
        assert_close(&t.grad(a).unwrap(), &Matrix::row_vector(&[2.0, 0.0]), 1e-5);
        assert_close(&t.grad(b).unwrap(), &t.grad(c).unwrap(), 1e-6);
    }

    #[test]
    fn concat_splits_gradient_by_width() {
        let t = Tape::new();
        let a = t.leaf(Matrix::row_vector(&[1.0]));
        let b = t.leaf(Matrix::row_vector(&[2.0, 3.0]));
        let cat = t.concat_cols(a, b);
        assert_eq!(t.shape(cat), (1, 3));
        let loss = t.square_norm(cat);
        t.backward(loss);
        assert_close(&t.grad(a).unwrap(), &Matrix::row_vector(&[2.0]), 1e-6);
        assert_close(&t.grad(b).unwrap(), &Matrix::row_vector(&[4.0, 6.0]), 1e-6);
    }

    #[test]
    fn embed_row_scatters_into_single_row() {
        let t = Tape::new();
        let table = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let e = t.embed_row(table, 1);
        assert_close(&t.value(e), &Matrix::row_vector(&[3.0, 4.0]), 1e-6);
        let loss = t.square_norm(e);
        t.backward(loss);
        let g = t.grad(table).unwrap();
        assert_close(
            &g,
            &Matrix::from_rows(&[&[0.0, 0.0], &[6.0, 8.0], &[0.0, 0.0]]),
            1e-6,
        );
    }

    #[test]
    fn embed_row_accumulates_on_repeated_lookup() {
        let t = Tape::new();
        let table = t.leaf(Matrix::from_rows(&[&[1.0], &[2.0]]));
        let e1 = t.embed_row(table, 0);
        let e2 = t.embed_row(table, 0);
        let s = t.add(e1, e2);
        let loss = t.square_norm(s);
        t.backward(loss);
        // loss = (2x)², dL/dx = 8x = 8.
        assert_close(&t.grad(table).unwrap(), &Matrix::from_rows(&[&[8.0], &[0.0]]), 1e-5);
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // loss = (x + x)² must see dL/dx = 8x.
        let t = Tape::new();
        let x = t.leaf(Matrix::row_vector(&[3.0]));
        let s = t.add(x, x);
        let loss = t.square_norm(s);
        t.backward(loss);
        assert_close(&t.grad(x).unwrap(), &Matrix::row_vector(&[24.0]), 1e-5);
    }

    #[test]
    fn activations_forward_values() {
        let t = Tape::new();
        let x = t.leaf(Matrix::row_vector(&[-1.0, 0.0, 2.0]));
        assert_close(
            &t.value(t.relu(x)),
            &Matrix::row_vector(&[0.0, 0.0, 2.0]),
            1e-6,
        );
        let s = t.value(t.sigmoid(x));
        assert!((s[(0, 1)] - 0.5).abs() < 1e-6);
        let th = t.value(t.tanh(x));
        assert!((th[(0, 2)] - 2.0f32.tanh()).abs() < 1e-6);
        let om = t.value(t.one_minus(x));
        assert_close(&om, &Matrix::row_vector(&[2.0, 1.0, -1.0]), 1e-6);
    }

    #[test]
    fn gather_rows_forward_and_scatter_backward() {
        let t = Tape::new();
        let src = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        // Row 1 twice, one absent row: grads must accumulate on row 1
        // and the absent row must stay a constant zero.
        let g = t.gather_rows(src, &[Some(1), None, Some(1)]);
        assert_close(
            &t.value(g),
            &Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0], &[3.0, 4.0]]),
            1e-6,
        );
        let loss = t.square_norm(g);
        t.backward(loss);
        // d/dsrc row1 = 2·(3,4) + 2·(3,4) = (12, 16).
        assert_close(
            &t.grad(src).unwrap(),
            &Matrix::from_rows(&[&[0.0, 0.0], &[12.0, 16.0]]),
            1e-5,
        );
    }

    #[test]
    fn gather_rows_matches_embed_row_per_node() {
        let t = Tape::new();
        let table = t.leaf(Matrix::from_rows(&[&[1.5, -2.0], &[0.25, 4.0]]));
        let batched = t.gather_rows(table, &[Some(1), Some(0)]);
        for (i, row) in [1usize, 0].into_iter().enumerate() {
            let single = t.embed_row(table, row);
            assert_eq!(t.value(single).row(0), t.with_value(batched, |m| m.row(i).to_vec()));
        }
    }

    #[test]
    fn mean_rows_matches_mean_n_bitwise_and_handles_empties() {
        let t = Tape::new();
        let src = t.leaf(Matrix::from_rows(&[&[0.1, 0.7], &[-0.3, 0.2], &[0.9, -0.5]]));
        let lists = std::rc::Rc::new(vec![vec![0usize, 2, 1], vec![], vec![2]]);
        let m = t.mean_rows(src, lists);
        // Per-node reference: mean_n over embed_row views of the same rows.
        let rows: Vec<_> = (0..3).map(|r| t.embed_row(src, r)).collect();
        let m0 = t.mean_n(&[rows[0], rows[2], rows[1]]);
        let m2 = t.mean_n(&[rows[2]]);
        t.with_value(m, |batched| {
            t.with_value(m0, |r0| assert_eq!(r0.row(0), batched.row(0)));
            assert!(batched.row(1).iter().all(|&v| v == 0.0), "empty list must be zero");
            t.with_value(m2, |r2| assert_eq!(r2.row(0), batched.row(2)));
        });
    }

    #[test]
    fn mean_rows_backward_distributes_share() {
        let t = Tape::new();
        let src = t.leaf(Matrix::from_rows(&[&[2.0], &[4.0]]));
        let lists = std::rc::Rc::new(vec![vec![0usize, 1]]);
        let m = t.mean_rows(src, lists); // [3.0]
        let loss = t.square_norm(m); // 9
        t.backward(loss);
        // dL/dm = 6; each member gets 6/2 = 3.
        assert_close(&t.grad(src).unwrap(), &Matrix::from_rows(&[&[3.0], &[3.0]]), 1e-5);
    }

    #[test]
    fn concat_rows_splits_gradient_by_rows() {
        let t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = t.leaf(Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let cat = t.concat_rows(a, b);
        assert_eq!(t.shape(cat), (3, 2));
        let loss = t.square_norm(cat);
        t.backward(loss);
        assert_close(&t.grad(a).unwrap(), &Matrix::from_rows(&[&[2.0, 4.0]]), 1e-6);
        assert_close(
            &t.grad(b).unwrap(),
            &Matrix::from_rows(&[&[6.0, 8.0], &[10.0, 12.0]]),
            1e-6,
        );
    }

    #[test]
    fn mask_rows_routes_gradients_to_the_chosen_parent() {
        let t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0], &[2.0]]));
        let b = t.leaf(Matrix::from_rows(&[&[3.0], &[4.0]]));
        let m = t.mask_rows(a, b, &[true, false]);
        assert_close(&t.value(m), &Matrix::from_rows(&[&[1.0], &[4.0]]), 1e-6);
        let loss = t.square_norm(m);
        t.backward(loss);
        assert_close(&t.grad(a).unwrap(), &Matrix::from_rows(&[&[2.0], &[0.0]]), 1e-6);
        assert_close(&t.grad(b).unwrap(), &Matrix::from_rows(&[&[0.0], &[8.0]]), 1e-6);
    }

    #[test]
    fn accum_rows_phases_forward_and_backward() {
        use crate::RowAccum::{Add, Skip, Start};
        let t = Tape::new();
        let sum = t.leaf(Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let h = t.leaf(Matrix::from_rows(&[&[10.0], &[20.0], &[30.0]]));
        let out = t.accum_rows(sum, h, &[Skip, Start, Add]);
        assert_close(&t.value(out), &Matrix::from_rows(&[&[1.0], &[20.0], &[33.0]]), 1e-6);
        let loss = t.square_norm(out);
        t.backward(loss);
        // dL/dout = 2·out = (2, 40, 66).
        assert_close(
            &t.grad(sum).unwrap(),
            &Matrix::from_rows(&[&[2.0], &[0.0], &[66.0]]),
            1e-4,
        );
        assert_close(
            &t.grad(h).unwrap(),
            &Matrix::from_rows(&[&[0.0], &[40.0], &[66.0]]),
            1e-4,
        );
    }

    #[test]
    fn softmax_cross_entropy_rows_matches_per_row_sum_bitwise() {
        let t = Tape::new();
        let logits =
            t.leaf(Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[-1.0, 0.0, 3.0], &[0.2, 0.1, -0.4]]));
        let targets = [1usize, 2, 0];
        let batched = t.softmax_cross_entropy_rows(logits, &targets);
        // Per-node reference: one CE per row, summed left to right.
        let per_row: Vec<_> = targets
            .iter()
            .enumerate()
            .map(|(i, &target)| {
                let row = t.embed_row(logits, i);
                t.softmax_cross_entropy(row, target)
            })
            .collect();
        let reference = t.sum_n(&per_row);
        assert_eq!(
            t.value(batched)[(0, 0)].to_bits(),
            t.value(reference)[(0, 0)].to_bits(),
            "batched CE must be bit-comparable to the per-row sum"
        );
    }

    #[test]
    fn softmax_cross_entropy_rows_gradient_is_probs_minus_onehot_per_row() {
        let t = Tape::new();
        let logits = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[0.5, -0.5]]));
        let targets = [0usize, 1];
        let loss = t.softmax_cross_entropy_rows(logits, &targets);
        t.backward(loss);
        let g = t.grad(logits).unwrap();
        let mut expected = fd_tensor::softmax_rows(&t.value(logits));
        expected[(0, 0)] -= 1.0;
        expected[(1, 1)] -= 1.0;
        assert_close(&g, &expected, 1e-6);
    }

    #[test]
    fn batched_ops_pass_grad_check() {
        use crate::grad_check;
        // A small graph exercising gather → mean → mask/accum → concat →
        // batched CE end to end against finite differences.
        let src = Matrix::from_rows(&[&[0.3, -0.2], &[0.8, 0.4], &[-0.5, 0.1]]);
        let other = Matrix::from_rows(&[&[0.2, 0.9], &[-0.1, 0.3], &[0.6, -0.7]]);
        let report = grad_check(
            &[src, other],
            |t, v| {
                use crate::RowAccum::{Add, Start};
                let (s, o) = (v[0], v[1]);
                let gathered = t.gather_rows(s, &[Some(2), None, Some(0)]);
                let lists = std::rc::Rc::new(vec![vec![0usize, 1], vec![2], vec![]]);
                let mixed = t.mean_rows(o, lists);
                let masked = t.mask_rows(gathered, mixed, &[true, false, true]);
                let pooled = t.accum_rows(masked, o, &[Add, Start, Add]);
                let stacked = t.concat_rows(pooled, mixed);
                let targets = [0usize, 1, 0, 1, 0, 1];
                t.softmax_cross_entropy_rows(stacked, &targets)
            },
            1e-2,
        );
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn tape_reset_clears_nodes_and_allows_reuse() {
        let t = Tape::new();
        let x = t.leaf(Matrix::row_vector(&[2.0]));
        let loss = t.square_norm(x);
        t.backward(loss);
        assert_eq!(t.len(), 2);
        t.reset();
        assert!(t.is_empty());
        // Recording after a reset works and gradients start clean.
        let y = t.leaf(Matrix::row_vector(&[3.0]));
        let loss2 = t.square_norm(y);
        t.backward(loss2);
        assert_close(&t.grad(y).unwrap(), &Matrix::row_vector(&[6.0]), 1e-6);
    }

    #[test]
    fn scale_and_broadcast_backward() {
        let t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.leaf(Matrix::row_vector(&[0.5, -0.5]));
        let y = t.add_row_broadcast(x, b);
        let z = t.scale(y, 3.0);
        let loss = t.square_norm(z);
        t.backward(loss);
        // Bias gradient is the column sum of the upstream gradient.
        let gb = t.grad(b).unwrap();
        assert_eq!(gb.shape(), (1, 2));
        let gx = t.grad(x).unwrap();
        assert_eq!(gx.shape(), (2, 2));
        // dL/dz = 2z, dL/dy = 6z = 18(y), dL/db = colsum.
        let y_val = t.value(y);
        let expected_gb_0 = 18.0 * (y_val[(0, 0)] + y_val[(1, 0)]);
        assert!((gb[(0, 0)] - expected_gb_0).abs() < 1e-4);
    }
}

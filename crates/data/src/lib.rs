//! Data layer of the FakeDetector reproduction: the credibility label
//! algebra, the News-HSN corpus container, the **synthetic PolitiFact
//! generator**, cross-validation splits and the Fig-1 dataset analyses.
//!
//! # The substitution
//!
//! The paper evaluates on a crawl of PolitiFact (14,055 articles by 3,634
//! creators over 152 subjects with 48,756 article–subject links). That
//! crawl is not redistributable, so [`generate`] manufactures a corpus
//! that reproduces every statistic the paper reports about it:
//!
//! * Table 1 node and link counts (at scale 1.0);
//! * the power-law creator–article distribution of Fig 1(a), with the
//!   most prolific creator around 599 articles;
//! * label-conditioned vocabularies — true-leaning and false-leaning
//!   articles draw from distinct signature word pools (Fig 1(b)/(c));
//! * per-subject true/false skews (Fig 1(d): "health" leans false,
//!   "economy" leans true, …);
//! * archetype creators with the label mixtures of Fig 1(e)/(f).
//!
//! Crucially, labels are generated from latent *creator reliability* ×
//! *subject bias* before any text is emitted, so the graph carries real
//! signal (label propagation, DeepWalk and LINE have something to learn)
//! and the text carries real signal (SVM and the RNN have something to
//! learn) — the two channels whose fusion the paper's model exists to
//! exploit.
//!
//! ```
//! use fd_data::{generate, GeneratorConfig};
//!
//! let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), 42);
//! assert!(corpus.articles.len() > 100);
//! assert_eq!(corpus.graph.n_articles(), corpus.articles.len());
//! ```

mod analysis;
mod corpus;
mod experiment;
mod features;
mod generator;
mod labels;
mod lexicon;
mod split;

pub use analysis::{creator_tally, subject_tallies, word_frequencies, SubjectTally};
pub use corpus::{Article, Corpus, Creator, Subject};
pub use experiment::{CredibilityModel, ExperimentContext, Predictions};
pub use features::{ExplicitFeatures, FeatureWeighting, TokenizedCorpus};
pub use generator::{
    generate, generate_at_scale, generate_shards, generate_tiled, GeneratorConfig,
};
pub use labels::{Credibility, LabelMode};
pub use lexicon::{COMMON_WORDS, FALSE_SIGNATURE_WORDS, SUBJECT_TOPICS, TRUE_SIGNATURE_WORDS};
pub use split::{sample_ratio, CvSplits, TrainSets};

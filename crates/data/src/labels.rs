//! The six-level Truth-O-Meter credibility label and its score algebra.
//!
//! Section 5.1.1 of the paper maps the categorical labels to numeric
//! scores — True: 6, Mostly True: 5, Half True: 4, Mostly False: 3,
//! False: 2, Pants on Fire!: 1 — derives creator/subject ground truth as
//! weighted article scores rounded back to labels, and groups
//! {True, Mostly True, Half True} as the positive class for the bi-class
//! experiments.

use serde::{Deserialize, Serialize};

/// A PolitiFact Truth-O-Meter rating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Credibility {
    /// Completely accurate (score 6).
    True,
    /// Accurate with minor caveats (score 5).
    MostlyTrue,
    /// Partially accurate (score 4).
    HalfTrue,
    /// Contains significant falsehood (score 3).
    MostlyFalse,
    /// Inaccurate (score 2).
    False,
    /// Totally false claim (score 1).
    PantsOnFire,
}

impl Credibility {
    /// All labels, highest credibility first (class-index order).
    pub const ALL: [Credibility; 6] = [
        Credibility::True,
        Credibility::MostlyTrue,
        Credibility::HalfTrue,
        Credibility::MostlyFalse,
        Credibility::False,
        Credibility::PantsOnFire,
    ];

    /// The paper's numeric score: True = 6 down to Pants on Fire! = 1.
    pub fn score(self) -> u8 {
        match self {
            Credibility::True => 6,
            Credibility::MostlyTrue => 5,
            Credibility::HalfTrue => 4,
            Credibility::MostlyFalse => 3,
            Credibility::False => 2,
            Credibility::PantsOnFire => 1,
        }
    }

    /// Inverse of [`Credibility::score`] with rounding and clamping —
    /// how creator/subject ground truth is derived from weighted article
    /// scores.
    pub fn from_score_rounded(score: f64) -> Self {
        let s = score.round().clamp(1.0, 6.0) as u8;
        match s {
            6 => Credibility::True,
            5 => Credibility::MostlyTrue,
            4 => Credibility::HalfTrue,
            3 => Credibility::MostlyFalse,
            2 => Credibility::False,
            _ => Credibility::PantsOnFire,
        }
    }

    /// True when the label belongs to the positive bi-class group
    /// {True, Mostly True, Half True}.
    pub fn is_true_group(self) -> bool {
        self.score() >= 4
    }

    /// Dense class index in [`Credibility::ALL`] order (True = 0).
    pub fn class_index(self) -> usize {
        match self {
            Credibility::True => 0,
            Credibility::MostlyTrue => 1,
            Credibility::HalfTrue => 2,
            Credibility::MostlyFalse => 3,
            Credibility::False => 4,
            Credibility::PantsOnFire => 5,
        }
    }

    /// Inverse of [`Credibility::class_index`].
    ///
    /// # Panics
    /// Panics when `index >= 6`.
    pub fn from_class_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// Display name as PolitiFact prints it.
    pub fn name(self) -> &'static str {
        match self {
            Credibility::True => "True",
            Credibility::MostlyTrue => "Mostly True",
            Credibility::HalfTrue => "Half True",
            Credibility::MostlyFalse => "Mostly False",
            Credibility::False => "False",
            Credibility::PantsOnFire => "Pants on Fire!",
        }
    }
}

impl std::fmt::Display for Credibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether an experiment runs over the grouped binary labels (Fig 4) or
/// the original six classes (Fig 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LabelMode {
    /// {True, Mostly True, Half True} vs the rest.
    Binary,
    /// The six Truth-O-Meter classes.
    MultiClass,
}

impl LabelMode {
    /// Number of target classes.
    pub fn n_classes(self) -> usize {
        match self {
            LabelMode::Binary => 2,
            LabelMode::MultiClass => 6,
        }
    }

    /// The classification target index of `label` under this mode.
    /// Binary convention: positive (true group) = 1, negative = 0.
    pub fn target(self, label: Credibility) -> usize {
        match self {
            LabelMode::Binary => usize::from(label.is_true_group()),
            LabelMode::MultiClass => label.class_index(),
        }
    }

    /// For binary mode, the index regarded as the positive class.
    pub fn positive_class(self) -> usize {
        match self {
            LabelMode::Binary => 1,
            LabelMode::MultiClass => {
                panic!("positive_class is only defined for LabelMode::Binary")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_span_one_to_six() {
        let scores: Vec<u8> = Credibility::ALL.iter().map(|l| l.score()).collect();
        assert_eq!(scores, vec![6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn score_roundtrip() {
        for l in Credibility::ALL {
            assert_eq!(Credibility::from_score_rounded(l.score() as f64), l);
        }
    }

    #[test]
    fn from_score_rounds_and_clamps() {
        assert_eq!(Credibility::from_score_rounded(5.6), Credibility::True);
        assert_eq!(Credibility::from_score_rounded(4.4), Credibility::HalfTrue);
        assert_eq!(Credibility::from_score_rounded(0.0), Credibility::PantsOnFire);
        assert_eq!(Credibility::from_score_rounded(99.0), Credibility::True);
        assert_eq!(Credibility::from_score_rounded(-3.0), Credibility::PantsOnFire);
    }

    #[test]
    fn true_group_matches_paper_split() {
        assert!(Credibility::True.is_true_group());
        assert!(Credibility::MostlyTrue.is_true_group());
        assert!(Credibility::HalfTrue.is_true_group());
        assert!(!Credibility::MostlyFalse.is_true_group());
        assert!(!Credibility::False.is_true_group());
        assert!(!Credibility::PantsOnFire.is_true_group());
    }

    #[test]
    fn class_index_roundtrip() {
        for (i, l) in Credibility::ALL.into_iter().enumerate() {
            assert_eq!(l.class_index(), i);
            assert_eq!(Credibility::from_class_index(i), l);
        }
    }

    #[test]
    fn label_mode_targets() {
        assert_eq!(LabelMode::Binary.n_classes(), 2);
        assert_eq!(LabelMode::MultiClass.n_classes(), 6);
        assert_eq!(LabelMode::Binary.target(Credibility::True), 1);
        assert_eq!(LabelMode::Binary.target(Credibility::PantsOnFire), 0);
        assert_eq!(LabelMode::MultiClass.target(Credibility::False), 4);
        assert_eq!(LabelMode::Binary.positive_class(), 1);
    }

    #[test]
    #[should_panic(expected = "only defined for LabelMode::Binary")]
    fn positive_class_panics_in_multiclass() {
        let _ = LabelMode::MultiClass.positive_class();
    }

    #[test]
    fn display_names() {
        assert_eq!(Credibility::PantsOnFire.to_string(), "Pants on Fire!");
        assert_eq!(Credibility::MostlyTrue.to_string(), "Mostly True");
    }
}

//! The corpus container: entities plus their News-HSN.

use crate::Credibility;
use fd_graph::HetGraph;
use serde::{Deserialize, Serialize};

/// A news article (Definition 2.1): textual content + credibility label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Article {
    /// The statement text.
    pub text: String,
    /// Ground-truth Truth-O-Meter rating.
    pub label: Credibility,
}

/// A news creator (Definition 2.3): profile text + credibility label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Creator {
    /// Display name.
    pub name: String,
    /// Profile/background text (title, party, location …).
    pub profile: String,
    /// Ground-truth label derived from the creator's article scores.
    pub label: Credibility,
}

/// A news subject (Definition 2.2): description text + credibility label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Subject {
    /// Topic name ("health", "economy", …).
    pub name: String,
    /// Topic description text.
    pub description: String,
    /// Ground-truth label derived from the subject's article scores.
    pub label: Credibility,
}

/// A full News-HSN dataset: entity payloads plus graph structure.
///
/// Invariant: `graph.n_articles() == articles.len()` (and likewise for
/// creators and subjects); entity index == graph node index within the
/// type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// Articles, indexed as in the graph.
    pub articles: Vec<Article>,
    /// Creators, indexed as in the graph.
    pub creators: Vec<Creator>,
    /// Subjects, indexed as in the graph.
    pub subjects: Vec<Subject>,
    /// The heterogeneous network over the three entity sets.
    pub graph: HetGraph,
}

impl Corpus {
    /// Checks the index alignment invariant; call after deserialising
    /// external data.
    pub fn validate(&self) -> Result<(), String> {
        if self.graph.n_articles() != self.articles.len() {
            return Err(format!(
                "graph has {} articles, corpus has {}",
                self.graph.n_articles(),
                self.articles.len()
            ));
        }
        if self.graph.n_creators() != self.creators.len() {
            return Err(format!(
                "graph has {} creators, corpus has {}",
                self.graph.n_creators(),
                self.creators.len()
            ));
        }
        if self.graph.n_subjects() != self.subjects.len() {
            return Err(format!(
                "graph has {} subjects, corpus has {}",
                self.graph.n_subjects(),
                self.subjects.len()
            ));
        }
        for a in 0..self.articles.len() {
            if self.graph.author_of(a).is_none() {
                return Err(format!("article {a} has no creator"));
            }
        }
        Ok(())
    }

    /// The average credibility score of a creator's articles — the
    /// paper's weighted-sum ground-truth derivation (Section 5.1.1).
    /// Returns `None` for creators with no articles.
    pub fn creator_mean_score(&self, creator: usize) -> Option<f64> {
        let articles = self.graph.articles_of_creator(creator);
        if articles.is_empty() {
            return None;
        }
        let sum: f64 = articles
            .iter()
            .map(|&a| self.articles[a].label.score() as f64)
            .sum();
        Some(sum / articles.len() as f64)
    }

    /// The average credibility score of a subject's articles; `None` for
    /// empty subjects.
    pub fn subject_mean_score(&self, subject: usize) -> Option<f64> {
        let articles = self.graph.articles_of_subject(subject);
        if articles.is_empty() {
            return None;
        }
        let sum: f64 = articles
            .iter()
            .map(|&a| self.articles[a].label.score() as f64)
            .sum();
        Some(sum / articles.len() as f64)
    }

    /// Re-derives every creator and subject label from the current
    /// article labels (used by the generator after article assignment;
    /// entities with no articles keep their existing label).
    pub fn derive_entity_labels(&mut self) {
        for u in 0..self.creators.len() {
            if let Some(score) = self.creator_mean_score(u) {
                self.creators[u].label = Credibility::from_score_rounded(score);
            }
        }
        for s in 0..self.subjects.len() {
            if let Some(score) = self.subject_mean_score(s) {
                self.subjects[s].label = Credibility::from_score_rounded(score);
            }
        }
    }

    /// Serialises to JSON (articles, creators, subjects, graph).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Corpus serialisation cannot fail")
    }

    /// Restores from [`Corpus::to_json`] output and re-validates.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let corpus: Corpus = serde_json::from_str(json).map_err(|e| e.to_string())?;
        corpus.validate()?;
        Ok(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Corpus {
        let mut graph = HetGraph::new(3, 2, 1);
        graph.set_author(0, 0);
        graph.set_author(1, 0);
        graph.set_author(2, 1);
        graph.add_subject_link(0, 0);
        graph.add_subject_link(1, 0);
        graph.add_subject_link(2, 0);
        Corpus {
            articles: vec![
                Article { text: "tax economy".into(), label: Credibility::True },
                Article { text: "budget report".into(), label: Credibility::HalfTrue },
                Article { text: "hoax gun".into(), label: Credibility::PantsOnFire },
            ],
            creators: vec![
                Creator { name: "c0".into(), profile: "analyst".into(), label: Credibility::HalfTrue },
                Creator { name: "c1".into(), profile: "blogger".into(), label: Credibility::HalfTrue },
            ],
            subjects: vec![Subject {
                name: "economy".into(),
                description: "jobs taxes".into(),
                label: Credibility::HalfTrue,
            }],
            graph,
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_catches_misaligned_counts() {
        let mut c = tiny();
        c.articles.pop();
        let err = c.validate().unwrap_err();
        assert!(err.contains("articles"), "{err}");
    }

    #[test]
    fn validate_catches_orphan_article() {
        let mut graph = HetGraph::new(1, 1, 0);
        // no author set
        let c = Corpus {
            articles: vec![Article { text: String::new(), label: Credibility::True }],
            creators: vec![Creator {
                name: "x".into(),
                profile: String::new(),
                label: Credibility::True,
            }],
            subjects: vec![],
            graph: std::mem::replace(&mut graph, HetGraph::new(0, 0, 0)),
        };
        assert!(c.validate().unwrap_err().contains("no creator"));
    }

    #[test]
    fn mean_scores_follow_paper_weighting() {
        let c = tiny();
        // Creator 0: articles scored 6 and 4 -> 5.0.
        assert_eq!(c.creator_mean_score(0), Some(5.0));
        // Creator 1: one article scored 1.
        assert_eq!(c.creator_mean_score(1), Some(1.0));
        // Subject 0: scores 6, 4, 1 -> 11/3.
        let s = c.subject_mean_score(0).unwrap();
        assert!((s - 11.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn derive_entity_labels_rounds_scores() {
        let mut c = tiny();
        c.derive_entity_labels();
        assert_eq!(c.creators[0].label, Credibility::MostlyTrue); // 5.0
        assert_eq!(c.creators[1].label, Credibility::PantsOnFire); // 1.0
        assert_eq!(c.subjects[0].label, Credibility::HalfTrue); // 3.67 -> 4
    }

    #[test]
    fn empty_creator_keeps_label() {
        let mut graph = HetGraph::new(1, 2, 0);
        graph.set_author(0, 0);
        let mut c = Corpus {
            articles: vec![Article { text: String::new(), label: Credibility::True }],
            creators: vec![
                Creator { name: "a".into(), profile: String::new(), label: Credibility::HalfTrue },
                Creator { name: "b".into(), profile: String::new(), label: Credibility::False },
            ],
            subjects: vec![],
            graph,
        };
        c.derive_entity_labels();
        assert_eq!(c.creators[0].label, Credibility::True);
        assert_eq!(c.creators[1].label, Credibility::False, "no articles: unchanged");
    }

    #[test]
    fn json_roundtrip() {
        let c = tiny();
        let back = Corpus::from_json(&c.to_json()).unwrap();
        assert_eq!(back.articles.len(), 3);
        assert_eq!(back.articles[2].label, Credibility::PantsOnFire);
        assert_eq!(back.graph.articles_of_creator(0), c.graph.articles_of_creator(0));
    }
}

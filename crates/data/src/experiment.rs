//! The shared experiment interface: the context handed to every model,
//! the prediction container, and the [`CredibilityModel`] trait that the
//! five baselines (`fd-baselines`) and FakeDetector itself (`fd-core`)
//! implement.

use crate::{Corpus, ExplicitFeatures, LabelMode, TokenizedCorpus, TrainSets};
use fd_graph::NodeType;

/// Everything a model may look at during one experimental run: the corpus
/// (texts + graph), precomputed tokenisation/features, the training
/// indices and the label mode.
///
/// Ground-truth labels of **non-training** entities must only be touched
/// by the runner when scoring; models access supervision exclusively via
/// [`ExperimentContext::train_items`] / [`ExperimentContext::target`] on
/// training indices.
pub struct ExperimentContext<'a> {
    /// The corpus under study.
    pub corpus: &'a Corpus,
    /// Tokenised texts, vocabulary and id sequences.
    pub tokenized: &'a TokenizedCorpus,
    /// χ² word sets + explicit BoW features (train-extracted).
    pub explicit: &'a ExplicitFeatures,
    /// Training indices per entity type.
    pub train: &'a TrainSets,
    /// Binary (Fig 4) or six-class (Fig 5) targets.
    pub mode: LabelMode,
    /// Seed for any model-internal randomness.
    pub seed: u64,
}

impl ExperimentContext<'_> {
    /// The classification target of an entity under the current mode.
    pub fn target(&self, ty: NodeType, idx: usize) -> usize {
        let label = match ty {
            NodeType::Article => self.corpus.articles[idx].label,
            NodeType::Creator => self.corpus.creators[idx].label,
            NodeType::Subject => self.corpus.subjects[idx].label,
        };
        self.mode.target(label)
    }

    /// Number of target classes under the current mode.
    pub fn n_classes(&self) -> usize {
        self.mode.n_classes()
    }

    /// Number of entities of a type.
    pub fn count(&self, ty: NodeType) -> usize {
        match ty {
            NodeType::Article => self.corpus.articles.len(),
            NodeType::Creator => self.corpus.creators.len(),
            NodeType::Subject => self.corpus.subjects.len(),
        }
    }

    /// All `(type, index, target)` training triples, in type order.
    pub fn train_items(&self) -> Vec<(NodeType, usize, usize)> {
        let mut items = Vec::with_capacity(self.train.len());
        for ty in NodeType::ALL {
            for &idx in self.train.for_type(ty) {
                items.push((ty, idx, self.target(ty, idx)));
            }
        }
        items
    }
}

/// Predicted class indices (under the run's label mode) for every entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predictions {
    /// Per-article predictions.
    pub articles: Vec<usize>,
    /// Per-creator predictions.
    pub creators: Vec<usize>,
    /// Per-subject predictions.
    pub subjects: Vec<usize>,
}

impl Predictions {
    /// Allocates all-zero predictions sized for the context's corpus.
    pub fn zeroed(ctx: &ExperimentContext<'_>) -> Self {
        Self {
            articles: vec![0; ctx.count(NodeType::Article)],
            creators: vec![0; ctx.count(NodeType::Creator)],
            subjects: vec![0; ctx.count(NodeType::Subject)],
        }
    }

    /// The prediction slice for one type.
    pub fn for_type(&self, ty: NodeType) -> &[usize] {
        match ty {
            NodeType::Article => &self.articles,
            NodeType::Creator => &self.creators,
            NodeType::Subject => &self.subjects,
        }
    }

    /// Mutable prediction slice for one type.
    pub fn for_type_mut(&mut self, ty: NodeType) -> &mut Vec<usize> {
        match ty {
            NodeType::Article => &mut self.articles,
            NodeType::Creator => &mut self.creators,
            NodeType::Subject => &mut self.subjects,
        }
    }
}

/// A credibility-inference method: trains on the context's train sets and
/// predicts a class index (under the context's [`LabelMode`]) for every
/// article, creator and subject.
pub trait CredibilityModel {
    /// Display name used in result tables ("svm", "FakeDetector", ...).
    fn name(&self) -> &'static str;

    /// Trains and predicts in one deterministic pass.
    fn fit_predict(&self, ctx: &ExperimentContext<'_>) -> Predictions;
}

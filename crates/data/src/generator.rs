//! The synthetic PolitiFact corpus generator.
//!
//! See the crate docs for the substitution rationale. The generative
//! process, in order:
//!
//! 1. **Subjects** get a topic name, topic words and a latent *truth
//!    bias* β ∈ (0, 1) — the Fig 1(d) skews for the 20 named subjects,
//!    a mild random split for the synthesised rest. Subject popularity
//!    follows a Zipf-style law so the top-20 dominate, as in the paper.
//! 2. **Creators** get a latent *reliability* r ∈ (0, 1) from a bimodal
//!    mixture (the data has both habitual truth-tellers and habitual
//!    fabricators), a party / location / title profile whose wording
//!    correlates with r, and a Zipf article budget capped near 599
//!    (Fig 1(a)). The first four creators are the Fig 1(e)/(f) case-study
//!    archetypes with the paper's exact label mixtures.
//! 3. **Articles** get 1–8 subjects (exactly `target_subject_links`
//!    links in total), a label sampled from the creator-reliability ×
//!    subject-bias blend (archetypes: from their fixed mixture), and text
//!    whose signature-word distribution is tilted by the label
//!    (Fig 1(b)/(c)).
//! 4. Creator and subject ground-truth labels are **derived** from their
//!    articles' scores, exactly as Section 5.1.1 prescribes.

use crate::corpus::{Article, Corpus, Creator, Subject};
use crate::labels::Credibility;
use crate::lexicon::{
    COMMON_WORDS, FALSE_SIGNATURE_WORDS, LOCATIONS, PARTIES, RELIABLE_PROFILE_WORDS,
    SUBJECT_TOPICS, TRUE_SIGNATURE_WORDS, UNRELIABLE_PROFILE_WORDS,
};
use fd_graph::{AliasTable, HetGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The Fig 1(e)/(f) case-study creators: (name, party, 6-class label
/// mixture in [True … Pants-on-Fire] order, paper article count).
const ARCHETYPES: &[(&str, &str, [u32; 6], usize)] = &[
    ("rep-archetype-heavy-false", "republican", [23, 60, 77, 112, 167, 75], 514),
    ("rep-archetype-balanced", "republican", [4, 5, 14, 8, 13, 0], 44),
    ("dem-archetype-mostly-true", "democrat", [123, 165, 161, 70, 71, 9], 599),
    ("dem-archetype-lean-true", "democrat", [72, 76, 69, 41, 31, 7], 296),
];

/// Tunable knobs of the generator. [`GeneratorConfig::politifact`] is the
/// paper-scale instance; [`GeneratorConfig::scaled`] shrinks it
/// proportionally for fast experiments.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of news articles (paper: 14,055).
    pub n_articles: usize,
    /// Number of creators (paper: 3,634).
    pub n_creators: usize,
    /// Number of subjects (paper: 152).
    pub n_subjects: usize,
    /// Total article–subject links (paper: 48,756 ⇒ ~3.47 per article).
    pub target_subject_links: usize,
    /// Zipf exponent of the creator–article budget (Fig 1(a) slope).
    pub zipf_exponent: f64,
    /// Cap on one creator's budget (paper max: 599).
    pub max_articles_per_creator: usize,
    /// How strongly article wording reflects the label, in [0, 1].
    /// 0 = no textual signal, 1 = signature pools perfectly separated.
    pub text_signal: f64,
    /// Std-dev of the Gaussian noise on the latent label score; larger
    /// values weaken the graph signal.
    pub label_noise: f64,
    /// Article length range in words (inclusive).
    pub article_words: (usize, usize),
    /// Creator profile length range in words.
    pub profile_words: (usize, usize),
    /// Subject description length range in words.
    pub description_words: (usize, usize),
}

impl GeneratorConfig {
    /// The paper-scale configuration reproducing Table 1 exactly.
    pub fn politifact() -> Self {
        Self {
            n_articles: 14_055,
            n_creators: 3_634,
            n_subjects: 152,
            target_subject_links: 48_756,
            zipf_exponent: 1.25,
            max_articles_per_creator: 599,
            text_signal: 0.65,
            label_noise: 1.1,
            article_words: (10, 26),
            profile_words: (6, 14),
            description_words: (10, 20),
        }
    }

    /// Shrinks the corpus by `factor` while preserving every density
    /// (links per article, articles per creator, subjects ratio).
    ///
    /// # Panics
    /// Panics unless `0 < factor <= 1`.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "scaled: factor must be in (0, 1]");
        let links_per_article = self.target_subject_links as f64 / self.n_articles as f64;
        self.n_articles = ((self.n_articles as f64 * factor) as usize).max(120);
        self.n_creators = ((self.n_creators as f64 * factor) as usize).max(30);
        self.n_subjects = ((self.n_subjects as f64 * factor) as usize).max(24);
        self.target_subject_links = (self.n_articles as f64 * links_per_article) as usize;
        self.max_articles_per_creator =
            ((self.max_articles_per_creator as f64 * factor) as usize).max(12);
        self
    }
}

/// Generates a corpus from `config`, deterministically in `seed`.
pub fn generate(config: &GeneratorConfig, seed: u64) -> Corpus {
    assert!(config.n_articles >= ARCHETYPES.len() * 4, "corpus too small for archetypes");
    assert!(config.n_creators > ARCHETYPES.len());
    assert!(config.n_subjects >= 2);
    assert!(
        config.target_subject_links >= config.n_articles,
        "need at least one subject per article"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // ---- Subjects: names, biases, topic words, popularity ----
    let mut subject_names = Vec::with_capacity(config.n_subjects);
    let mut subject_bias = Vec::with_capacity(config.n_subjects);
    for i in 0..config.n_subjects {
        if let Some(&(name, bias)) = SUBJECT_TOPICS.get(i) {
            subject_names.push(name.to_string());
            subject_bias.push(bias);
        } else {
            subject_names.push(format!("topic{i:03}"));
            subject_bias.push(rng.gen_range(0.25..0.75));
        }
    }
    let topic_words: Vec<[String; 3]> = subject_names
        .iter()
        .map(|n| [n.clone(), format!("{n}policy"), format!("{n}reform")])
        .collect();
    // Zipf-ish popularity over subject ranks; the first 20 therefore
    // dominate the link mass like Fig 1(d).
    let popularity: Vec<f64> = (0..config.n_subjects)
        .map(|i| 1.0 / ((i + 1) as f64).powf(0.55))
        .collect();
    let subject_sampler = AliasTable::new(&popularity);

    // ---- Creators: reliability, profiles, article budgets ----
    let n_arch = ARCHETYPES.len();
    let mut reliability = Vec::with_capacity(config.n_creators);
    let mut parties = Vec::with_capacity(config.n_creators);
    for (i, _) in (0..config.n_creators).enumerate() {
        if i < n_arch {
            let mix = &ARCHETYPES[i].2;
            // Reliability consistent with the archetype's mixture: the
            // expected normalised score of its labels.
            let total: u32 = mix.iter().sum();
            let mean_score: f64 = mix
                .iter()
                .zip(Credibility::ALL)
                .map(|(&c, l)| c as f64 * l.score() as f64)
                .sum::<f64>()
                / total as f64;
            reliability.push(((mean_score - 1.0) / 5.0).clamp(0.05, 0.95));
            parties.push(ARCHETYPES[i].1.to_string());
        } else {
            // Bimodal: half the population leans truthful, half leans
            // fabricating; heavy overlap keeps the task non-trivial.
            let center = if rng.gen_bool(0.5) { 0.68 } else { 0.38 };
            let r: f64 = center + rng.gen_range(-0.18..0.18);
            reliability.push(r.clamp(0.05, 0.95));
            parties.push(PARTIES.choose(&mut rng).expect("PARTIES non-empty").to_string());
        }
    }

    let budgets = creator_budgets(config, &mut rng);
    debug_assert_eq!(budgets.iter().sum::<usize>(), config.n_articles);

    let creators: Vec<Creator> = (0..config.n_creators)
        .map(|i| {
            let name = if i < n_arch {
                ARCHETYPES[i].0.to_string()
            } else {
                format!("creator{i:05}")
            };
            let profile = creator_profile(
                &parties[i],
                reliability[i],
                config.profile_words,
                &mut rng,
            );
            Creator { name, profile, label: Credibility::HalfTrue }
        })
        .collect();

    // ---- Graph skeleton: authorship and subject links ----
    let mut graph = HetGraph::new(config.n_articles, config.n_creators, config.n_subjects);
    // Article -> creator assignment straight from the budgets.
    let mut article_creator = Vec::with_capacity(config.n_articles);
    for (creator, &budget) in budgets.iter().enumerate() {
        article_creator.extend(std::iter::repeat_n(creator, budget));
    }
    article_creator.shuffle(&mut rng);
    for (article, &creator) in article_creator.iter().enumerate() {
        graph.set_author(article, creator);
    }

    // Per-article subject counts: one guaranteed, the remaining mass
    // spread at random — total is exactly `target_subject_links`.
    let max_subjects_per_article = config.n_subjects.min(8);
    let mut subject_counts = vec![1usize; config.n_articles];
    let mut extras = config.target_subject_links - config.n_articles;
    while extras > 0 {
        let a = rng.gen_range(0..config.n_articles);
        if subject_counts[a] < max_subjects_per_article {
            subject_counts[a] += 1;
            extras -= 1;
        }
    }

    // Creators prefer a small set of subjects, concentrating their
    // articles topically (as real politicians do). Preference couples
    // popularity with reliability-bias affinity: fabricating creators
    // gravitate to false-leaning subjects, mirroring the real data where
    // e.g. "guns" and "terrorism" skew false (Fig 1(d)).
    let effective_bias: Vec<f64> = subject_bias
        .iter()
        .map(|&b| (0.5 + 1.9 * (b - 0.5)).clamp(0.08, 0.92))
        .collect();
    let preferred: Vec<[usize; 3]> = (0..config.n_creators)
        .map(|u| {
            let weights: Vec<f64> = popularity
                .iter()
                .zip(&effective_bias)
                .map(|(&pop, &bias)| pop * (-3.0 * (reliability[u] - bias).abs()).exp())
                .collect();
            let sampler = AliasTable::new(&weights);
            [
                sampler.sample(&mut rng),
                sampler.sample(&mut rng),
                sampler.sample(&mut rng),
            ]
        })
        .collect();

    for article in 0..config.n_articles {
        let creator = article_creator[article];
        let want = subject_counts[article];
        let mut chosen: Vec<usize> = Vec::with_capacity(want);
        let mut guard = 0;
        while chosen.len() < want && guard < 200 {
            guard += 1;
            let s = if chosen.is_empty() || rng.gen_bool(0.5) {
                preferred[creator][rng.gen_range(0..3)]
            } else {
                subject_sampler.sample(&mut rng)
            };
            if !chosen.contains(&s) {
                chosen.push(s);
            }
        }
        // Pathological duplicates exhausted the guard: fill linearly.
        let mut next = 0;
        while chosen.len() < want {
            if !chosen.contains(&next) {
                chosen.push(next);
            }
            next += 1;
        }
        for s in chosen {
            graph.add_subject_link(article, s);
        }
    }

    // ---- Article labels and text ----
    let mut articles = Vec::with_capacity(config.n_articles);
    for (article, &creator) in article_creator.iter().enumerate() {
        let label = if creator < n_arch {
            sample_from_mixture(&ARCHETYPES[creator].2, &mut rng)
        } else {
            let subjects = graph.subjects_of_article(article);
            let mean_bias: f64 = subjects.iter().map(|&s| effective_bias[s]).sum::<f64>()
                / subjects.len() as f64;
            // Per-statement quality: even reliable creators slip and
            // fabricators sometimes tell the truth. This component is
            // what the *text* channel reflects most strongly, keeping
            // the graph channel informative but not sufficient.
            let statement_quality: f64 = rng.gen();
            let p_true = (0.42 * reliability[creator]
                + 0.30 * mean_bias
                + 0.28 * statement_quality)
                .clamp(0.02, 0.98);
            let score = 1.0 + 5.0 * p_true + rng.gen_range(-1.0..1.0) * config.label_noise;
            Credibility::from_score_rounded(score)
        };
        let text = article_text(
            label,
            graph.subjects_of_article(article),
            &topic_words,
            config,
            &mut rng,
        );
        articles.push(Article { text, label });
    }

    // ---- Subject descriptions ----
    let subjects: Vec<Subject> = (0..config.n_subjects)
        .map(|s| {
            let description = subject_description(
                s,
                subject_bias[s],
                &topic_words,
                config,
                &mut rng,
            );
            Subject {
                name: subject_names[s].clone(),
                description,
                label: Credibility::HalfTrue,
            }
        })
        .collect();

    let mut corpus = Corpus { articles, creators, subjects, graph };
    // Ground truth for creators/subjects: weighted article scores,
    // rounded — the paper's Section 5.1.1 derivation.
    corpus.derive_entity_labels();
    debug_assert!(corpus.validate().is_ok());

    fd_obs::gauge("data.articles").set(corpus.articles.len() as f64);
    fd_obs::gauge("data.creators").set(corpus.creators.len() as f64);
    fd_obs::gauge("data.subjects").set(corpus.subjects.len() as f64);
    fd_obs::gauge("data.authorship_links").set(corpus.graph.n_authorship_links() as f64);
    fd_obs::gauge("data.subject_links").set(corpus.graph.n_subject_links() as f64);
    fd_obs::event(
        fd_obs::Level::Info,
        "data.generate",
        &[
            ("articles", corpus.articles.len().into()),
            ("creators", corpus.creators.len().into()),
            ("subjects", corpus.subjects.len().into()),
            ("authorship_links", corpus.graph.n_authorship_links().into()),
            ("subject_links", corpus.graph.n_subject_links().into()),
            ("seed", seed.into()),
        ],
    );
    corpus
}

/// SplitMix64 finaliser — mixes the master seed with a shard index so
/// every shard of a tiled generation draws an independent, reproducible
/// RNG stream.
fn shard_seed(seed: u64, shard: usize) -> u64 {
    if shard == 0 {
        // Shard 0 keeps the master seed so `generate_tiled(cfg, seed, 1)`
        // is exactly `generate(cfg, seed)`.
        return seed;
    }
    let mut z = seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Streams `shards` independently generated shards — each an exact
/// `config`-statistics corpus (Table-1 node counts, degree
/// distributions and label ratios when `config` is
/// [`GeneratorConfig::politifact`]) under a deterministic per-shard
/// seed — to `sink`, one at a time.
///
/// This is the bounded-memory path to million-article corpora: at no
/// point does more than one shard's features exist in memory, so a sink
/// that serialises each shard to disk generates arbitrarily large
/// corpora in O(shard) space. [`generate_tiled`] is the convenience
/// wrapper that folds the stream into one merged [`Corpus`].
pub fn generate_shards(
    config: &GeneratorConfig,
    seed: u64,
    shards: usize,
    mut sink: impl FnMut(usize, Corpus),
) {
    assert!(shards >= 1, "generate_shards: need at least one shard");
    for shard in 0..shards {
        sink(shard, generate(config, shard_seed(seed, shard)));
    }
}

/// Tiles `shards` copies of `config`'s statistics into one corpus:
/// shard `k`'s article/creator/subject indices are offset by
/// `k * config.n_*`, so per-shard node counts, degree distributions and
/// label ratios are preserved exactly while the total scales linearly.
///
/// Shards are disjoint components (the paper's crawl is itself sparse
/// between topical communities); entity names get a `s{k}:` prefix when
/// `shards > 1` so they stay unique. `generate_tiled(cfg, seed, 1)`
/// equals `generate(cfg, seed)`.
pub fn generate_tiled(config: &GeneratorConfig, seed: u64, shards: usize) -> Corpus {
    assert!(shards >= 1, "generate_tiled: need at least one shard");
    if shards == 1 {
        return generate(config, seed);
    }
    let (na, nc, ns) = (config.n_articles, config.n_creators, config.n_subjects);
    let mut graph = HetGraph::new(na * shards, nc * shards, ns * shards);
    let mut articles = Vec::with_capacity(na * shards);
    let mut creators = Vec::with_capacity(nc * shards);
    let mut subjects = Vec::with_capacity(ns * shards);
    generate_shards(config, seed, shards, |shard, mut piece| {
        let (a_off, c_off, s_off) = (shard * na, shard * nc, shard * ns);
        for a in 0..na {
            let c = piece.graph.author_of(a).expect("generated article has an author");
            graph.set_author(a_off + a, c_off + c);
            for &s in piece.graph.subjects_of_article(a) {
                graph.add_subject_link(a_off + a, s_off + s);
            }
        }
        for c in &mut piece.creators {
            c.name = format!("s{shard}:{}", c.name);
        }
        for s in &mut piece.subjects {
            s.name = format!("s{shard}:{}", s.name);
        }
        articles.append(&mut piece.articles);
        creators.append(&mut piece.creators);
        subjects.append(&mut piece.subjects);
    });
    let corpus = Corpus { articles, creators, subjects, graph };
    debug_assert!(corpus.validate().is_ok());
    fd_obs::gauge("data.articles").set(corpus.articles.len() as f64);
    fd_obs::gauge("data.creators").set(corpus.creators.len() as f64);
    fd_obs::gauge("data.subjects").set(corpus.subjects.len() as f64);
    fd_obs::event(
        fd_obs::Level::Info,
        "data.generate_tiled",
        &[
            ("shards", shards.into()),
            ("articles", corpus.articles.len().into()),
            ("creators", corpus.creators.len().into()),
            ("subjects", corpus.subjects.len().into()),
            ("seed", seed.into()),
        ],
    );
    corpus
}

/// Unified scale knob: `scale <= 1` shrinks `base` proportionally
/// ([`GeneratorConfig::scaled`]); an integral `scale > 1` tiles that
/// many Table-1 shards ([`generate_tiled`]). This is the semantics
/// behind every `--scale` flag (`fdctl generate/train`, `report train`).
///
/// # Panics
/// Panics when `scale <= 0` or a `scale > 1` is not a whole number of
/// shards (fractional tiling would break the per-shard statistics
/// contract).
pub fn generate_at_scale(base: &GeneratorConfig, scale: f64, seed: u64) -> Corpus {
    assert!(scale > 0.0, "generate_at_scale: scale must be positive");
    if scale <= 1.0 {
        generate(&base.clone().scaled(scale), seed)
    } else {
        let shards = scale.round();
        assert!(
            (scale - shards).abs() < 1e-9,
            "generate_at_scale: scale > 1 must be a whole number of Table-1 shards, got {scale}"
        );
        generate_tiled(base, seed, shards as usize)
    }
}

/// Zipf article budgets: archetypes get their paper counts (scaled), the
/// rest share the remainder by a capped power law with a floor of 1.
fn creator_budgets(config: &GeneratorConfig, rng: &mut StdRng) -> Vec<usize> {
    let n_arch = ARCHETYPES.len();
    let scale = config.n_articles as f64 / 14_055.0;
    let mut budgets = vec![0usize; config.n_creators];
    let mut assigned = 0usize;
    for (i, &(_, _, _, paper_count)) in ARCHETYPES.iter().enumerate() {
        let b = ((paper_count as f64 * scale).round() as usize)
            .clamp(8, config.max_articles_per_creator);
        budgets[i] = b;
        assigned += b;
    }
    assert!(
        assigned < config.n_articles,
        "archetype budgets ({assigned}) exceed the corpus ({})",
        config.n_articles
    );

    let rest = config.n_creators - n_arch;
    let remaining = config.n_articles - assigned;
    assert!(remaining >= rest, "not enough articles for one per creator");

    // Power-law weights over a random rank permutation of the remaining
    // creators so prolific creators are spread across the index space.
    let mut ranks: Vec<usize> = (1..=rest).collect();
    ranks.shuffle(rng);
    let weights: Vec<f64> = ranks
        .iter()
        .map(|&r| (r as f64).powf(-config.zipf_exponent))
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    let spare = remaining - rest; // after the 1-article floor
    let mut leftover = spare;
    for (i, w) in weights.iter().enumerate() {
        let extra = ((w / weight_sum) * spare as f64).floor() as usize;
        let extra = extra.min(config.max_articles_per_creator - 1).min(leftover);
        budgets[n_arch + i] = 1 + extra;
        leftover -= extra;
    }
    // The cap and the flooring shed a lot of head mass; redistribute it
    // *proportionally to the power-law weights* over the still-uncapped
    // creators, so overflow thickens the head rather than lifting the
    // long tail off 1 article (which would dent the Fig 1(a) histogram).
    let mut by_weight: Vec<usize> = (0..rest).collect();
    by_weight.sort_by(|&a, &b| {
        weights[b].partial_cmp(&weights[a]).unwrap_or(std::cmp::Ordering::Equal)
    });
    while leftover > 0 {
        let uncapped: Vec<usize> = by_weight
            .iter()
            .copied()
            .filter(|&i| budgets[n_arch + i] < config.max_articles_per_creator)
            .collect();
        assert!(!uncapped.is_empty(), "creator_budgets: cap too tight to place all articles");
        let weight_sum: f64 = uncapped.iter().map(|&i| weights[i]).sum();
        let pool = leftover;
        let mut progressed = false;
        for &i in &uncapped {
            if leftover == 0 {
                break;
            }
            let share = ((weights[i] / weight_sum) * pool as f64).floor() as usize;
            let headroom = config.max_articles_per_creator - budgets[n_arch + i];
            let add = share.min(headroom).min(leftover);
            if add > 0 {
                budgets[n_arch + i] += add;
                leftover -= add;
                progressed = true;
            }
        }
        if !progressed {
            // Crumbs smaller than any proportional share: hand them to
            // the heaviest uncapped creators one by one.
            for &i in &uncapped {
                if leftover == 0 {
                    break;
                }
                budgets[n_arch + i] += 1;
                leftover -= 1;
            }
        }
    }
    budgets
}

/// Draws one label from a 6-class count mixture.
fn sample_from_mixture(mixture: &[u32; 6], rng: &mut StdRng) -> Credibility {
    let total: u32 = mixture.iter().sum();
    let mut roll = rng.gen_range(0..total);
    for (count, label) in mixture.iter().zip(Credibility::ALL) {
        if roll < *count {
            return label;
        }
        roll -= count;
    }
    unreachable!("mixture exhausted");
}

/// Emits article text whose signature-word mix is tilted by the label.
fn article_text(
    label: Credibility,
    subjects: &[usize],
    topic_words: &[[String; 3]],
    config: &GeneratorConfig,
    rng: &mut StdRng,
) -> String {
    let len = rng.gen_range(config.article_words.0..=config.article_words.1);
    // Graded truthfulness: True tilts hardest toward the true pool,
    // Pants-on-Fire hardest toward the false pool.
    let truth = (label.score() as f64 - 1.0) / 5.0;
    let p_true_pool = 0.5 + config.text_signal * (truth - 0.5);
    let mut words = Vec::with_capacity(len);
    for _ in 0..len {
        let roll: f64 = rng.gen();
        let word: &str = if roll < 0.40 {
            COMMON_WORDS.choose(rng).expect("non-empty")
        } else if roll < 0.65 && !subjects.is_empty() {
            let s = subjects[rng.gen_range(0..subjects.len())];
            &topic_words[s][rng.gen_range(0..3)]
        } else if rng.gen_bool(p_true_pool) {
            TRUE_SIGNATURE_WORDS.choose(rng).expect("non-empty")
        } else {
            FALSE_SIGNATURE_WORDS.choose(rng).expect("non-empty")
        };
        words.push(word);
    }
    words.join(" ")
}

/// Emits a creator profile correlated with reliability.
fn creator_profile(
    party: &str,
    reliability: f64,
    (lo, hi): (usize, usize),
    rng: &mut StdRng,
) -> String {
    let len = rng.gen_range(lo..=hi);
    let mut words: Vec<&str> = vec![party, LOCATIONS.choose(rng).expect("non-empty")];
    for _ in 0..len.saturating_sub(2) {
        let roll: f64 = rng.gen();
        let word: &str = if roll < 0.30 {
            COMMON_WORDS.choose(rng).expect("non-empty")
        } else if rng.gen_bool(reliability) {
            RELIABLE_PROFILE_WORDS.choose(rng).expect("non-empty")
        } else {
            UNRELIABLE_PROFILE_WORDS.choose(rng).expect("non-empty")
        };
        words.push(word);
    }
    words.join(" ")
}

/// Emits a subject description correlated with the subject's truth bias.
fn subject_description(
    subject: usize,
    bias: f64,
    topic_words: &[[String; 3]],
    config: &GeneratorConfig,
    rng: &mut StdRng,
) -> String {
    let (lo, hi) = config.description_words;
    let len = rng.gen_range(lo..=hi);
    let mut words: Vec<&str> = Vec::with_capacity(len);
    for _ in 0..len {
        let roll: f64 = rng.gen();
        let word: &str = if roll < 0.45 {
            &topic_words[subject][rng.gen_range(0..3)]
        } else if roll < 0.70 {
            COMMON_WORDS.choose(rng).expect("non-empty")
        } else if rng.gen_bool(bias) {
            TRUE_SIGNATURE_WORDS.choose(rng).expect("non-empty")
        } else {
            FALSE_SIGNATURE_WORDS.choose(rng).expect("non-empty")
        };
        words.push(word);
    }
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GeneratorConfig {
        GeneratorConfig::politifact().scaled(0.02)
    }

    #[test]
    fn politifact_scale_matches_table1() {
        let c = GeneratorConfig::politifact();
        assert_eq!(c.n_articles, 14_055);
        assert_eq!(c.n_creators, 3_634);
        assert_eq!(c.n_subjects, 152);
        assert_eq!(c.target_subject_links, 48_756);
    }

    #[test]
    fn generated_counts_match_config_exactly() {
        let cfg = small();
        let corpus = generate(&cfg, 7);
        assert_eq!(corpus.articles.len(), cfg.n_articles);
        assert_eq!(corpus.creators.len(), cfg.n_creators);
        assert_eq!(corpus.subjects.len(), cfg.n_subjects);
        assert_eq!(corpus.graph.n_authorship_links(), cfg.n_articles);
        assert_eq!(corpus.graph.n_subject_links(), cfg.target_subject_links);
        corpus.validate().unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small();
        let a = generate(&cfg, 123);
        let b = generate(&cfg, 123);
        assert_eq!(a.articles[17].text, b.articles[17].text);
        assert_eq!(a.creators[5].profile, b.creators[5].profile);
        assert_eq!(
            a.graph.subjects_of_article(40),
            b.graph.subjects_of_article(40)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small();
        let a = generate(&cfg, 1);
        let b = generate(&cfg, 2);
        assert_ne!(a.articles[0].text, b.articles[0].text);
    }

    #[test]
    fn creator_budget_is_power_law_like() {
        let cfg = GeneratorConfig::politifact().scaled(0.1);
        let corpus = generate(&cfg, 99);
        let counts: Vec<usize> = (0..corpus.creators.len())
            .map(|u| corpus.graph.articles_of_creator(u).len())
            .collect();
        let max = *counts.iter().max().unwrap();
        let ones = counts.iter().filter(|&&c| c <= 2).count();
        // Heavy head, long tail.
        assert!(max > 20, "max budget {max} too flat");
        assert!(
            ones > corpus.creators.len() / 2,
            "tail too thin: {ones}/{} creators with <= 2 articles",
            corpus.creators.len()
        );
        assert!(max <= cfg.max_articles_per_creator);
    }

    #[test]
    fn archetype_mixtures_shape_their_labels() {
        let cfg = GeneratorConfig::politifact().scaled(0.1);
        let corpus = generate(&cfg, 5);
        // Archetype 0 leans false, archetype 2 leans true.
        let lean = |u: usize| {
            let arts = corpus.graph.articles_of_creator(u);
            let true_count = arts
                .iter()
                .filter(|&&a| corpus.articles[a].label.is_true_group())
                .count();
            true_count as f64 / arts.len() as f64
        };
        assert!(lean(0) < 0.5, "heavy-false archetype leaned true: {}", lean(0));
        assert!(lean(2) > 0.6, "mostly-true archetype leaned false: {}", lean(2));
        assert_eq!(corpus.creators[0].name, "rep-archetype-heavy-false");
    }

    #[test]
    fn text_carries_label_signal() {
        // True articles must use true-pool words measurably more often.
        let cfg = small();
        let corpus = generate(&cfg, 11);
        let count_pool = |text: &str, pool: &[&str]| -> usize {
            text.split(' ').filter(|w| pool.contains(w)).count()
        };
        let (mut true_hits, mut true_words, mut false_hits, mut false_words) = (0, 0, 0, 0);
        for a in &corpus.articles {
            let n = a.text.split(' ').count();
            if a.label == Credibility::True {
                true_hits += count_pool(&a.text, TRUE_SIGNATURE_WORDS);
                true_words += n;
            } else if a.label == Credibility::PantsOnFire {
                false_hits += count_pool(&a.text, TRUE_SIGNATURE_WORDS);
                false_words += n;
            }
        }
        let true_rate = true_hits as f64 / true_words.max(1) as f64;
        let false_rate = false_hits as f64 / false_words.max(1) as f64;
        assert!(
            true_rate > false_rate * 1.5,
            "true-pool rate {true_rate:.4} vs {false_rate:.4} — no textual signal"
        );
    }

    #[test]
    fn graph_carries_label_signal() {
        // Articles by the same creator agree more often than random pairs.
        let cfg = small();
        let corpus = generate(&cfg, 13);
        let mut same_creator_agree = 0usize;
        let mut same_creator_total = 0usize;
        for u in 0..corpus.creators.len() {
            let arts = corpus.graph.articles_of_creator(u);
            for i in 0..arts.len() {
                for j in (i + 1)..arts.len().min(i + 6) {
                    same_creator_total += 1;
                    if corpus.articles[arts[i]].label.is_true_group()
                        == corpus.articles[arts[j]].label.is_true_group()
                    {
                        same_creator_agree += 1;
                    }
                }
            }
        }
        let agree_rate = same_creator_agree as f64 / same_creator_total.max(1) as f64;
        // Random pairs would agree ≈ p² + (1-p)² ≈ 0.52 at the corpus'
        // label balance; same-creator pairs must sit measurably above it
        // (weaker than before the per-statement-quality component was
        // added, but still clearly present).
        assert!(
            agree_rate > 0.545,
            "same-creator agreement {agree_rate:.3} — graph carries no signal"
        );
    }

    #[test]
    fn subject_biases_visible_in_labels() {
        let cfg = GeneratorConfig::politifact().scaled(0.08);
        let corpus = generate(&cfg, 21);
        // "economy" (bias 0.632) must lean truer than "health" (0.465).
        let lean = |name: &str| {
            let s = corpus.subjects.iter().position(|x| x.name == name).unwrap();
            let arts = corpus.graph.articles_of_subject(s);
            let t = arts
                .iter()
                .filter(|&&a| corpus.articles[a].label.is_true_group())
                .count();
            t as f64 / arts.len().max(1) as f64
        };
        assert!(
            lean("economy") > lean("health"),
            "economy {:.3} <= health {:.3}",
            lean("economy"),
            lean("health")
        );
    }

    #[test]
    fn scaled_preserves_density() {
        let full = GeneratorConfig::politifact();
        let small = full.clone().scaled(0.05);
        let full_density = full.target_subject_links as f64 / full.n_articles as f64;
        let small_density = small.target_subject_links as f64 / small.n_articles as f64;
        assert!((full_density - small_density).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "factor must be in (0, 1]")]
    fn scaled_rejects_bad_factor() {
        let _ = GeneratorConfig::politifact().scaled(0.0);
    }

    #[test]
    fn tiled_generation_preserves_per_shard_statistics() {
        let cfg = small();
        let tiled = generate_tiled(&cfg, 77, 3);
        assert_eq!(tiled.articles.len(), 3 * cfg.n_articles);
        assert_eq!(tiled.creators.len(), 3 * cfg.n_creators);
        assert_eq!(tiled.subjects.len(), 3 * cfg.n_subjects);
        assert_eq!(tiled.graph.n_authorship_links(), 3 * cfg.n_articles);
        assert_eq!(tiled.graph.n_subject_links(), 3 * cfg.target_subject_links);
        tiled.validate().unwrap();
        // Each shard is bitwise the standalone generation of its seed:
        // shard 0 under the master seed itself.
        let shard0 = generate(&cfg, 77);
        for a in 0..cfg.n_articles {
            assert_eq!(tiled.articles[a].text, shard0.articles[a].text);
            assert_eq!(tiled.articles[a].label, shard0.articles[a].label);
            assert_eq!(
                tiled.graph.subjects_of_article(a),
                shard0.graph.subjects_of_article(a)
            );
        }
        // Shards are disjoint: shard 1's articles only touch shard 1's
        // creators/subjects.
        for a in cfg.n_articles..2 * cfg.n_articles {
            let c = tiled.graph.author_of(a).unwrap();
            assert!((cfg.n_creators..2 * cfg.n_creators).contains(&c));
            for &s in tiled.graph.subjects_of_article(a) {
                assert!((cfg.n_subjects..2 * cfg.n_subjects).contains(&s));
            }
        }
        // Per-shard label ratio preserved: shard 1 matches a standalone
        // generation under its derived seed.
        assert!(tiled.creators[cfg.n_creators].name.strip_prefix("s1:").is_some());
    }

    #[test]
    fn tiled_single_shard_equals_plain_generation() {
        let cfg = small();
        let tiled = generate_tiled(&cfg, 5, 1);
        let plain = generate(&cfg, 5);
        assert_eq!(tiled.articles.len(), plain.articles.len());
        assert_eq!(tiled.articles[10].text, plain.articles[10].text);
        assert_eq!(tiled.creators[3].name, plain.creators[3].name);
    }

    #[test]
    fn shard_streaming_is_bounded_and_deterministic() {
        let cfg = small();
        let mut sizes = Vec::new();
        let mut first_texts = Vec::new();
        generate_shards(&cfg, 9, 3, |shard, piece| {
            assert_eq!(piece.articles.len(), cfg.n_articles);
            sizes.push((shard, piece.articles.len()));
            first_texts.push(piece.articles[0].text.clone());
        });
        assert_eq!(sizes, vec![(0, cfg.n_articles), (1, cfg.n_articles), (2, cfg.n_articles)]);
        // Distinct shards draw distinct streams…
        assert_ne!(first_texts[0], first_texts[1]);
        // …and re-running reproduces them exactly.
        let mut again = Vec::new();
        generate_shards(&cfg, 9, 3, |_, piece| again.push(piece.articles[0].text.clone()));
        assert_eq!(first_texts, again);
    }

    #[test]
    fn generate_at_scale_dispatches_both_regimes() {
        let base = GeneratorConfig::politifact();
        let down = generate_at_scale(&base, 0.02, 4);
        assert_eq!(down.articles.len(), GeneratorConfig::politifact().scaled(0.02).n_articles);
        let up = generate_at_scale(&base.clone().scaled(0.02), 2.0, 4);
        assert_eq!(up.articles.len(), 2 * down.articles.len());
    }

    #[test]
    #[should_panic(expected = "whole number of Table-1 shards")]
    fn generate_at_scale_rejects_fractional_tiling() {
        let _ = generate_at_scale(&GeneratorConfig::politifact().scaled(0.02), 1.5, 0);
    }

    #[test]
    fn entity_labels_are_derived_not_default() {
        let corpus = generate(&small(), 3);
        // At least one creator away from the HalfTrue placeholder.
        assert!(corpus.creators.iter().any(|c| c.label != Credibility::HalfTrue));
        assert!(corpus.subjects.iter().any(|s| s.label != Credibility::HalfTrue));
        // Spot-check the derivation for creator 0.
        let score = corpus.creator_mean_score(0).unwrap();
        assert_eq!(corpus.creators[0].label, Credibility::from_score_rounded(score));
    }
}

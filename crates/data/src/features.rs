//! Shared feature preparation for every model in the workspace.
//!
//! * [`TokenizedCorpus`] — one-time tokenisation of all entity texts, a
//!   corpus-wide [`Vocab`] (unsupervised, so transductively legitimate)
//!   and fixed-length id sequences for the GRU encoders.
//! * [`TrainSets`] — the per-type training indices produced by the CV
//!   split + θ subsampling.
//! * [`ExplicitFeatures`] — the paper's `W_n`/`W_u`/`W_s` word sets,
//!   χ²-extracted **from the training entities only** (their labels are
//!   supervision), and the resulting bag-of-words vectors for every
//!   entity.

use crate::{Corpus, TrainSets};
use fd_graph::NodeType;
use fd_tensor::Matrix;
use fd_text::{bow_features, encode_sequence, TfIdf, Tokenizer, Vocab, WordSet};

/// Tokenised texts, vocabulary and padded id sequences for all entities.
#[derive(Debug, Clone)]
pub struct TokenizedCorpus {
    /// Tokens per entity, indexed `[article|creator|subject][idx]`.
    tokens: [Vec<Vec<String>>; 3],
    /// Corpus-wide vocabulary over all entity texts.
    pub vocab: Vocab,
    /// Padded/truncated id sequences (length `seq_len`) per entity.
    sequences: [Vec<Vec<usize>>; 3],
    /// The fixed sequence length `q`.
    pub seq_len: usize,
}

fn type_slot(ty: NodeType) -> usize {
    match ty {
        NodeType::Article => 0,
        NodeType::Creator => 1,
        NodeType::Subject => 2,
    }
}

impl TokenizedCorpus {
    /// Tokenises every entity text and builds the vocabulary.
    ///
    /// * `seq_len` — the paper's `q` (max article length before
    ///   truncation);
    /// * `max_vocab` — vocabulary cap (most frequent words kept).
    pub fn build(corpus: &Corpus, seq_len: usize, max_vocab: usize) -> Self {
        let tokenizer = Tokenizer::default();
        let tokens = [
            corpus.articles.iter().map(|a| tokenizer.tokenize(&a.text)).collect::<Vec<_>>(),
            corpus.creators.iter().map(|c| tokenizer.tokenize(&c.profile)).collect::<Vec<_>>(),
            corpus
                .subjects
                .iter()
                .map(|s| tokenizer.tokenize(&s.description))
                .collect::<Vec<_>>(),
        ];
        let vocab = Vocab::build(
            tokens.iter().flat_map(|t| t.iter().cloned()),
            2,
            max_vocab,
        );
        let sequences = [
            tokens[0].iter().map(|t| encode_sequence(t, &vocab, seq_len)).collect(),
            tokens[1].iter().map(|t| encode_sequence(t, &vocab, seq_len)).collect(),
            tokens[2].iter().map(|t| encode_sequence(t, &vocab, seq_len)).collect(),
        ];
        Self { tokens, vocab, sequences, seq_len }
    }

    /// The tokens of entity `idx` of type `ty`.
    pub fn tokens(&self, ty: NodeType, idx: usize) -> &[String] {
        &self.tokens[type_slot(ty)][idx]
    }

    /// The padded id sequence of entity `idx` of type `ty`.
    pub fn sequence(&self, ty: NodeType, idx: usize) -> &[usize] {
        &self.sequences[type_slot(ty)][idx]
    }

    /// Number of entities of `ty`.
    pub fn count(&self, ty: NodeType) -> usize {
        self.tokens[type_slot(ty)].len()
    }
}

/// How the explicit bag-of-words counts are weighted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatureWeighting {
    /// Raw appearance counts, as in the paper.
    #[default]
    Counts,
    /// Counts reweighted by train-fitted inverse document frequency — a
    /// documented extension (see DESIGN.md).
    TfIdf,
}

/// The χ²-extracted discriminative word sets and the explicit BoW
/// features they induce.
#[derive(Debug, Clone)]
pub struct ExplicitFeatures {
    /// `W_n`, `W_u`, `W_s` in type-slot order.
    pub word_sets: [WordSet; 3],
    /// `1 x d` count vectors per entity, type-slot indexed.
    features: [Vec<Matrix>; 3],
    /// Feature dimensionality `d` (shared across types).
    pub dim: usize,
    /// Per-type IDF models when TF-IDF weighting is active.
    idf: Option<[TfIdf; 3]>,
}

impl ExplicitFeatures {
    /// Extracts the word sets from the **training** entities of each type
    /// (binary grouping of their labels as the discrimination target, as
    /// in the paper's data analysis) and featurises every entity with the
    /// paper's raw-count weighting.
    pub fn extract(
        corpus: &Corpus,
        tokenized: &TokenizedCorpus,
        train: &TrainSets,
        dim: usize,
    ) -> Self {
        Self::extract_with(corpus, tokenized, train, dim, FeatureWeighting::Counts)
    }

    /// [`ExplicitFeatures::extract`] with an explicit weighting scheme.
    pub fn extract_with(
        corpus: &Corpus,
        tokenized: &TokenizedCorpus,
        train: &TrainSets,
        dim: usize,
        weighting: FeatureWeighting,
    ) -> Self {
        let train_docs = |ty: NodeType| -> Vec<Vec<String>> {
            train
                .for_type(ty)
                .iter()
                .map(|&i| tokenized.tokens(ty, i).to_vec())
                .collect()
        };
        let build_set = |ty: NodeType| -> WordSet {
            let docs = train_docs(ty);
            let labels: Vec<bool> = train
                .for_type(ty)
                .iter()
                .map(|&i| match ty {
                    NodeType::Article => corpus.articles[i].label.is_true_group(),
                    NodeType::Creator => corpus.creators[i].label.is_true_group(),
                    NodeType::Subject => corpus.subjects[i].label.is_true_group(),
                })
                .collect();
            WordSet::extract(&docs, &labels, dim)
        };
        let word_sets = [
            build_set(NodeType::Article),
            build_set(NodeType::Creator),
            build_set(NodeType::Subject),
        ];
        let idf = match weighting {
            FeatureWeighting::Counts => None,
            FeatureWeighting::TfIdf => Some([
                TfIdf::fit(&train_docs(NodeType::Article), &word_sets[0]),
                TfIdf::fit(&train_docs(NodeType::Creator), &word_sets[1]),
                TfIdf::fit(&train_docs(NodeType::Subject), &word_sets[2]),
            ]),
        };
        let raw = |ty: NodeType, tokens: &[String]| -> Matrix {
            match &idf {
                None => bow_features(tokens, &word_sets[type_slot(ty)]),
                Some(models) => {
                    models[type_slot(ty)].transform(tokens, &word_sets[type_slot(ty)])
                }
            }
        };
        let featurise = |ty: NodeType| -> Vec<Matrix> {
            (0..tokenized.count(ty))
                .map(|i| {
                    let mut f = raw(ty, tokenized.tokens(ty, i));
                    // Pad to `dim` when the training set yielded fewer
                    // discriminative words than requested, so downstream
                    // weight shapes stay fixed.
                    if f.cols() < dim {
                        f = f.concat_cols(&Matrix::zeros(1, dim - f.cols()));
                    }
                    normalise_l2(f)
                })
                .collect()
        };
        let features = [
            featurise(NodeType::Article),
            featurise(NodeType::Creator),
            featurise(NodeType::Subject),
        ];
        Self { word_sets, features, dim, idf }
    }

    /// The `1 x dim` explicit feature row of entity `idx` of type `ty`.
    pub fn feature(&self, ty: NodeType, idx: usize) -> &Matrix {
        &self.features[type_slot(ty)][idx]
    }

    /// Featurises an out-of-corpus token sequence with the word set (and
    /// weighting) of `ty`, applying the same padding and L2 normalisation
    /// as the precomputed features — used for inductive scoring of new
    /// texts.
    pub fn featurise_tokens(&self, ty: NodeType, tokens: &[String]) -> Matrix {
        let slot = type_slot(ty);
        let mut f = match &self.idf {
            None => bow_features(tokens, &self.word_sets[slot]),
            Some(models) => models[slot].transform(tokens, &self.word_sets[slot]),
        };
        if f.cols() < self.dim {
            f = f.concat_cols(&Matrix::zeros(1, self.dim - f.cols()));
        }
        normalise_l2(f)
    }
}

/// L2-normalises a row vector (count features otherwise scale with text
/// length, which the linear models are sensitive to). Zero rows pass
/// through unchanged.
fn normalise_l2(mut row: Matrix) -> Matrix {
    let norm = row.frobenius_norm();
    if norm > 0.0 {
        row.map_in_place(|v| v / norm);
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, CvSplits, GeneratorConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn setup() -> (Corpus, TokenizedCorpus, TrainSets) {
        let corpus = generate(&GeneratorConfig::politifact().scaled(0.02), 5);
        let tokenized = TokenizedCorpus::build(&corpus, 16, 4000);
        let mut rng = StdRng::seed_from_u64(1);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
        };
        (corpus, tokenized, train)
    }

    #[test]
    fn tokenized_counts_match_corpus() {
        let (corpus, tok, _) = setup();
        assert_eq!(tok.count(NodeType::Article), corpus.articles.len());
        assert_eq!(tok.count(NodeType::Creator), corpus.creators.len());
        assert_eq!(tok.count(NodeType::Subject), corpus.subjects.len());
    }

    #[test]
    fn sequences_have_fixed_length() {
        let (_, tok, _) = setup();
        for i in 0..tok.count(NodeType::Article) {
            assert_eq!(tok.sequence(NodeType::Article, i).len(), 16);
        }
        for i in 0..tok.count(NodeType::Creator) {
            assert_eq!(tok.sequence(NodeType::Creator, i).len(), 16);
        }
    }

    #[test]
    fn vocab_covers_article_words() {
        let (_, tok, _) = setup();
        // Common generator words must be in vocabulary.
        assert!(tok.vocab.id("people").is_some());
        assert!(tok.vocab.id_space() > 50);
    }

    #[test]
    fn explicit_features_have_requested_dim() {
        let (corpus, tok, train) = setup();
        let ef = ExplicitFeatures::extract(&corpus, &tok, &train, 60);
        for ty in [NodeType::Article, NodeType::Creator, NodeType::Subject] {
            for i in 0..tok.count(ty) {
                assert_eq!(ef.feature(ty, i).shape(), (1, 60));
            }
        }
    }

    #[test]
    fn explicit_features_are_normalised() {
        let (corpus, tok, train) = setup();
        let ef = ExplicitFeatures::extract(&corpus, &tok, &train, 60);
        for i in 0..tok.count(NodeType::Article) {
            let n = ef.feature(NodeType::Article, i).frobenius_norm();
            assert!(n == 0.0 || (n - 1.0).abs() < 1e-4, "norm {n}");
        }
    }

    #[test]
    fn word_sets_pick_up_signature_words() {
        let (corpus, tok, train) = setup();
        let ef = ExplicitFeatures::extract(&corpus, &tok, &train, 60);
        let wn = &ef.word_sets[0];
        // At least a few of the generator's signature words must appear
        // among the top-60 discriminative article words.
        let hits = crate::TRUE_SIGNATURE_WORDS
            .iter()
            .chain(crate::FALSE_SIGNATURE_WORDS)
            .filter(|w| wn.position(w).is_some())
            .count();
        assert!(hits >= 5, "only {hits} signature words in W_n");
    }

    #[test]
    fn tfidf_weighting_changes_features_but_keeps_shape() {
        let (corpus, tok, train) = setup();
        let counts = ExplicitFeatures::extract_with(
            &corpus, &tok, &train, 60, FeatureWeighting::Counts,
        );
        let tfidf = ExplicitFeatures::extract_with(
            &corpus, &tok, &train, 60, FeatureWeighting::TfIdf,
        );
        assert_eq!(counts.word_sets[0].words(), tfidf.word_sets[0].words());
        let mut differs = false;
        for i in 0..tok.count(NodeType::Article) {
            let a = counts.feature(NodeType::Article, i);
            let b = tfidf.feature(NodeType::Article, i);
            assert_eq!(a.shape(), b.shape());
            let nb = b.frobenius_norm();
            assert!(nb == 0.0 || (nb - 1.0).abs() < 1e-4);
            if a != b {
                differs = true;
            }
        }
        assert!(differs, "TF-IDF must reweight at least one feature vector");
    }

    #[test]
    fn featurise_tokens_matches_precomputed() {
        let (corpus, tok, train) = setup();
        for weighting in [FeatureWeighting::Counts, FeatureWeighting::TfIdf] {
            let ef = ExplicitFeatures::extract_with(&corpus, &tok, &train, 60, weighting);
            let tokens = tok.tokens(NodeType::Article, 5).to_vec();
            let fresh = ef.featurise_tokens(NodeType::Article, &tokens);
            assert_eq!(&fresh, ef.feature(NodeType::Article, 5));
        }
    }

    #[test]
    fn features_separate_label_groups() {
        // Mean true-group explicit vector must differ from the false
        // group's — otherwise the SVM baseline has nothing to learn.
        let (corpus, tok, train) = setup();
        let ef = ExplicitFeatures::extract(&corpus, &tok, &train, 60);
        let mut true_mean = Matrix::zeros(1, 60);
        let mut false_mean = Matrix::zeros(1, 60);
        let (mut nt, mut nf) = (0, 0);
        for (i, a) in corpus.articles.iter().enumerate() {
            if a.label.is_true_group() {
                true_mean.add_assign(ef.feature(NodeType::Article, i));
                nt += 1;
            } else {
                false_mean.add_assign(ef.feature(NodeType::Article, i));
                nf += 1;
            }
        }
        true_mean = true_mean.scale(1.0 / nt as f32);
        false_mean = false_mean.scale(1.0 / nf as f32);
        let gap = true_mean.sub(&false_mean).frobenius_norm();
        assert!(gap > 0.05, "explicit feature gap {gap} too small");
    }
}

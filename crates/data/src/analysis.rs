//! The Section-3 dataset analyses: word frequencies (Fig 1(b)/(c)),
//! subject tallies (Fig 1(d)) and creator case studies (Fig 1(e)/(f)).

use crate::Corpus;
use fd_text::Tokenizer;
use std::collections::HashMap;

/// True/false article counts for one subject (one bar pair of Fig 1(d)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubjectTally {
    /// Subject index in the corpus.
    pub subject: usize,
    /// Subject display name.
    pub name: String,
    /// Articles in the {True, Mostly True, Half True} group.
    pub true_count: usize,
    /// Articles in the {Mostly False, False, Pants on Fire!} group.
    pub false_count: usize,
}

impl SubjectTally {
    /// Total articles under the subject.
    pub fn total(&self) -> usize {
        self.true_count + self.false_count
    }

    /// Fraction of true-group articles (`NaN`-free: 0 for empty subjects).
    pub fn true_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.true_count as f64 / self.total() as f64
        }
    }
}

/// Top-`k` stop-word-filtered word frequencies over articles in the given
/// label group (`true_group = true` reproduces Fig 1(b), `false`
/// Fig 1(c)). Ties break alphabetically for determinism.
pub fn word_frequencies(corpus: &Corpus, true_group: bool, k: usize) -> Vec<(String, u64)> {
    let tokenizer = Tokenizer::default();
    let mut counts: HashMap<String, u64> = HashMap::new();
    for article in &corpus.articles {
        if article.label.is_true_group() != true_group {
            continue;
        }
        for token in tokenizer.tokenize(&article.text) {
            *counts.entry(token).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<(String, u64)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

/// Per-subject true/false tallies sorted by article count descending —
/// take the first 20 for Fig 1(d).
pub fn subject_tallies(corpus: &Corpus) -> Vec<SubjectTally> {
    let mut tallies: Vec<SubjectTally> = (0..corpus.subjects.len())
        .map(|s| {
            let mut t = SubjectTally {
                subject: s,
                name: corpus.subjects[s].name.clone(),
                true_count: 0,
                false_count: 0,
            };
            for &a in corpus.graph.articles_of_subject(s) {
                if corpus.articles[a].label.is_true_group() {
                    t.true_count += 1;
                } else {
                    t.false_count += 1;
                }
            }
            t
        })
        .collect();
    tallies.sort_by(|a, b| b.total().cmp(&a.total()).then_with(|| a.subject.cmp(&b.subject)));
    tallies
}

/// The 6-class label histogram of one creator's articles, in
/// [`Credibility::ALL`](crate::Credibility::ALL) order — one pie of Fig 1(e)/(f).
pub fn creator_tally(corpus: &Corpus, creator: usize) -> [usize; 6] {
    let mut histogram = [0usize; 6];
    for &a in corpus.graph.articles_of_creator(creator) {
        histogram[corpus.articles[a].label.class_index()] += 1;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};

    fn corpus() -> Corpus {
        // Seed 5 gives the archetype creators typical label draws; at
        // this 0.02 scale an unlucky seed (e.g. 17) can push the
        // ~12-article "mostly true" archetype to a 0.5 false share.
        generate(&GeneratorConfig::politifact().scaled(0.02), 5)
    }

    #[test]
    fn word_frequencies_split_by_group() {
        let c = corpus();
        let true_words = word_frequencies(&c, true, 30);
        let false_words = word_frequencies(&c, false, 30);
        assert!(!true_words.is_empty() && !false_words.is_empty());
        // Frequencies are sorted descending.
        for w in true_words.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The signature separation of Fig 1(b)/(c): at least one
        // true-pool word in the true top-30 that is absent from the
        // false top-30 and vice versa.
        let t_set: Vec<&str> = true_words.iter().map(|(w, _)| w.as_str()).collect();
        let f_set: Vec<&str> = false_words.iter().map(|(w, _)| w.as_str()).collect();
        assert!(t_set.iter().any(|w| !f_set.contains(w)));
        assert!(f_set.iter().any(|w| !t_set.contains(w)));
    }

    #[test]
    fn subject_tallies_sum_to_link_count() {
        let c = corpus();
        let tallies = subject_tallies(&c);
        let total: usize = tallies.iter().map(SubjectTally::total).sum();
        assert_eq!(total, c.graph.n_subject_links());
        // Sorted descending by volume.
        for w in tallies.windows(2) {
            assert!(w[0].total() >= w[1].total());
        }
    }

    #[test]
    fn creator_tally_counts_all_articles() {
        let c = corpus();
        for creator in 0..4 {
            let tally = creator_tally(&c, creator);
            let total: usize = tally.iter().sum();
            assert_eq!(total, c.graph.articles_of_creator(creator).len());
        }
    }

    #[test]
    fn archetype_tallies_echo_fig1ef() {
        let c = corpus();
        let heavy_false = creator_tally(&c, 0);
        let mostly_true = creator_tally(&c, 2);
        let false_share = |t: &[usize; 6]| {
            let total: usize = t.iter().sum();
            (t[3] + t[4] + t[5]) as f64 / total.max(1) as f64
        };
        assert!(false_share(&heavy_false) > 0.5);
        assert!(false_share(&mostly_true) < 0.4);
    }

    #[test]
    fn true_fraction_handles_empty_subject() {
        let t = SubjectTally { subject: 0, name: "x".into(), true_count: 0, false_count: 0 };
        assert_eq!(t.true_fraction(), 0.0);
    }
}

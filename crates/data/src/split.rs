//! 10-fold cross-validation splits with the paper's sampling-ratio knob.
//!
//! Section 5.1.1: each entity set is split 9:1 into train/test via
//! 10-fold CV; a sampling ratio θ ∈ {0.1, …, 1.0} then subsamples the 9
//! training folds to simulate scarce supervision.

use fd_graph::NodeType;
use rand::seq::SliceRandom;
use rand::Rng;

/// The per-type training indices for one experimental run (one CV fold at
/// one sampling ratio θ). Everything not listed is test data.
#[derive(Debug, Clone, Default)]
pub struct TrainSets {
    /// Training article indices.
    pub articles: Vec<usize>,
    /// Training creator indices.
    pub creators: Vec<usize>,
    /// Training subject indices.
    pub subjects: Vec<usize>,
}

impl TrainSets {
    /// The training indices for one node type.
    pub fn for_type(&self, ty: NodeType) -> &[usize] {
        match ty {
            NodeType::Article => &self.articles,
            NodeType::Creator => &self.creators,
            NodeType::Subject => &self.subjects,
        }
    }

    /// Total training entities across all types.
    pub fn len(&self) -> usize {
        self.articles.len() + self.creators.len() + self.subjects.len()
    }

    /// True when no entity of any type is in training.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A k-fold partition of `0..n` item indices.
#[derive(Debug, Clone)]
pub struct CvSplits {
    folds: Vec<Vec<usize>>,
}

impl CvSplits {
    /// Shuffles `0..n` and cuts it into `k` near-equal folds.
    ///
    /// # Panics
    /// Panics when `k == 0` or `k > n`.
    pub fn new(n: usize, k: usize, rng: &mut impl Rng) -> Self {
        assert!(k > 0, "CvSplits: k must be positive");
        assert!(k <= n, "CvSplits: cannot cut {n} items into {k} folds");
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(rng);
        let mut folds: Vec<Vec<usize>> = vec![Vec::with_capacity(n / k + 1); k];
        for (i, idx) in indices.into_iter().enumerate() {
            folds[i % k].push(idx);
        }
        Self { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// `(train, test)` for fold `fold`: the fold itself is the test set,
    /// the other k−1 folds are the training set.
    ///
    /// # Panics
    /// Panics when `fold >= k`.
    pub fn fold(&self, fold: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(fold < self.folds.len(), "fold {fold} out of {}", self.folds.len());
        let test = self.folds[fold].clone();
        let train = self
            .folds
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != fold)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        (train, test)
    }
}

/// Subsamples `ratio` of `train` (at least one item), as the paper's θ.
///
/// # Panics
/// Panics unless `0 < ratio <= 1`.
pub fn sample_ratio(train: &[usize], ratio: f64, rng: &mut impl Rng) -> Vec<usize> {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "sample_ratio: ratio {ratio} must be in (0, 1]"
    );
    if ratio >= 1.0 {
        return train.to_vec();
    }
    let keep = ((train.len() as f64 * ratio).round() as usize)
        .clamp(1.min(train.len()), train.len());
    let mut shuffled = train.to_vec();
    shuffled.shuffle(rng);
    shuffled.truncate(keep);
    shuffled
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashSet;

    #[test]
    fn folds_partition_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let cv = CvSplits::new(103, 10, &mut rng);
        for f in 0..10 {
            let (train, test) = cv.fold(f);
            assert_eq!(train.len() + test.len(), 103);
            let all: HashSet<usize> = train.iter().chain(&test).copied().collect();
            assert_eq!(all.len(), 103, "fold {f}: overlap between train and test");
        }
    }

    #[test]
    fn fold_sizes_are_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let cv = CvSplits::new(100, 10, &mut rng);
        for f in 0..10 {
            let (_, test) = cv.fold(f);
            assert_eq!(test.len(), 10);
        }
        let cv = CvSplits::new(101, 10, &mut rng);
        let sizes: Vec<usize> = (0..10).map(|f| cv.fold(f).1.len()).collect();
        assert!(sizes.iter().all(|&s| s == 10 || s == 11));
    }

    #[test]
    fn every_item_is_tested_exactly_once() {
        let mut rng = StdRng::seed_from_u64(3);
        let cv = CvSplits::new(57, 10, &mut rng);
        let mut tested = vec![0usize; 57];
        for f in 0..10 {
            for idx in cv.fold(f).1 {
                tested[idx] += 1;
            }
        }
        assert!(tested.iter().all(|&t| t == 1));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = CvSplits::new(50, 5, &mut StdRng::seed_from_u64(9));
        let b = CvSplits::new(50, 5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.fold(2), b.fold(2));
    }

    #[test]
    fn sample_ratio_keeps_requested_fraction() {
        let mut rng = StdRng::seed_from_u64(4);
        let train: Vec<usize> = (0..90).collect();
        let s = sample_ratio(&train, 0.1, &mut rng);
        assert_eq!(s.len(), 9);
        let s = sample_ratio(&train, 1.0, &mut rng);
        assert_eq!(s.len(), 90);
        // Sampled items come from the original set, without duplicates.
        let s = sample_ratio(&train, 0.5, &mut rng);
        let set: HashSet<usize> = s.iter().copied().collect();
        assert_eq!(set.len(), s.len());
        assert!(set.iter().all(|&i| i < 90));
    }

    #[test]
    fn sample_ratio_never_empties_nonempty_train() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = sample_ratio(&[42], 0.1, &mut rng);
        assert_eq!(s, vec![42]);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn sample_ratio_rejects_zero() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = sample_ratio(&[1, 2], 0.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "cannot cut")]
    fn too_many_folds_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = CvSplits::new(3, 10, &mut rng);
    }
}

//! Word pools for the synthetic corpus.
//!
//! Fig 1(b)/(c) of the paper shows that true-leaning and false-leaning
//! articles use visibly different vocabularies. The generator reproduces
//! that by drawing article words from three pools — a shared neutral pool
//! and two label-conditioned signature pools — plus per-subject topic
//! words. The signature pools below follow the word clouds in the paper
//! (e.g. "president", "income", "tax" on the true side; "obamacare",
//! "gun", "fraud" on the false side).

/// The 20 most-populated subjects of Fig 1(d), in the paper's order,
/// with their observed true-article fraction (red bars vs blue bars).
/// Remaining subjects (up to 152) are synthesised around a neutral split.
pub const SUBJECT_TOPICS: &[(&str, f64)] = &[
    ("health", 0.465),
    ("economy", 0.632),
    ("taxes", 0.58),
    ("education", 0.61),
    ("federal", 0.55),
    ("jobs", 0.60),
    ("state", 0.57),
    ("candidates", 0.44),
    ("elections", 0.48),
    ("immigration", 0.42),
    ("foreign", 0.52),
    ("crime", 0.47),
    ("history", 0.54),
    ("energy", 0.56),
    ("legal", 0.51),
    ("environment", 0.58),
    ("guns", 0.41),
    ("military", 0.53),
    ("terrorism", 0.39),
    ("job", 0.59),
];

/// Words over-represented in true-leaning articles (Fig 1(b)).
pub const TRUE_SIGNATURE_WORDS: &[&str] = &[
    "president", "income", "tax", "american", "percent", "budget", "workers", "rate",
    "report", "average", "increase", "spending", "record", "federal", "billion",
    "growth", "unemployment", "median", "wages", "deficit", "revenue", "senate",
    "quarterly", "study", "census", "data", "fiscal", "analysis", "department",
    "measure", "funding", "program", "benefits", "insurance", "enrollment", "export",
    "statistics", "official", "annual", "decade",
];

/// Words over-represented in false-leaning articles (Fig 1(c)).
pub const FALSE_SIGNATURE_WORDS: &[&str] = &[
    "obama", "republican", "clinton", "obamacare", "gun", "illegal", "fraud",
    "socialist", "conspiracy", "amnesty", "takeover", "scheme", "radical", "secret",
    "banned", "hoax", "rigged", "corrupt", "scandal", "cover", "destroy", "invasion",
    "criminals", "welfare", "handout", "muslim", "sharia", "communist", "tyranny",
    "confiscate", "caravan", "millions", "flood", "collapse", "bankrupt", "stolen",
    "lies", "fake", "plot", "agenda",
];

/// Neutral filler words shared by every article regardless of label.
/// The pool is kept large (≈3× the signature pools) so that no single
/// neutral word out-ranks the signature words in the Fig 1(b)/(c)
/// frequency analysis — in real text the neutral vocabulary is vast.
pub const COMMON_WORDS: &[&str] = &[
    "people", "country", "year", "government", "plan", "bill", "law", "time", "new",
    "million", "says", "said", "claim", "statement", "vote", "voters", "public",
    "policy", "national", "states", "house", "campaign", "party", "political",
    "money", "pay", "work", "years", "support", "change", "issue", "debate",
    "america", "nation", "congress", "governor", "senator", "washington", "proposal",
    "speech", "leaders", "member", "members", "office", "term", "city", "county",
    "district", "committee", "council", "board", "meeting", "press", "interview",
    "question", "answer", "point", "building", "week", "month", "day", "today",
    "yesterday", "recently", "history", "future", "past", "current", "former",
    "local", "regional", "major", "minor", "large", "small", "group", "groups",
    "event", "events", "plans", "effort", "efforts", "level", "levels", "number",
    "numbers", "part", "parts", "side", "sides", "case", "cases", "fact", "facts",
    "idea", "ideas", "view", "views", "voice", "matter", "matters", "room", "floor",
    "session", "agency", "agencies", "secretary", "administration", "cabinet",
    "leader", "citizens", "community", "communities", "families", "family",
    "business", "businesses", "industry", "market", "markets", "street", "road",
    "project", "projects", "system", "systems", "process", "review", "final",
];

/// Profile words used by reliable creators ("political analyst" style
/// backgrounds).
pub const RELIABLE_PROFILE_WORDS: &[&str] = &[
    "analyst", "professor", "economist", "researcher", "journalist", "editor",
    "scholar", "director", "expert", "historian", "scientist", "policy",
];

/// Profile words used by unreliable creators (campaign-machine style
/// backgrounds).
pub const UNRELIABLE_PROFILE_WORDS: &[&str] = &[
    "blogger", "pundit", "activist", "strategist", "operative", "commentator",
    "radio", "chain", "email", "viral", "anonymous", "talking",
];

/// Party affiliations used in creator profiles (Definition 2.3 lists
/// titles like "Democrat"/"Republican").
pub const PARTIES: &[&str] = &["democrat", "republican", "independent"];

/// Home states used in creator profiles.
pub const LOCATIONS: &[&str] = &[
    "york", "illinois", "texas", "florida", "ohio", "california", "virginia",
    "georgia", "wisconsin", "arizona",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pools_are_disjoint() {
        let t: HashSet<&str> = TRUE_SIGNATURE_WORDS.iter().copied().collect();
        let f: HashSet<&str> = FALSE_SIGNATURE_WORDS.iter().copied().collect();
        let c: HashSet<&str> = COMMON_WORDS.iter().copied().collect();
        assert!(t.is_disjoint(&f), "true/false signature pools overlap");
        assert!(t.is_disjoint(&c), "true/common pools overlap");
        assert!(f.is_disjoint(&c), "false/common pools overlap");
    }

    #[test]
    fn pools_have_no_duplicates() {
        for pool in [TRUE_SIGNATURE_WORDS, FALSE_SIGNATURE_WORDS, COMMON_WORDS] {
            let set: HashSet<&str> = pool.iter().copied().collect();
            assert_eq!(set.len(), pool.len());
        }
    }

    #[test]
    fn twenty_named_subjects_match_fig1d() {
        assert_eq!(SUBJECT_TOPICS.len(), 20);
        let health = SUBJECT_TOPICS.iter().find(|(n, _)| *n == "health").unwrap();
        assert!(health.1 < 0.5, "health leans false in the paper");
        let economy = SUBJECT_TOPICS.iter().find(|(n, _)| *n == "economy").unwrap();
        assert!(economy.1 > 0.6, "economy leans true in the paper");
    }

    #[test]
    fn subject_biases_are_probabilities() {
        for &(name, bias) in SUBJECT_TOPICS {
            assert!((0.0..=1.0).contains(&bias), "{name} bias {bias} out of range");
        }
    }
}

//! Property tests on the data layer: generator invariants across random
//! seeds/scales, label algebra, and CV/θ behaviour.

use fd_data::{generate, sample_ratio, Credibility, CvSplits, GeneratorConfig, LabelMode};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    // Corpus generation is the expensive case; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generator_invariants_hold_for_any_seed(seed in any::<u64>(), scale_pct in 10u32..30) {
        let cfg = GeneratorConfig::politifact().scaled(scale_pct as f64 / 1000.0);
        let corpus = generate(&cfg, seed);
        corpus.validate().expect("generated corpus must validate");
        // Exact counts.
        prop_assert_eq!(corpus.articles.len(), cfg.n_articles);
        prop_assert_eq!(corpus.graph.n_subject_links(), cfg.target_subject_links);
        // Every article has 1..=8 subjects.
        for a in 0..corpus.articles.len() {
            let k = corpus.graph.subjects_of_article(a).len();
            prop_assert!((1..=8).contains(&k), "article {a} has {k} subjects");
        }
        // Budget cap respected.
        for u in 0..corpus.creators.len() {
            prop_assert!(
                corpus.graph.articles_of_creator(u).len() <= cfg.max_articles_per_creator
            );
        }
        // Entity labels really are the rounded mean of article scores.
        for u in (0..corpus.creators.len()).step_by(17) {
            if let Some(score) = corpus.creator_mean_score(u) {
                prop_assert_eq!(
                    corpus.creators[u].label,
                    Credibility::from_score_rounded(score)
                );
            }
        }
        // No entity text is empty.
        prop_assert!(corpus.articles.iter().all(|a| !a.text.is_empty()));
        prop_assert!(corpus.creators.iter().all(|c| !c.profile.is_empty()));
        prop_assert!(corpus.subjects.iter().all(|s| !s.description.is_empty()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn label_score_roundtrip_is_clamped_rounding(score in -10.0f64..20.0) {
        let label = Credibility::from_score_rounded(score);
        let back = label.score() as f64;
        let clamped = score.round().clamp(1.0, 6.0);
        prop_assert_eq!(back, clamped);
    }

    #[test]
    fn binary_grouping_matches_score_threshold(idx in 0usize..6) {
        let label = Credibility::from_class_index(idx);
        prop_assert_eq!(label.is_true_group(), label.score() >= 4);
        prop_assert_eq!(
            LabelMode::Binary.target(label),
            usize::from(label.score() >= 4)
        );
        prop_assert_eq!(LabelMode::MultiClass.target(label), idx);
    }

    #[test]
    fn cv_folds_partition_for_any_sizes(n in 10usize..200, k in 2usize..10, seed in any::<u64>()) {
        prop_assume!(k <= n);
        let mut rng = StdRng::seed_from_u64(seed);
        let cv = CvSplits::new(n, k, &mut rng);
        let mut tested = vec![0usize; n];
        for f in 0..k {
            let (train, test) = cv.fold(f);
            prop_assert_eq!(train.len() + test.len(), n);
            for idx in test {
                tested[idx] += 1;
            }
        }
        prop_assert!(tested.iter().all(|&t| t == 1), "each item tested exactly once");
    }

    #[test]
    fn sample_ratio_size_is_round_of_fraction(n in 1usize..500, pct in 1u32..=100, seed in any::<u64>()) {
        let ratio = pct as f64 / 100.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let train: Vec<usize> = (0..n).collect();
        let sampled = sample_ratio(&train, ratio, &mut rng);
        let expected = ((n as f64 * ratio).round() as usize).clamp(1, n);
        prop_assert_eq!(sampled.len(), expected);
        // No duplicates, all in range.
        let set: std::collections::HashSet<usize> = sampled.iter().copied().collect();
        prop_assert_eq!(set.len(), sampled.len());
        prop_assert!(set.iter().all(|&i| i < n));
    }
}

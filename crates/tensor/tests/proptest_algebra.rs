//! Property-based tests for the matrix algebra: the identities below must
//! hold for arbitrary well-shaped inputs, not just the hand-picked cases
//! in the unit tests.

use fd_tensor::{assert_close, softmax_rows, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Strategy: shape triple (m, k, n) for chained products, kept small so the
/// O(n³) reference checks stay fast.
fn dims3() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..6, 1usize..6, 1usize..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matmul_identity_is_noop((m, k, _n) in dims3(), seed in any::<u64>()) {
        let a = deterministic(m, k, seed);
        assert_close(&a.matmul(&Matrix::identity(k)), &a, 1e-5);
        assert_close(&Matrix::identity(m).matmul(&a), &a, 1e-5);
    }

    #[test]
    fn matmul_distributes_over_add((m, k, n) in dims3(), s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>()) {
        let a = deterministic(m, k, s1);
        let b = deterministic(k, n, s2);
        let c = deterministic(k, n, s3);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        assert_close(&lhs, &rhs, 1e-2);
    }

    #[test]
    fn transpose_reverses_product((m, k, n) in dims3(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = deterministic(m, k, s1);
        let b = deterministic(k, n, s2);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_close(&lhs, &rhs, 1e-3);
    }

    #[test]
    fn fused_transpose_kernels_match((m, k, n) in dims3(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = deterministic(k, m, s1);
        let b = deterministic(k, n, s2);
        assert_close(&a.transpose_matmul(&b), &a.transpose().matmul(&b), 1e-3);
        let c = deterministic(m, k, s1);
        let d = deterministic(n, k, s2);
        assert_close(&c.matmul_transpose(&d), &c.matmul(&d.transpose()), 1e-3);
    }

    #[test]
    fn add_commutes(a in matrix(3, 4), b in matrix(3, 4)) {
        assert_close(&a.add(&b), &b.add(&a), 1e-6);
    }

    #[test]
    fn mul_commutes(a in matrix(3, 4), b in matrix(3, 4)) {
        assert_close(&a.mul(&b), &b.mul(&a), 1e-6);
    }

    #[test]
    fn sub_then_add_roundtrips(a in matrix(2, 5), b in matrix(2, 5)) {
        assert_close(&a.sub(&b).add(&b), &a, 1e-4);
    }

    #[test]
    fn scale_is_linear(a in matrix(3, 3), alpha in -5.0f32..5.0) {
        assert_close(&a.scale(alpha).add(&a.scale(-alpha)), &Matrix::zeros(3, 3), 1e-4);
        let doubled = a.scale(alpha).scale(2.0);
        assert_close(&doubled, &a.scale(2.0 * alpha), 1e-3);
    }

    #[test]
    fn concat_slice_roundtrip(a in matrix(3, 2), b in matrix(3, 5)) {
        let cat = a.concat_cols(&b);
        assert_close(&cat.slice_cols(0, 2), &a, 0.0);
        assert_close(&cat.slice_cols(2, 5), &b, 0.0);
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(4, 6)) {
        let p = softmax_rows(&a);
        for r in 0..p.rows() {
            let s: f32 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(v in prop::collection::vec(-20.0f32..20.0, 1..8), shift in -50.0f32..50.0) {
        let a = Matrix::row_vector(&v);
        let b = a.map(|x| x + shift);
        assert_close(&softmax_rows(&a), &softmax_rows(&b), 1e-4);
    }

    #[test]
    fn frobenius_norm_triangle_inequality(a in matrix(3, 3), b in matrix(3, 3)) {
        let lhs = a.add(&b).frobenius_norm();
        let rhs = a.frobenius_norm() + b.frobenius_norm();
        prop_assert!(lhs <= rhs + 1e-3);
    }

    #[test]
    fn dot_cauchy_schwarz(v in prop::collection::vec(-10.0f32..10.0, 1..10), w_seed in any::<u64>()) {
        let a = Matrix::row_vector(&v);
        let b = deterministic(1, v.len(), w_seed);
        let lhs = a.dot(&b).abs();
        let rhs = a.frobenius_norm() * b.frobenius_norm();
        prop_assert!(lhs <= rhs * (1.0 + 1e-4) + 1e-4);
    }
}

/// Deterministic pseudo-random matrix from a seed, kept outside the
/// proptest strategies so shape and content can vary independently.
fn deterministic(rows: usize, cols: usize, seed: u64) -> Matrix {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    fd_tensor::uniform_in(rows, cols, -2.0, 2.0, &mut rng)
}

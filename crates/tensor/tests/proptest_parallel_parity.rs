//! Property tests for the blocked/parallel kernel contract:
//!
//! * `transpose` is an involution and agrees with the naive definition;
//! * the blocked matmul family matches the seed-era naive kernels to
//!   rounding error;
//! * the row-parallel driver is **bit-identical** to the serial path for
//!   any `FD_THREADS`, on arbitrary shapes including the degenerate
//!   0-row and 1-row cases. Bitwise equality (not `assert_close`) is the
//!   property the batched inference path relies on.

use fd_tensor::parallel::with_thread_count;
use fd_tensor::{assert_close, Matrix};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn deterministic(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    fd_tensor::uniform_in(rows, cols, -2.0, 2.0, &mut rng)
}

/// Shapes that straddle the kernel's tiling: 0 and 1 rows, odd sizes,
/// and sizes past one 8-row tile / one 4-wide p-block.
fn dims3() -> impl Strategy<Value = (usize, usize, usize)> {
    (0usize..21, 1usize..21, 1usize..21)
}

fn assert_bit_identical(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape mismatch");
    for r in 0..a.rows() {
        for (c, (&x, &y)) in a.row(r).iter().zip(b.row(r)).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at ({r},{c}): {x} vs {y}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution((m, k, _n) in dims3(), seed in any::<u64>()) {
        let a = deterministic(m, k, seed);
        assert_bit_identical(&a.transpose().transpose(), &a, "transpose∘transpose");
    }

    #[test]
    fn blocked_transpose_matches_naive_definition((m, k, _n) in dims3(), seed in any::<u64>()) {
        let a = deterministic(m, k, seed);
        let t = a.transpose();
        prop_assert_eq!((t.rows(), t.cols()), (k, m));
        for r in 0..m {
            for c in 0..k {
                prop_assert_eq!(a[(r, c)].to_bits(), t[(c, r)].to_bits());
            }
        }
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose((m, k, n) in dims3(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = deterministic(k, m, s1);
        let b = deterministic(k, n, s2);
        assert_bit_identical(
            &a.transpose_matmul(&b),
            &a.transpose().matmul(&b),
            "transpose_matmul",
        );
    }

    #[test]
    fn blocked_kernels_match_naive((m, k, n) in dims3(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = deterministic(m, k, s1);
        let b = deterministic(k, n, s2);
        assert_close(&a.matmul(&b), &a.matmul_naive(&b), 1e-3);
        let bt = deterministic(n, k, s2);
        assert_close(&a.matmul_transpose(&bt), &a.matmul_transpose_naive(&bt), 1e-3);
        let at = deterministic(k, m, s1);
        assert_close(&at.transpose_matmul(&b), &at.transpose_matmul_naive(&b), 1e-3);
    }

    #[test]
    fn parallel_matmul_bit_identical_to_serial((m, k, n) in dims3(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = deterministic(m, k, s1);
        let b = deterministic(k, n, s2);
        let serial = with_thread_count(1, || a.matmul(&b));
        for threads in [2usize, 8] {
            let parallel = with_thread_count(threads, || a.matmul(&b));
            assert_bit_identical(&serial, &parallel, "matmul under FD_THREADS");
        }
    }

    #[test]
    fn parallel_fused_kernels_bit_identical_to_serial((m, k, n) in dims3(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let at = deterministic(k, m, s1);
        let b = deterministic(k, n, s2);
        let bt = deterministic(n, k, s2);
        let a = deterministic(m, k, s1);
        let (tm1, mt1) = with_thread_count(1, || (at.transpose_matmul(&b), a.matmul_transpose(&bt)));
        for threads in [2usize, 8] {
            let (tm, mt) =
                with_thread_count(threads, || (at.transpose_matmul(&b), a.matmul_transpose(&bt)));
            assert_bit_identical(&tm1, &tm, "transpose_matmul under FD_THREADS");
            assert_bit_identical(&mt1, &mt, "matmul_transpose under FD_THREADS");
        }
    }
}

/// Vector sizes that straddle `REDUCE_CHUNK`: the serial-identical
/// small regime, exactly one chunk, and multi-chunk shapes where the
/// fixed pairwise combine tree actually has depth.
fn reduce_lens() -> impl Strategy<Value = usize> {
    (0usize..4, 0usize..130).prop_map(|(band, jitter)| match band {
        0 => jitter,                  // serial-identical small regime
        1 => 4095 + jitter % 3,      // straddles one REDUCE_CHUNK
        2 => 8190 + jitter % 10,     // two chunks, one combine level
        _ => 20000 + jitter * 4,     // multi-level combine tree
    })
}

fn vector(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = fd_tensor::uniform_in(1, len.max(1), -3.0, 3.0, &mut rng);
    if len == 0 { Vec::new() } else { m.as_slice().to_vec() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ISSUE's headline invariant: tree reductions (sum, squared
    /// norm behind grad-clip, max_abs, dot) are bit-identical across
    /// FD_THREADS ∈ {1,2,3,8}, including a non-power-of-two width.
    #[test]
    fn tree_reductions_bit_identical_across_thread_counts(len in reduce_lens(), seed in any::<u64>()) {
        use fd_tensor::parallel::{tree_dot, tree_max_abs, tree_sum, tree_sum_squares};
        let xs = vector(len, seed);
        let ys = vector(len, seed.wrapping_add(1));
        let reference = with_thread_count(1, || {
            (tree_sum(&xs), tree_sum_squares(&xs), tree_max_abs(&xs), tree_dot(&xs, &ys))
        });
        for threads in [2usize, 3, 8] {
            let got = with_thread_count(threads, || {
                (tree_sum(&xs), tree_sum_squares(&xs), tree_max_abs(&xs), tree_dot(&xs, &ys))
            });
            prop_assert_eq!(reference.0.to_bits(), got.0.to_bits(), "sum at {} threads", threads);
            prop_assert_eq!(reference.1.to_bits(), got.1.to_bits(), "sum_squares at {} threads", threads);
            prop_assert_eq!(reference.2.to_bits(), got.2.to_bits(), "max_abs at {} threads", threads);
            prop_assert_eq!(reference.3.to_bits(), got.3.to_bits(), "dot at {} threads", threads);
        }
    }

    /// Matrix-level reductions route through the same trees; sweep the
    /// public API too so a future reroute can't silently lose parity.
    #[test]
    fn matrix_reductions_bit_identical_across_thread_counts(
        (m, k, _n) in dims3(), seed in any::<u64>()
    ) {
        let a = deterministic(m.max(1) * 7, k * 5, seed);
        let reference = with_thread_count(1, || (a.sum(), a.frobenius_norm(), a.max_abs()));
        for threads in [2usize, 3, 8] {
            let got = with_thread_count(threads, || (a.sum(), a.frobenius_norm(), a.max_abs()));
            prop_assert_eq!(reference.0.to_bits(), got.0.to_bits(), "sum at {} threads", threads);
            prop_assert_eq!(reference.1.to_bits(), got.1.to_bits(), "norm at {} threads", threads);
            prop_assert_eq!(reference.2.to_bits(), got.2.to_bits(), "max_abs at {} threads", threads);
        }
    }

    /// The destination-partitioned scatter-add (gather_rows backward)
    /// is bit-identical at any width for arbitrary index patterns,
    /// including repeated and skewed destinations.
    #[test]
    fn scatter_add_bit_identical_across_thread_counts(
        n_dst in 1usize..40,
        m in 0usize..300,
        cols in 1usize..24,
        seed in any::<u64>(),
    ) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Option<usize>> = (0..m)
            .map(|_| if rng.gen_range(0..8) == 0 { None } else { Some(rng.gen_range(0..n_dst)) })
            .collect();
        let grad = deterministic(m, cols, seed.wrapping_add(9));
        let reference = with_thread_count(1, || {
            let mut dst = Matrix::zeros(n_dst, cols);
            fd_tensor::scatter_add_rows(&mut dst, &rows, &grad);
            dst
        });
        for threads in [2usize, 3, 8] {
            let got = with_thread_count(threads, || {
                let mut dst = Matrix::zeros(n_dst, cols);
                fd_tensor::scatter_add_rows(&mut dst, &rows, &grad);
                dst
            });
            assert_bit_identical(&reference, &got, "scatter_add_rows under FD_THREADS");
        }
    }
}

/// The parallel driver actually forks above its serial-fallback
/// threshold; make sure bit-parity holds there too, not just on the
/// small shapes the proptests sweep.
#[test]
fn parallel_parity_above_fallback_threshold() {
    let a = deterministic(160, 160, 41);
    let b = deterministic(160, 160, 42);
    let serial = with_thread_count(1, || a.matmul(&b));
    for threads in [2usize, 8] {
        let parallel = with_thread_count(threads, || a.matmul(&b));
        assert_bit_identical(&serial, &parallel, "matmul (large) under FD_THREADS");
    }
}

//! Property tests for the blocked/parallel kernel contract:
//!
//! * `transpose` is an involution and agrees with the naive definition;
//! * the blocked matmul family matches the seed-era naive kernels to
//!   rounding error;
//! * the row-parallel driver is **bit-identical** to the serial path for
//!   any `FD_THREADS`, on arbitrary shapes including the degenerate
//!   0-row and 1-row cases. Bitwise equality (not `assert_close`) is the
//!   property the batched inference path relies on.

use fd_tensor::parallel::with_thread_count;
use fd_tensor::{assert_close, Matrix};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn deterministic(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    fd_tensor::uniform_in(rows, cols, -2.0, 2.0, &mut rng)
}

/// Shapes that straddle the kernel's tiling: 0 and 1 rows, odd sizes,
/// and sizes past one 8-row tile / one 4-wide p-block.
fn dims3() -> impl Strategy<Value = (usize, usize, usize)> {
    (0usize..21, 1usize..21, 1usize..21)
}

fn assert_bit_identical(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape mismatch");
    for r in 0..a.rows() {
        for (c, (&x, &y)) in a.row(r).iter().zip(b.row(r)).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at ({r},{c}): {x} vs {y}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution((m, k, _n) in dims3(), seed in any::<u64>()) {
        let a = deterministic(m, k, seed);
        assert_bit_identical(&a.transpose().transpose(), &a, "transpose∘transpose");
    }

    #[test]
    fn blocked_transpose_matches_naive_definition((m, k, _n) in dims3(), seed in any::<u64>()) {
        let a = deterministic(m, k, seed);
        let t = a.transpose();
        prop_assert_eq!((t.rows(), t.cols()), (k, m));
        for r in 0..m {
            for c in 0..k {
                prop_assert_eq!(a[(r, c)].to_bits(), t[(c, r)].to_bits());
            }
        }
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose((m, k, n) in dims3(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = deterministic(k, m, s1);
        let b = deterministic(k, n, s2);
        assert_bit_identical(
            &a.transpose_matmul(&b),
            &a.transpose().matmul(&b),
            "transpose_matmul",
        );
    }

    #[test]
    fn blocked_kernels_match_naive((m, k, n) in dims3(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = deterministic(m, k, s1);
        let b = deterministic(k, n, s2);
        assert_close(&a.matmul(&b), &a.matmul_naive(&b), 1e-3);
        let bt = deterministic(n, k, s2);
        assert_close(&a.matmul_transpose(&bt), &a.matmul_transpose_naive(&bt), 1e-3);
        let at = deterministic(k, m, s1);
        assert_close(&at.transpose_matmul(&b), &at.transpose_matmul_naive(&b), 1e-3);
    }

    #[test]
    fn parallel_matmul_bit_identical_to_serial((m, k, n) in dims3(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = deterministic(m, k, s1);
        let b = deterministic(k, n, s2);
        let serial = with_thread_count(1, || a.matmul(&b));
        for threads in [2usize, 8] {
            let parallel = with_thread_count(threads, || a.matmul(&b));
            assert_bit_identical(&serial, &parallel, "matmul under FD_THREADS");
        }
    }

    #[test]
    fn parallel_fused_kernels_bit_identical_to_serial((m, k, n) in dims3(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let at = deterministic(k, m, s1);
        let b = deterministic(k, n, s2);
        let bt = deterministic(n, k, s2);
        let a = deterministic(m, k, s1);
        let (tm1, mt1) = with_thread_count(1, || (at.transpose_matmul(&b), a.matmul_transpose(&bt)));
        for threads in [2usize, 8] {
            let (tm, mt) =
                with_thread_count(threads, || (at.transpose_matmul(&b), a.matmul_transpose(&bt)));
            assert_bit_identical(&tm1, &tm, "transpose_matmul under FD_THREADS");
            assert_bit_identical(&mt1, &mt, "matmul_transpose under FD_THREADS");
        }
    }
}

/// The parallel driver actually forks above its serial-fallback
/// threshold; make sure bit-parity holds there too, not just on the
/// small shapes the proptests sweep.
#[test]
fn parallel_parity_above_fallback_threshold() {
    let a = deterministic(160, 160, 41);
    let b = deterministic(160, 160, 42);
    let serial = with_thread_count(1, || a.matmul(&b));
    for threads in [2usize, 8] {
        let parallel = with_thread_count(threads, || a.matmul(&b));
        assert_bit_identical(&serial, &parallel, "matmul (large) under FD_THREADS");
    }
}

//! Seeded weight initialisers.
//!
//! All initialisers take an explicit [`Rng`] so that every experiment in
//! the workspace is reproducible from a single `u64` seed.

use crate::Matrix;
use rand::Rng;

/// Uniform entries in `[lo, hi)`.
///
/// # Panics
/// Panics when `lo >= hi`.
pub fn uniform_in(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Matrix {
    assert!(lo < hi, "uniform_in: empty range [{lo}, {hi})");
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The right default for the
/// tanh/sigmoid gates used throughout GRU and GDU cells.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    assert!(fan_in > 0 && fan_out > 0, "xavier_uniform: zero fan");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform_in(fan_in, fan_out, -a, a, rng)
}

/// He/Kaiming normal initialisation: `N(0, 2 / fan_in)`, for ReLU layers.
pub fn he_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    assert!(fan_in > 0 && fan_out > 0, "he_normal: zero fan");
    let std = (2.0 / fan_in as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| {
        // Box-Muller transform; two uniforms to one normal. Rejection of
        // u1 == 0 avoids ln(0).
        let mut u1: f32 = rng.gen();
        while u1 <= f32::MIN_POSITIVE {
            u1 = rng.gen();
        }
        let u2: f32 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
        z * std
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = uniform_in(10, 10, -0.5, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn xavier_bound_scales_with_fan() {
        let mut rng = StdRng::seed_from_u64(2);
        let small = xavier_uniform(4, 4, &mut rng);
        let big = xavier_uniform(400, 400, &mut rng);
        assert!(small.max_abs() <= (6.0f32 / 8.0).sqrt() + 1e-6);
        assert!(big.max_abs() <= (6.0f32 / 800.0).sqrt() + 1e-6);
        assert!(big.max_abs() < small.max_abs());
    }

    #[test]
    fn he_normal_has_roughly_right_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let fan_in = 64;
        let m = he_normal(fan_in, 256, &mut rng);
        let mean = m.mean();
        let var = m.as_slice().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>()
            / (m.len() - 1) as f32;
        let expected = 2.0 / fan_in as f32;
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!(
            (var - expected).abs() / expected < 0.15,
            "variance {var} too far from {expected}"
        );
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(7));
        let b = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_rejects_empty_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = uniform_in(1, 1, 1.0, 1.0, &mut rng);
    }
}

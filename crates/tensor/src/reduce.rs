//! Reductions: sums, means, norms, arg-max.

use crate::Matrix;

/// Result of an arg-max scan: the winning index and its value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArgMax {
    /// Index of the largest element.
    pub index: usize,
    /// Value of the largest element.
    pub value: f32,
}

/// Arg-max over a non-empty slice; ties resolve to the first maximum,
/// which keeps classification deterministic.
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax_slice(values: &[f32]) -> ArgMax {
    assert!(!values.is_empty(), "argmax_slice: empty input");
    let mut best = ArgMax { index: 0, value: values[0] };
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > best.value {
            best = ArgMax { index: i, value: v };
        }
    }
    best
}

impl Matrix {
    /// Sum of all entries via the deterministic reduction tree: the
    /// result depends only on the data (bit-identical at any
    /// `FD_THREADS`), and matrices of at most
    /// [`crate::parallel::REDUCE_CHUNK`] entries sum in plain element
    /// order.
    pub fn sum(&self) -> f32 {
        crate::parallel::tree_sum(self.as_slice())
    }

    /// Mean of all entries.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean: empty matrix");
        self.sum() / self.len() as f32
    }

    /// Per-row sums as an `rows x 1` column.
    pub fn row_sums(&self) -> Matrix {
        Matrix::from_fn(self.rows(), 1, |r, _| self.row(r).iter().sum())
    }

    /// Per-column sums as a `1 x cols` row vector.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        for r in 0..self.rows() {
            for (acc, &v) in out.row_mut(0).iter_mut().zip(self.row(r)) {
                *acc += v;
            }
        }
        out
    }

    /// Column-wise mean as a `1 x cols` row vector.
    ///
    /// # Panics
    /// Panics when the matrix has no rows.
    pub fn col_means(&self) -> Matrix {
        assert!(self.rows() > 0, "col_means: matrix has no rows");
        self.col_sums().scale(1.0 / self.rows() as f32)
    }

    /// Frobenius norm (Euclidean norm of the flattened entries),
    /// computed over the deterministic reduction tree like [`Matrix::sum`].
    pub fn frobenius_norm(&self) -> f32 {
        crate::parallel::tree_sum_squares(self.as_slice()).sqrt()
    }

    /// Largest absolute entry; 0 for an empty matrix. Tree-reduced for
    /// the same thread-count invariance as [`Matrix::sum`].
    pub fn max_abs(&self) -> f32 {
        crate::parallel::tree_max_abs(self.as_slice())
    }

    /// Arg-max of row `r`.
    pub fn row_argmax(&self, r: usize) -> ArgMax {
        argmax_slice(self.row(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_means() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.sum(), 21.0);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.row_sums(), Matrix::from_rows(&[&[6.0], &[15.0]]));
        assert_eq!(m.col_sums(), Matrix::row_vector(&[5.0, 7.0, 9.0]));
        assert_eq!(m.col_means(), Matrix::row_vector(&[2.5, 3.5, 4.5]));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
        let n = Matrix::from_rows(&[&[-7.0, 2.0]]);
        assert_eq!(n.max_abs(), 7.0);
        assert_eq!(Matrix::zeros(0, 0).max_abs(), 0.0);
    }

    #[test]
    fn argmax_prefers_first_tie() {
        let a = argmax_slice(&[1.0, 3.0, 3.0, 2.0]);
        assert_eq!(a, ArgMax { index: 1, value: 3.0 });
    }

    #[test]
    fn argmax_handles_negatives() {
        let a = argmax_slice(&[-5.0, -1.0, -3.0]);
        assert_eq!(a.index, 1);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn argmax_empty_panics() {
        let _ = argmax_slice(&[]);
    }

    #[test]
    fn row_argmax_scans_correct_row() {
        let m = Matrix::from_rows(&[&[0.0, 9.0], &[8.0, 1.0]]);
        assert_eq!(m.row_argmax(0).index, 1);
        assert_eq!(m.row_argmax(1).index, 0);
    }
}

//! Dense row-major `f32` matrix kernels.
//!
//! This crate is the numerical substrate of the FakeDetector reproduction.
//! It provides a single owned matrix type, [`Matrix`], together with the
//! linear-algebra kernels the autograd engine (`fd-autograd`) and the
//! neural-network layers (`fd-nn`) are built from: matrix products,
//! element-wise arithmetic, reductions, numerically stable soft-max /
//! log-sum-exp, and seeded weight initialisers.
//!
//! # Design notes
//!
//! * Everything is `f32` and row-major. The models in this workspace are
//!   small (hidden widths of 8–64), so cache-friendly contiguous storage
//!   beats clever layouts.
//! * Shape mismatches are programmer errors and **panic** with a message
//!   naming the operation and both shapes. Fallible `try_*` constructors
//!   are provided where data arrives from outside the process.
//! * All randomness is injected through [`rand::Rng`] so callers control
//!   seeding and experiments stay bit-reproducible.
//!
//! # Example
//!
//! ```
//! use fd_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! assert_eq!(a.sum(), 10.0);
//! ```

mod checked;
mod gather;
mod init;
mod matrix;
mod ops;
pub mod parallel;
mod quant;
mod reduce;
mod stable;

pub use checked::DimMismatch;
pub use gather::{gather_rows, mean_rows, scatter_add_mean_rows, scatter_add_rows};
pub use init::{he_normal, uniform_in, xavier_uniform};
pub use matrix::{Matrix, ShapeError};
pub use ops::{current_simd_level, simd_level, with_simd_level, SimdLevel};
pub use quant::QuantMatrix;
pub use reduce::{argmax_slice, ArgMax};
pub use stable::{log_sum_exp, softmax_in_place, softmax_rows, stable_sigmoid};

/// Absolute tolerance used by the test helpers in this workspace.
pub const TEST_EPS: f32 = 1e-4;

/// Asserts two matrices are element-wise equal within `tol`.
///
/// Intended for tests; panics with the first offending coordinate.
pub fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "assert_close: shape mismatch {}x{} vs {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let (x, y) = (a[(r, c)], b[(r, c)]);
            assert!(
                (x - y).abs() <= tol,
                "assert_close: mismatch at ({r},{c}): {x} vs {y} (tol {tol})"
            );
        }
    }
}

//! Linear-algebra and element-wise kernels on [`Matrix`].
//!
//! Every binary kernel comes in an owning form (`a.add(&b)`) and, where the
//! autograd engine needs it, an in-place accumulating form
//! (`a.add_assign_scaled(&b, alpha)`). Shape mismatches panic with a message
//! naming the kernel.
//!
//! The matmul family runs cache-blocked kernels behind the row-parallel
//! driver in [`crate::parallel`]. Each output row is produced by one
//! thread in a fixed reduction order, so results are bit-identical for
//! every `FD_THREADS` value; the `*_naive` variants keep the original
//! scalar kernels as a reference for benches and parity tests (they
//! agree with the blocked kernels only up to float reassociation).

use crate::{parallel, Matrix};
use std::ops::Range;
use std::sync::OnceLock;

/// SIMD tier the matmul panel dispatcher can take. Ordered weakest to
/// strongest so `min` clamps a requested level to what the CPU has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Baseline-ISA body; the portable fallback (NEON machines land
    /// here and let the autovectorizer use their native vectors).
    Scalar = 0,
    /// AVX2 codegen of the same body — identical bits to `Scalar`.
    Avx2 = 1,
    /// AVX2 + explicit fused multiply-adds in the reduction.
    Fma = 2,
    /// AVX-512F codegen of the FMA body (512-bit vectors).
    Avx512 = 3,
}

impl SimdLevel {
    /// Stable lowercase name, used by `FD_SIMD` and bench provenance.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Fma => "fma",
            SimdLevel::Avx512 => "avx512",
        }
    }

    /// Parses an `FD_SIMD` value; `None` for unknown strings.
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdLevel::Scalar),
            "avx2" => Some(SimdLevel::Avx2),
            "fma" => Some(SimdLevel::Fma),
            "avx512" | "avx512f" => Some(SimdLevel::Avx512),
            _ => None,
        }
    }
}

/// Strongest level this CPU supports, probed once.
fn detected_simd_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("fma") {
                return SimdLevel::Avx512;
            }
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return SimdLevel::Fma;
            }
            if is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    })
}

/// The process-wide SIMD level: the detected tier, optionally lowered
/// (never raised) by the `FD_SIMD` environment variable. Resolved once,
/// so every panel in a process — and every thread — takes the same
/// path, which keeps results deterministic per machine.
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let detected = detected_simd_level();
        match std::env::var("FD_SIMD") {
            Ok(v) => match SimdLevel::parse(&v) {
                Some(requested) => requested.min(detected),
                None => {
                    eprintln!(
                        "FD_SIMD={v}: unknown level (scalar|avx2|fma|avx512); using {}",
                        detected.name()
                    );
                    detected
                }
            },
            Err(_) => detected,
        }
    })
}

thread_local! {
    /// Per-thread SIMD override for parity tests; `None` = process level.
    static SIMD_OVERRIDE: std::cell::Cell<Option<SimdLevel>> =
        const { std::cell::Cell::new(None) };
}

/// The SIMD level panels on this thread will use right now.
pub fn current_simd_level() -> SimdLevel {
    match SIMD_OVERRIDE.with(std::cell::Cell::get) {
        Some(level) => level.min(detected_simd_level()),
        None => simd_level(),
    }
}

/// Runs `f` with the panel SIMD level pinned (clamped to what the CPU
/// supports) on the current thread, restoring the previous setting
/// afterwards. The override does not propagate to pool workers, so
/// tests comparing levels should pin `with_thread_count(1, ..)` too.
pub fn with_simd_level<T>(level: SimdLevel, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<SimdLevel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SIMD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(SIMD_OVERRIDE.with(|o| o.replace(Some(level))));
    f()
}

/// Which ISA path the panel dispatcher took, cached `&'static` handles
/// (one relaxed atomic add per panel; see `fd_obs::counter`), indexed
/// by [`SimdLevel`] discriminant.
fn panel_counter(level: SimdLevel) -> &'static fd_obs::Counter {
    static HANDLES: OnceLock<[&'static fd_obs::Counter; 4]> = OnceLock::new();
    HANDLES.get_or_init(|| {
        [
            fd_obs::counter("tensor.matmul.panels_scalar"),
            fd_obs::counter("tensor.matmul.panels_avx2"),
            fd_obs::counter("tensor.matmul.panels_fma"),
            fd_obs::counter("tensor.matmul.panels_avx512"),
        ]
    })[level as usize]
}

fn matmul_calls() -> &'static fd_obs::Counter {
    static HANDLE: OnceLock<&'static fd_obs::Counter> = OnceLock::new();
    HANDLE.get_or_init(|| fd_obs::counter("tensor.matmul.calls"))
}

/// Output rows processed together so the four active `b` rows are
/// reloaded from L1 instead of L2 while they sweep the tile.
const ROW_TILE: usize = 8;

/// `out[rows] += a[rows] · b`, the blocked panel kernel behind
/// [`Matrix::matmul`]. `out` holds exactly the rows in `rows`.
///
/// Dispatches once per panel on the resolved [`SimdLevel`]:
///
/// * `Scalar` and `Avx2` run the non-contracted body (`FMA = false`) —
///   vector width never changes *which* scalar operations produce an
///   output element or their order, and rustc does not contract
///   `a*b + c` on its own, so those two tiers return identical bits.
/// * `Fma` and `Avx512` run the body with explicit `f32::mul_add`
///   chains in the reduction. Fused rounding produces (slightly) more
///   accurate but different bits than the scalar tiers. The level is
///   resolved once per process and panels never depend on the thread
///   that runs them, so results remain deterministic on a given
///   machine and bit-identical at any `FD_THREADS`; `FD_SIMD=avx2`
///   restores cross-machine byte equality when needed.
fn matmul_panel(a: &Matrix, b: &Matrix, rows: Range<usize>, out: &mut [f32]) {
    let level = current_simd_level();
    panel_counter(level).inc();
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `detected_simd_level` only reports tiers whose CPU
        // features `is_x86_feature_detected!` verified, and overrides
        // clamp to it; the wrapped bodies have no other requirements.
        match level {
            SimdLevel::Avx512 => return unsafe { matmul_panel_avx512(a, b, rows, out) },
            SimdLevel::Fma => return unsafe { matmul_panel_fma(a, b, rows, out) },
            SimdLevel::Avx2 => return unsafe { matmul_panel_avx2(a, b, rows, out) },
            SimdLevel::Scalar => {}
        }
    }
    matmul_panel_body::<false>(a, b, rows, out)
}

/// The panel body compiled with AVX2 codegen. `#[target_feature]`
/// plus the `inline(always)` body is the no-intrinsics way to let the
/// autovectorizer emit 256-bit code while the rest of the crate keeps
/// the portable baseline ISA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_panel_avx2(a: &Matrix, b: &Matrix, rows: Range<usize>, out: &mut [f32]) {
    matmul_panel_body::<false>(a, b, rows, out)
}

/// The FMA body with AVX2 codegen: explicit `mul_add` chains become
/// `vfmadd` instructions.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_panel_fma(a: &Matrix, b: &Matrix, rows: Range<usize>, out: &mut [f32]) {
    matmul_panel_body::<true>(a, b, rows, out)
}

/// The FMA body with AVX-512F codegen (512-bit vectors, 32 registers).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx2,fma")]
unsafe fn matmul_panel_avx512(a: &Matrix, b: &Matrix, rows: Range<usize>, out: &mut [f32]) {
    matmul_panel_body::<true>(a, b, rows, out)
}

/// Cache-blocked matmul panel: [`ROW_TILE`]-row tiles, the `p`
/// reduction in blocks of four (so four `b` rows stream from L1
/// across the tile), and two output rows per pass so each loaded `b`
/// block feeds eight multiply-adds from registers. The reduction over
/// `p` runs in ascending 4-wide blocks plus a scalar tail — a fixed
/// order per output element, independent of tiling and of which
/// thread runs the panel, which is what makes the parallel split
/// bit-identical to the serial kernel. With `FMA = true` the same
/// fixed-order reduction uses `f32::mul_add` so `target_feature`
/// wrappers can emit fused instructions.
#[inline(always)]
fn matmul_panel_body<const FMA: bool>(a: &Matrix, b: &Matrix, rows: Range<usize>, out: &mut [f32]) {
    let (k, n) = (a.cols(), b.cols());
    let k4 = k & !3;
    let row0 = rows.start;
    let mut t0 = rows.start;
    while t0 < rows.end {
        let t1 = (t0 + ROW_TILE).min(rows.end);
        for p in (0..k4).step_by(4) {
            let b0 = &b.row(p)[..n];
            let b1 = &b.row(p + 1)[..n];
            let b2 = &b.row(p + 2)[..n];
            let b3 = &b.row(p + 3)[..n];
            let mut i = t0;
            while i + 2 <= t1 {
                let (ar0, ar1) = (a.row(i), a.row(i + 1));
                let (x0, x1, x2, x3) = (ar0[p], ar0[p + 1], ar0[p + 2], ar0[p + 3]);
                let (y0, y1, y2, y3) = (ar1[p], ar1[p + 1], ar1[p + 2], ar1[p + 3]);
                let zero0 = x0 == 0.0 && x1 == 0.0 && x2 == 0.0 && x3 == 0.0;
                let zero1 = y0 == 0.0 && y1 == 0.0 && y2 == 0.0 && y3 == 0.0;
                // Zero-skip fast path: sparse BoW rows drop whole blocks.
                if zero0 && zero1 {
                    i += 2;
                    continue;
                }
                let li = i - row0;
                let (left, right) = out.split_at_mut((li + 1) * n);
                let or0 = &mut left[li * n..];
                let or1 = &mut right[..n];
                if FMA {
                    for j in 0..n {
                        or0[j] = x3.mul_add(
                            b3[j],
                            x2.mul_add(b2[j], x1.mul_add(b1[j], x0.mul_add(b0[j], or0[j]))),
                        );
                        or1[j] = y3.mul_add(
                            b3[j],
                            y2.mul_add(b2[j], y1.mul_add(b1[j], y0.mul_add(b0[j], or1[j]))),
                        );
                    }
                } else {
                    for j in 0..n {
                        or0[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
                        or1[j] += y0 * b0[j] + y1 * b1[j] + y2 * b2[j] + y3 * b3[j];
                    }
                }
                i += 2;
            }
            if i < t1 {
                let ar = a.row(i);
                let (x0, x1, x2, x3) = (ar[p], ar[p + 1], ar[p + 2], ar[p + 3]);
                if !(x0 == 0.0 && x1 == 0.0 && x2 == 0.0 && x3 == 0.0) {
                    let or = &mut out[(i - row0) * n..(i - row0 + 1) * n];
                    if FMA {
                        for j in 0..n {
                            or[j] = x3.mul_add(
                                b3[j],
                                x2.mul_add(b2[j], x1.mul_add(b1[j], x0.mul_add(b0[j], or[j]))),
                            );
                        }
                    } else {
                        for j in 0..n {
                            or[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
                        }
                    }
                }
            }
        }
        for p in k4..k {
            let b_row = &b.row(p)[..n];
            for i in t0..t1 {
                let a_ip = a.row(i)[p];
                if a_ip == 0.0 {
                    continue;
                }
                let or = &mut out[(i - row0) * n..(i - row0 + 1) * n];
                if FMA {
                    for j in 0..n {
                        or[j] = a_ip.mul_add(b_row[j], or[j]);
                    }
                } else {
                    for j in 0..n {
                        or[j] += a_ip * b_row[j];
                    }
                }
            }
        }
        t0 = t1;
    }
}

impl Matrix {
    /// Matrix product `self · other` (`m x k` times `k x n`).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: inner dimensions differ, {}x{} vs {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        matmul_calls().inc();
        let mut out = Matrix::zeros(m, n);
        parallel::for_each_row_chunk(m, n, k * n, out.as_mut_slice(), |rows, chunk| {
            matmul_panel(self, other, rows, chunk)
        });
        out
    }

    /// Reference scalar kernel for [`Matrix::matmul`]: single-threaded
    /// ikj order with per-coefficient zero skip. Kept for benches and
    /// blocked-vs-naive parity tests.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: inner dimensions differ, {}x{} vs {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = other.row(p);
                for j in 0..n {
                    out_row[j] += a_ip * b_row[j];
                }
            }
        }
        out
    }

    /// `selfᵀ · other`. Runs as a blocked transpose followed by the
    /// blocked matmul: the fused column-strided walk the naive kernel
    /// used defeats vectorisation, and the `k x m` copy is negligible
    /// next to the `m·k·n` product. The reduction order matches
    /// `self.transpose().matmul(other)` exactly (same kernel), which
    /// the algebra proptests pin down bit-for-bit.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "transpose_matmul: row counts differ, {}x{} vs {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        self.transpose().matmul(other)
    }

    /// Reference scalar kernel for [`Matrix::transpose_matmul`]
    /// (p-outer accumulation, no transpose materialised).
    pub fn transpose_matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "transpose_matmul: row counts differ, {}x{} vs {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a_pi) in a_row.iter().enumerate().take(m) {
                if a_pi == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for j in 0..n {
                    out_row[j] += a_pi * b_row[j];
                }
            }
        }
        out
    }

    /// `self · otherᵀ`. Runs as a blocked transpose of `other` followed
    /// by the blocked matmul: row-times-row dot products serialise the
    /// FP reduction per element, while transposing first turns the
    /// whole product into the register-tiled streaming kernel, and the
    /// `n x k` copy is negligible next to the `m·k·n` product.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_transpose: column counts differ, {}x{} vs {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        self.matmul(&other.transpose())
    }

    /// Reference scalar kernel for [`Matrix::matmul_transpose`]
    /// (single-accumulator dot products).
    pub fn matmul_transpose_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_transpose: column counts differ, {}x{} vs {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, n) = (self.rows(), other.rows());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, out_v) in out_row.iter_mut().enumerate().take(n) {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *out_v = acc;
            }
        }
        out
    }

    /// The explicit transpose `selfᵀ`, tiled so both the read and the
    /// write side touch whole cache lines per tile instead of one
    /// element per line on the strided side.
    pub fn transpose(&self) -> Matrix {
        const TILE: usize = 32;
        let (rows, cols) = (self.rows(), self.cols());
        let mut out = Matrix::zeros(cols, rows);
        let out_slice = out.as_mut_slice();
        let mut rb = 0;
        while rb < rows {
            let r_end = (rb + TILE).min(rows);
            let mut cb = 0;
            while cb < cols {
                let c_end = (cb + TILE).min(cols);
                for r in rb..r_end {
                    let in_row = self.row(r);
                    for c in cb..c_end {
                        out_slice[c * rows + r] = in_row[c];
                    }
                }
                cb = c_end;
            }
            rb = r_end;
        }
        out
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.require_same_shape(other, "add");
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.require_same_shape(other, "sub");
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        self.require_same_shape(other, "mul");
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every entry by `alpha`.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|v| v * alpha)
    }

    /// `self += alpha * other`, in place (the BLAS `axpy`).
    pub fn add_assign_scaled(&mut self, other: &Matrix, alpha: f32) {
        self.require_same_shape(other, "add_assign_scaled");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// `self += other`, in place.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.add_assign_scaled(other, 1.0);
    }

    /// Adds the `1 x n` row vector `bias` to every row of `self`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert!(
            bias.rows() == 1 && bias.cols() == self.cols(),
            "add_row_broadcast: bias must be 1x{}, got {}x{}",
            self.cols(),
            bias.rows(),
            bias.cols()
        );
        let mut out = self.clone();
        for r in 0..out.rows() {
            for (v, &b) in out.row_mut(r).iter_mut().zip(bias.row(0)) {
                *v += b;
            }
        }
        out
    }

    /// Applies `f` to every entry, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix::from_vec(
            self.rows(),
            self.cols(),
            self.as_slice().iter().map(|&v| f(v)).collect(),
        )
    }

    /// Applies `f` to every entry in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.as_mut_slice() {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped matrices entry by entry.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        self.require_same_shape(other, "zip_map");
        Matrix::from_vec(
            self.rows(),
            self.cols(),
            self.as_slice()
                .iter()
                .zip(other.as_slice())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    /// Horizontal concatenation `[self | other]` (same row count).
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "concat_cols: row counts differ, {} vs {}",
            self.rows(),
            other.rows()
        );
        let mut out = Matrix::zeros(self.rows(), self.cols() + other.cols());
        for r in 0..self.rows() {
            let row = out.row_mut(r);
            row[..self.cols()].copy_from_slice(self.row(r));
            row[self.cols()..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertical concatenation (same column count).
    pub fn concat_rows(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "concat_rows: column counts differ, {} vs {}",
            self.cols(),
            other.cols()
        );
        let mut data = Vec::with_capacity(self.len() + other.len());
        data.extend_from_slice(self.as_slice());
        data.extend_from_slice(other.as_slice());
        Matrix::from_vec(self.rows() + other.rows(), self.cols(), data)
    }

    /// Copies rows `[start, start + count)` into a new matrix (one
    /// contiguous memcpy in row-major storage).
    pub fn slice_rows(&self, start: usize, count: usize) -> Matrix {
        assert!(
            start + count <= self.rows(),
            "slice_rows: [{start}, {}) out of {} rows",
            start + count,
            self.rows()
        );
        let cols = self.cols();
        let data = self.as_slice()[start * cols..(start + count) * cols].to_vec();
        Matrix::from_vec(count, cols, data)
    }

    /// Copies columns `[start, start + width)` into a new matrix.
    pub fn slice_cols(&self, start: usize, width: usize) -> Matrix {
        assert!(
            start + width <= self.cols(),
            "slice_cols: [{start}, {}) out of {} columns",
            start + width,
            self.cols()
        );
        let mut out = Matrix::zeros(self.rows(), width);
        for r in 0..self.rows() {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..start + width]);
        }
        out
    }

    /// Dot product of two row vectors (or any same-shaped matrices,
    /// treated as flat).
    pub fn dot(&self, other: &Matrix) -> f32 {
        self.require_same_shape(other, "dot");
        parallel::tree_dot(self.as_slice(), other.as_slice())
    }

    /// Outer product of two row vectors: `selfᵀ · other` for `1 x m` and
    /// `1 x n` inputs, giving `m x n`.
    pub fn outer(&self, other: &Matrix) -> Matrix {
        assert!(
            self.rows() == 1 && other.rows() == 1,
            "outer: expects two row vectors, got {}x{} and {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let mut out = Matrix::zeros(self.cols(), other.cols());
        for (i, &a) in self.row(0).iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let row = out.row_mut(i);
            for (j, &b) in other.row(0).iter().enumerate() {
                row[j] = a * b;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{assert_close, Matrix};

    fn a() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    #[test]
    fn matmul_small() {
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a().matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0], &[2.0, 0.0]]);
        assert_eq!(a.matmul(&b), Matrix::from_rows(&[&[5.0, 1.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul: inner dimensions differ")]
    fn matmul_shape_panic() {
        let _ = a().matmul(&Matrix::zeros(3, 3));
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let x = Matrix::from_fn(4, 3, |r, c| (r + 2 * c) as f32);
        let y = Matrix::from_fn(4, 2, |r, c| (r as f32) - (c as f32) * 0.5);
        assert_close(&x.transpose_matmul(&y), &x.transpose().matmul(&y), 1e-6);
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let x = Matrix::from_fn(2, 5, |r, c| (r * c) as f32 * 0.3 - 1.0);
        let y = Matrix::from_fn(3, 5, |r, c| (r + c) as f32 * 0.7);
        assert_close(&x.matmul_transpose(&y), &x.matmul(&y.transpose()), 1e-6);
    }

    #[test]
    fn transpose_involution() {
        let x = Matrix::from_fn(3, 5, |r, c| (r * 7 + c) as f32);
        assert_eq!(x.transpose().transpose(), x);
    }

    #[test]
    fn elementwise_ops() {
        let b = Matrix::from_rows(&[&[4.0, 3.0], &[2.0, 1.0]]);
        assert_eq!(a().add(&b), Matrix::filled(2, 2, 5.0));
        assert_eq!(a().sub(&b), Matrix::from_rows(&[&[-3.0, -1.0], &[1.0, 3.0]]));
        assert_eq!(a().mul(&b), Matrix::from_rows(&[&[4.0, 6.0], &[6.0, 4.0]]));
        assert_eq!(a().scale(2.0), Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut x = Matrix::ones(1, 3);
        x.add_assign_scaled(&Matrix::row_vector(&[1.0, 2.0, 3.0]), 0.5);
        assert_eq!(x, Matrix::row_vector(&[1.5, 2.0, 2.5]));
        x.add_assign(&Matrix::ones(1, 3));
        assert_eq!(x, Matrix::row_vector(&[2.5, 3.0, 3.5]));
    }

    #[test]
    fn row_broadcast_adds_bias_to_every_row() {
        let bias = Matrix::row_vector(&[10.0, 20.0]);
        let out = a().add_row_broadcast(&bias);
        assert_eq!(out, Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
    }

    #[test]
    #[should_panic(expected = "add_row_broadcast")]
    fn row_broadcast_shape_panic() {
        let _ = a().add_row_broadcast(&Matrix::ones(2, 2));
    }

    #[test]
    fn concat_cols_and_rows() {
        let left = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let right = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let cat = left.concat_cols(&right);
        assert_eq!(cat, Matrix::from_rows(&[&[1.0, 3.0, 4.0], &[2.0, 5.0, 6.0]]));

        let top = Matrix::row_vector(&[1.0, 2.0]);
        let stacked = top.concat_rows(&a());
        assert_eq!(stacked.shape(), (3, 2));
        assert_eq!(stacked.row(0), &[1.0, 2.0]);
        assert_eq!(stacked.row(2), &[3.0, 4.0]);
    }

    #[test]
    fn slice_cols_inverts_concat() {
        let left = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let right = Matrix::from_fn(3, 4, |r, c| (r * c) as f32);
        let cat = left.concat_cols(&right);
        assert_eq!(cat.slice_cols(0, 2), left);
        assert_eq!(cat.slice_cols(2, 4), right);
    }

    #[test]
    fn dot_and_outer() {
        let u = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let v = Matrix::row_vector(&[4.0, 5.0, 6.0]);
        assert_eq!(u.dot(&v), 32.0);
        let o = u.outer(&v);
        assert_eq!(o.shape(), (3, 3));
        assert_eq!(o[(2, 0)], 12.0);
        // outer must agree with uᵀ·v.
        assert_close(&o, &u.transpose().matmul(&v), 1e-6);
    }

    #[test]
    fn map_and_zip_map() {
        let m = a().map(|v| v * v);
        assert_eq!(m, Matrix::from_rows(&[&[1.0, 4.0], &[9.0, 16.0]]));
        let z = a().zip_map(&a(), |x, y| x - y);
        assert_eq!(z, Matrix::zeros(2, 2));
        let mut ip = a();
        ip.map_in_place(|v| -v);
        assert_eq!(ip, a().scale(-1.0));
    }

    #[test]
    fn simd_level_parse_and_names_round_trip() {
        use crate::ops::SimdLevel;
        for level in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Fma, SimdLevel::Avx512] {
            assert_eq!(SimdLevel::parse(level.name()), Some(level));
        }
        assert_eq!(SimdLevel::parse("AVX2 "), Some(SimdLevel::Avx2));
        assert_eq!(SimdLevel::parse("sse9"), None);
        // Clamp: a requested level never exceeds what the CPU has.
        assert!(crate::ops::current_simd_level() <= super::detected_simd_level());
    }

    #[test]
    fn avx2_panel_is_bit_identical_to_scalar() {
        use crate::ops::{with_simd_level, SimdLevel};
        let x = Matrix::from_fn(33, 29, |r, c| ((r * 31 + c * 7) as f32 * 0.193).sin());
        let y = Matrix::from_fn(29, 17, |r, c| ((r * 13 + c * 3) as f32 * 0.457).cos());
        crate::parallel::with_thread_count(1, || {
            let scalar = with_simd_level(SimdLevel::Scalar, || x.matmul(&y));
            let avx2 = with_simd_level(SimdLevel::Avx2, || x.matmul(&y));
            assert_eq!(scalar, avx2, "non-contracted tiers must agree bitwise");
        });
    }

    #[test]
    fn fma_and_avx512_panels_match_scalar_within_tolerance() {
        use crate::ops::{with_simd_level, SimdLevel};
        let x = Matrix::from_fn(40, 64, |r, c| ((r * 17 + c * 5) as f32 * 0.071).sin());
        let y = Matrix::from_fn(64, 24, |r, c| ((r * 3 + c * 11) as f32 * 0.113).cos());
        crate::parallel::with_thread_count(1, || {
            let scalar = with_simd_level(SimdLevel::Scalar, || x.matmul(&y));
            for level in [SimdLevel::Fma, SimdLevel::Avx512] {
                let fused = with_simd_level(level, || x.matmul(&y));
                // Fused rounding differs from scalar, but only by a few
                // ulps per element; and it must be run-to-run stable.
                assert_close(&scalar, &fused, 1e-4);
                let again = with_simd_level(level, || x.matmul(&y));
                assert_eq!(fused, again, "{} panel must be deterministic", level.name());
            }
        });
    }
}

//! Dependency-free deterministic parallelism for the tensor kernels.
//!
//! Built entirely on `std::thread::scope`: no pool crate, no work
//! stealing, no atomics in the data path. Work is split into contiguous
//! row ranges with deterministic split points, and every output row is
//! written by exactly one thread running the same per-row kernel in the
//! same iteration order. Results are therefore bit-identical for any
//! thread count — `FD_THREADS=1` and `FD_THREADS=64` produce the same
//! bytes — and the thread count only changes wall-clock time.
//!
//! The global width is resolved once from the `FD_THREADS` environment
//! variable (default: the machine's available parallelism). Tests pin a
//! width for the current thread with [`with_thread_count`].

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;
use std::time::Instant;

/// Metric handles resolved once per process: registration takes a
/// mutex, so the drivers cache the `&'static` handles here and the hot
/// path pays one relaxed atomic per dispatch.
fn dispatch_counters() -> (&'static fd_obs::Counter, &'static fd_obs::Counter) {
    static HANDLES: OnceLock<(&'static fd_obs::Counter, &'static fd_obs::Counter)> =
        OnceLock::new();
    *HANDLES.get_or_init(|| {
        (fd_obs::counter("tensor.par.dispatch_serial"), fd_obs::counter("tensor.par.dispatch_parallel"))
    })
}

/// Per-shard wall time in microseconds; only spawned shards record, so
/// the serial fast path never reads the clock.
fn shard_hist() -> &'static fd_obs::Histogram {
    static HANDLE: OnceLock<&'static fd_obs::Histogram> = OnceLock::new();
    HANDLE.get_or_init(|| {
        fd_obs::histogram("tensor.par.shard_us", &fd_obs::exponential_buckets(10.0, 4.0, 9))
    })
}

/// Minimum inner-loop operations a kernel must have, per thread, before
/// forking pays for thread spawn and cache-line handoff; anything
/// smaller runs serially on the calling thread. Tuned on the bench
/// suite: spawn+join costs ~10µs, which a thread amortises once it
/// carries a few hundred thousand multiply-adds.
pub const MIN_WORK_PER_THREAD: usize = 1 << 18;

static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// 0 means "no override"; set via [`with_thread_count`].
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn global_threads() -> usize {
    *GLOBAL_THREADS.get_or_init(|| {
        match std::env::var("FD_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    })
}

/// The thread count kernels will use right now: the calling thread's
/// [`with_thread_count`] override if active, else the `FD_THREADS`
/// global.
pub fn current_threads() -> usize {
    let overridden = THREAD_OVERRIDE.with(Cell::get);
    if overridden >= 1 {
        overridden
    } else {
        global_threads()
    }
}

/// Runs `f` with the thread count pinned to `threads` on this thread,
/// restoring the previous setting afterwards (also on panic). This is
/// how the parity tests compare `FD_THREADS` values inside one process.
pub fn with_thread_count<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    assert!(threads >= 1, "with_thread_count: need at least one thread");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|o| o.replace(threads)));
    f()
}

/// Deterministic split of `rows` into `parts` contiguous ranges: the
/// first `rows % parts` ranges get one extra row. Depends only on the
/// two arguments, never on scheduling.
fn split_rows(rows: usize, parts: usize) -> impl Iterator<Item = Range<usize>> {
    let base = rows / parts;
    let extra = rows % parts;
    let mut start = 0;
    (0..parts).map(move |part| {
        let len = base + usize::from(part < extra);
        let range = start..start + len;
        start += len;
        range
    })
}

/// Row-parallel driver for kernels writing a dense `rows x row_width`
/// output. `work_per_row` is the kernel's inner-op estimate for one row
/// (e.g. `k * n` for matmul) and gates the serial fallback. The kernel
/// receives a row range and the exact output slice for those rows; the
/// split hands out disjoint `&mut` chunks, so threads never share an
/// output byte.
pub fn for_each_row_chunk(
    rows: usize,
    row_width: usize,
    work_per_row: usize,
    out: &mut [f32],
    kernel: impl Fn(Range<usize>, &mut [f32]) + Sync,
) {
    assert_eq!(out.len(), rows * row_width, "for_each_row_chunk: output size mismatch");
    let threads = decide_threads(rows, work_per_row);
    let (serial, parallel) = dispatch_counters();
    if threads <= 1 {
        serial.inc();
        kernel(0..rows, out);
        return;
    }
    parallel.inc();
    let shard_us = shard_hist();
    std::thread::scope(|scope| {
        let kernel = &kernel;
        let mut rest = out;
        for range in split_rows(rows, threads) {
            let (chunk, tail) = rest.split_at_mut(range.len() * row_width);
            rest = tail;
            scope.spawn(move || {
                let start = Instant::now();
                kernel(range, chunk);
                shard_us.record(start.elapsed().as_secs_f64() * 1e6);
            });
        }
    });
}

/// Ordered parallel map: `f(0..len)` evaluated across threads, results
/// returned in index order. Used by fd-core to encode independent graph
/// nodes concurrently; `f` must be a pure function of its index for the
/// output to stay deterministic, which every call site guarantees by
/// construction (no shared mutable state compiles past `Sync`).
pub fn par_map<T: Send>(len: usize, work_per_item: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = decide_threads(len, work_per_item);
    let (serial, parallel) = dispatch_counters();
    if threads <= 1 {
        serial.inc();
        return (0..len).map(f).collect();
    }
    parallel.inc();
    let shard_us = shard_hist();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = split_rows(len, threads)
            .map(|range| {
                scope.spawn(move || {
                    let start = Instant::now();
                    let shard = range.map(f).collect::<Vec<T>>();
                    shard_us.record(start.elapsed().as_secs_f64() * 1e6);
                    shard
                })
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("par_map worker panicked"));
        }
        out
    })
}

/// In-place parallel sweep over a mutable slice: each item is handed to
/// `f` exactly once, with the slice split into contiguous chunks across
/// threads. Items are updated independently (disjoint `&mut`), and each
/// item's own update runs sequentially on one thread, so the result is
/// bit-identical for any thread count — this is how the optimiser and
/// the gradient clipper fan per-tensor work across `FD_THREADS`.
pub fn par_for_each<T: Send>(items: &mut [T], work_per_item: usize, f: impl Fn(&mut T) + Sync) {
    let len = items.len();
    let threads = decide_threads(len, work_per_item);
    let (serial, parallel) = dispatch_counters();
    if threads <= 1 {
        serial.inc();
        for item in items.iter_mut() {
            f(item);
        }
        return;
    }
    parallel.inc();
    let shard_us = shard_hist();
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = items;
        for range in split_rows(len, threads) {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            scope.spawn(move || {
                let start = Instant::now();
                for item in chunk.iter_mut() {
                    f(item);
                }
                shard_us.record(start.elapsed().as_secs_f64() * 1e6);
            });
        }
    });
}

fn decide_threads(items: usize, work_per_item: usize) -> usize {
    let threads = current_threads().min(items.max(1));
    if threads <= 1 {
        return 1;
    }
    let total_work = items.saturating_mul(work_per_item);
    if total_work / threads < MIN_WORK_PER_THREAD {
        // Not enough work to amortise forking; shrink until each thread
        // clears the bar (possibly all the way to serial).
        (total_work / MIN_WORK_PER_THREAD).clamp(1, threads)
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_every_row_exactly_once() {
        for rows in [0usize, 1, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8] {
                let ranges: Vec<_> = split_rows(rows, parts).collect();
                assert_eq!(ranges.len(), parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    next = r.end;
                }
                assert_eq!(next, rows, "covers all rows");
                // Deterministic balance: sizes differ by at most one.
                let sizes: Vec<_> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn override_is_scoped_and_panic_safe() {
        let before = current_threads();
        with_thread_count(3, || assert_eq!(current_threads(), 3));
        assert_eq!(current_threads(), before);
        let caught = std::panic::catch_unwind(|| with_thread_count(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_threads(), before, "override restored after panic");
    }

    #[test]
    fn small_work_stays_serial() {
        with_thread_count(8, || {
            assert_eq!(decide_threads(4, 10), 1, "tiny work runs serially");
            assert_eq!(decide_threads(1 << 20, 1 << 10), 8, "big work uses all threads");
            assert_eq!(decide_threads(3, 1 << 30), 3, "capped by item count");
        });
    }

    #[test]
    fn for_each_row_chunk_writes_disjoint_rows() {
        let (rows, width) = (37, 5);
        let mut out = vec![0.0f32; rows * width];
        with_thread_count(4, || {
            for_each_row_chunk(rows, width, MIN_WORK_PER_THREAD, &mut out, |range, chunk| {
                assert_eq!(chunk.len(), range.len() * width);
                for (local, row) in range.clone().enumerate() {
                    for j in 0..width {
                        chunk[local * width + j] = (row * width + j) as f32;
                    }
                }
            });
        });
        let expect: Vec<f32> = (0..rows * width).map(|v| v as f32).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_preserves_order() {
        let serial: Vec<usize> = (0..101).map(|i| i * i).collect();
        for threads in [1, 2, 8] {
            let parallel =
                with_thread_count(threads, || par_map(101, MIN_WORK_PER_THREAD, |i| i * i));
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn zero_rows_is_a_noop() {
        let mut out: Vec<f32> = vec![];
        for_each_row_chunk(0, 4, 1 << 30, &mut out, |range, chunk| {
            assert!(range.is_empty() && chunk.is_empty());
        });
        assert!(par_map(0, 1 << 30, |i| i).is_empty());
    }
}

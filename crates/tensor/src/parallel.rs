//! Dependency-free deterministic parallelism for the tensor kernels.
//!
//! Work is split into contiguous shards with deterministic split points,
//! and every output element is written by exactly one thread running the
//! same per-shard kernel in the same iteration order. Results are
//! therefore bit-identical for any thread count — `FD_THREADS=1` and
//! `FD_THREADS=64` produce the same bytes — and the thread count only
//! changes wall-clock time.
//!
//! Shards execute on a lazily-grown persistent worker pool: a dispatch
//! publishes one type-erased job, participants (the pool workers plus
//! the dispatching caller) claim shard indices with a single
//! `fetch_add`, and the caller blocks until the job drains. Claiming
//! order is scheduling-dependent but can never affect output, because a
//! shard's result depends only on its index. Nested or concurrent
//! dispatch (a kernel that itself dispatches while the pool is busy)
//! falls back to running serially on the calling thread, so the pool
//! cannot deadlock. Compared to the earlier per-call
//! `std::thread::scope` spawn, a dispatch costs a mutex hop and a
//! condvar signal instead of thread creation.
//!
//! Reductions go through fixed-shape trees ([`tree_sum`] and friends):
//! serial partial sums over fixed [`REDUCE_CHUNK`]-element chunks are
//! combined in a data-independent pairwise order, so the sum of a
//! million floats is bit-identical whether one thread or eight computed
//! the partials. Inputs at or below one chunk reduce serially in
//! element order — exactly the bits the pre-tree serial implementation
//! produced, which keeps small-matrix results stable across versions.
//!
//! The global width is resolved once from the `FD_THREADS` environment
//! variable (default: the machine's available parallelism). Tests pin a
//! width for the current thread with [`with_thread_count`].

use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Metric handles resolved once per process: registration takes a
/// mutex, so the drivers cache the `&'static` handles here and the hot
/// path pays one relaxed atomic per dispatch.
fn dispatch_counters() -> (&'static fd_obs::Counter, &'static fd_obs::Counter) {
    static HANDLES: OnceLock<(&'static fd_obs::Counter, &'static fd_obs::Counter)> =
        OnceLock::new();
    *HANDLES.get_or_init(|| {
        (fd_obs::counter("tensor.par.dispatch_serial"), fd_obs::counter("tensor.par.dispatch_parallel"))
    })
}

/// Per-shard wall time in microseconds; only pool-dispatched shards
/// record, so the serial fast path never reads the clock.
fn shard_hist() -> &'static fd_obs::Histogram {
    static HANDLE: OnceLock<&'static fd_obs::Histogram> = OnceLock::new();
    HANDLE.get_or_init(|| {
        fd_obs::histogram("tensor.par.shard_us", &fd_obs::exponential_buckets(10.0, 4.0, 9))
    })
}

/// Minimum inner-loop operations a kernel must have, per thread, before
/// parallel dispatch pays for the handoff; anything smaller runs
/// serially on the calling thread. The persistent pool made a dispatch
/// much cheaper than the old per-call spawn (~10µs), but cache-line
/// handoff still wants a few hundred thousand multiply-adds per shard.
pub const MIN_WORK_PER_THREAD: usize = 1 << 18;

/// Fixed chunk width (elements) for the deterministic reduction trees.
/// Inputs at or below one chunk reduce serially in element order, which
/// keeps small reductions bit-identical to the historical serial code.
pub const REDUCE_CHUNK: usize = 4096;

static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// 0 means "no override"; set via [`with_thread_count`].
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn global_threads() -> usize {
    *GLOBAL_THREADS.get_or_init(|| {
        match std::env::var("FD_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    })
}

/// The thread count kernels will use right now: the calling thread's
/// [`with_thread_count`] override if active, else the `FD_THREADS`
/// global.
pub fn current_threads() -> usize {
    let overridden = THREAD_OVERRIDE.with(Cell::get);
    if overridden >= 1 {
        overridden
    } else {
        global_threads()
    }
}

/// Runs `f` with the thread count pinned to `threads` on this thread,
/// restoring the previous setting afterwards (also on panic). This is
/// how the parity tests compare `FD_THREADS` values inside one process.
pub fn with_thread_count<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    assert!(threads >= 1, "with_thread_count: need at least one thread");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|o| o.replace(threads)));
    f()
}

/// Deterministic split of `rows` into `parts` contiguous ranges: the
/// first `rows % parts` ranges get one extra row. Depends only on the
/// two arguments, never on scheduling.
fn split_rows(rows: usize, parts: usize) -> impl Iterator<Item = Range<usize>> {
    let base = rows / parts;
    let extra = rows % parts;
    let mut start = 0;
    (0..parts).map(move |part| {
        let len = base + usize::from(part < extra);
        let range = start..start + len;
        start += len;
        range
    })
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// Type-erased shard task: a borrowed closure with its lifetime erased
/// into a raw pointer. Soundness: [`pool_run`] blocks until every shard
/// has returned, so the pointee outlives every dereference; afterwards
/// the pointer may dangle, but workers only touch the job's atomics once
/// it is drained (raw pointers, unlike references, are allowed to
/// dangle as long as they are not dereferenced).
struct RawTask(*const (dyn Fn(usize) + Sync));
unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

fn erase<'a>(task: &'a (dyn Fn(usize) + Sync + 'a)) -> RawTask {
    let ptr: *const (dyn Fn(usize) + Sync + 'a) = task;
    RawTask(unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync + 'a), *const (dyn Fn(usize) + Sync + 'static)>(
            ptr,
        )
    })
}

struct Job {
    task: RawTask,
    shards: usize,
    /// Next unclaimed shard index. Claiming order varies with
    /// scheduling, but shard `i` computes the same bytes on any thread,
    /// so the output cannot observe it.
    next: AtomicUsize,
    state: Mutex<JobState>,
    done: Condvar,
}

struct JobState {
    /// Shards not yet finished; the dispatcher waits for zero.
    pending: usize,
    /// First panic payload from any shard, re-thrown on the dispatching
    /// thread so a kernel panic behaves like it did under scoped spawn.
    panic: Option<Box<dyn Any + Send>>,
}

impl Job {
    /// Claims and runs shards until none are left. Every participant —
    /// pool workers and the dispatching caller — runs this same loop.
    fn work(&self) {
        let hist = shard_hist();
        loop {
            let shard = self.next.fetch_add(1, Ordering::Relaxed);
            if shard >= self.shards {
                return;
            }
            let start = Instant::now();
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                // Safety: `shard < shards`, so the dispatcher is still
                // blocked in `wait` and the closure is alive.
                (unsafe { &*self.task.0 })(shard)
            }));
            hist.record(start.elapsed().as_secs_f64() * 1e6);
            let mut state = self.state.lock().unwrap();
            if let Err(payload) = result {
                state.panic.get_or_insert(payload);
            }
            state.pending -= 1;
            if state.pending == 0 {
                drop(state);
                self.done.notify_all();
            }
        }
    }

    fn wait(&self) {
        let mut state = self.state.lock().unwrap();
        while state.pending > 0 {
            state = self.done.wait(state).unwrap();
        }
    }
}

struct Pool {
    /// Publication slot: bumping `generation` under the lock tells
    /// sleeping workers a new job is available.
    slot: Mutex<Slot>,
    wake: Condvar,
    /// Held for the duration of one dispatch. `try_lock` failure means
    /// the pool is already busy — a nested dispatch from inside a
    /// kernel, or a concurrent dispatch from another thread — and the
    /// caller runs its serial path instead of queueing. That fallback
    /// is what makes nested dispatch deadlock-free.
    busy: Mutex<()>,
    /// Detached workers spawned so far; grows lazily, never shrinks.
    workers: AtomicUsize,
}

struct Slot {
    generation: u64,
    job: Option<Arc<Job>>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        slot: Mutex::new(Slot { generation: 0, job: None }),
        wake: Condvar::new(),
        busy: Mutex::new(()),
        workers: AtomicUsize::new(0),
    })
}

fn worker_loop(pool: &'static Pool) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = pool.slot.lock().unwrap();
            loop {
                if slot.generation != seen {
                    seen = slot.generation;
                    if let Some(job) = slot.job.clone() {
                        break job;
                    }
                }
                slot = pool.wake.wait(slot).unwrap();
            }
        };
        job.work();
    }
}

/// Grows the detached worker set to `target` threads. Only the `busy`
/// holder calls this, so the count cannot race. Spawn failure is
/// tolerated: the dispatching caller always participates in the shard
/// loop, so a job completes even with zero workers.
fn ensure_workers(pool: &'static Pool, target: usize) {
    let mut have = pool.workers.load(Ordering::Relaxed);
    while have < target {
        let spawned = std::thread::Builder::new()
            .name(format!("fd-par-{have}"))
            .spawn(move || worker_loop(pool));
        if spawned.is_err() {
            return;
        }
        have = pool.workers.fetch_add(1, Ordering::Relaxed) + 1;
    }
}

/// Runs `task(shard)` for every shard in `0..shards` across the pool,
/// with the caller participating. Returns `false` without running
/// anything when the pool is unavailable (nested or concurrent
/// dispatch), in which case the caller must run its serial path.
fn pool_run(shards: usize, task: &(dyn Fn(usize) + Sync)) -> bool {
    let pool = pool();
    let Ok(_busy) = pool.busy.try_lock() else {
        return false;
    };
    ensure_workers(pool, shards - 1);
    let job = Arc::new(Job {
        task: erase(task),
        shards,
        next: AtomicUsize::new(0),
        state: Mutex::new(JobState { pending: shards, panic: None }),
        done: Condvar::new(),
    });
    {
        let mut slot = pool.slot.lock().unwrap();
        slot.generation += 1;
        slot.job = Some(job.clone());
    }
    pool.wake.notify_all();
    job.work();
    job.wait();
    // Drop the pool's reference before the borrowed closure goes out of
    // scope; late workers that still see the old generation only read
    // the job's atomics, never the task pointer.
    pool.slot.lock().unwrap().job = None;
    let payload = job.state.lock().unwrap().panic.take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
    true
}

/// Raw-pointer wrapper that lets shard closures derive disjoint `&mut`
/// chunks from a shard index. Safety rests on the dispatcher's
/// claim-once guarantee (each shard index is handed to exactly one
/// thread) plus the caller mapping shard indices to disjoint memory.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Row-parallel driver for kernels writing a dense `rows x row_width`
/// output. `work_per_row` is the kernel's inner-op estimate for one row
/// (e.g. `k * n` for matmul) and gates the serial fallback. The kernel
/// receives a row range and the exact output slice for those rows; the
/// split hands out disjoint `&mut` chunks, so threads never share an
/// output byte.
pub fn for_each_row_chunk(
    rows: usize,
    row_width: usize,
    work_per_row: usize,
    out: &mut [f32],
    kernel: impl Fn(Range<usize>, &mut [f32]) + Sync,
) {
    assert_eq!(out.len(), rows * row_width, "for_each_row_chunk: output size mismatch");
    let threads = decide_threads(rows, work_per_row);
    let (serial, parallel) = dispatch_counters();
    if threads > 1 {
        let ranges: Vec<Range<usize>> = split_rows(rows, threads).collect();
        let base = SendPtr(out.as_mut_ptr());
        let task = |shard: usize| {
            let range = ranges[shard].clone();
            // Safety: ranges are disjoint and each shard index is
            // claimed exactly once, so this slice is exclusive.
            let chunk = unsafe {
                std::slice::from_raw_parts_mut(
                    base.get().add(range.start * row_width),
                    range.len() * row_width,
                )
            };
            kernel(range, chunk);
        };
        if pool_run(threads, &task) {
            parallel.inc();
            return;
        }
    }
    serial.inc();
    kernel(0..rows, out);
}

/// Ordered parallel map: `f(0..len)` evaluated across threads, results
/// returned in index order. Used by fd-core to encode independent graph
/// nodes concurrently; `f` must be a pure function of its index for the
/// output to stay deterministic, which every call site guarantees by
/// construction (no shared mutable state compiles past `Sync`).
pub fn par_map<T: Send>(len: usize, work_per_item: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = decide_threads(len, work_per_item);
    let (serial, parallel) = dispatch_counters();
    if threads > 1 {
        let ranges: Vec<Range<usize>> = split_rows(len, threads).collect();
        let mut shards: Vec<Vec<T>> = Vec::new();
        shards.resize_with(threads, Vec::new);
        let base = SendPtr(shards.as_mut_ptr());
        let task = |shard: usize| {
            let collected: Vec<T> = ranges[shard].clone().map(&f).collect();
            // Safety: one writer per shard slot (claim-once).
            unsafe { *base.get().add(shard) = collected };
        };
        if pool_run(threads, &task) {
            parallel.inc();
            let mut out = Vec::with_capacity(len);
            for shard in shards {
                out.extend(shard);
            }
            return out;
        }
    }
    serial.inc();
    (0..len).map(f).collect()
}

/// In-place parallel sweep over a mutable slice: each item is handed to
/// `f` exactly once, with the slice split into contiguous chunks across
/// threads. Items are updated independently (disjoint `&mut`), and each
/// item's own update runs sequentially on one thread, so the result is
/// bit-identical for any thread count — this is how the optimiser and
/// the gradient clipper fan per-tensor work across `FD_THREADS`.
pub fn par_for_each<T: Send>(items: &mut [T], work_per_item: usize, f: impl Fn(&mut T) + Sync) {
    let len = items.len();
    let threads = decide_threads(len, work_per_item);
    let (serial, parallel) = dispatch_counters();
    if threads > 1 {
        let ranges: Vec<Range<usize>> = split_rows(len, threads).collect();
        let base = SendPtr(items.as_mut_ptr());
        let task = |shard: usize| {
            let range = ranges[shard].clone();
            // Safety: disjoint ranges, claim-once shard indices.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(range.start), range.len()) };
            for item in chunk.iter_mut() {
                f(item);
            }
        };
        if pool_run(threads, &task) {
            parallel.inc();
            return;
        }
    }
    serial.inc();
    for item in items.iter_mut() {
        f(item);
    }
}

fn decide_threads(items: usize, work_per_item: usize) -> usize {
    let threads = current_threads().min(items.max(1));
    if threads <= 1 {
        return 1;
    }
    let total_work = items.saturating_mul(work_per_item);
    if total_work / threads < MIN_WORK_PER_THREAD {
        // Not enough work to amortise the handoff; shrink until each
        // thread clears the bar (possibly all the way to serial).
        (total_work / MIN_WORK_PER_THREAD).clamp(1, threads)
    } else {
        threads
    }
}

// ---------------------------------------------------------------------------
// Deterministic tree reductions
// ---------------------------------------------------------------------------

/// Deterministic tree sum: serial partial sums over fixed
/// [`REDUCE_CHUNK`]-element chunks, combined in a data-independent
/// pairwise tree. The tree shape depends only on `xs.len()`, so the
/// result is bit-identical at any thread count — chunks merely evaluate
/// concurrently when the slice is large enough to clear the work floor.
pub fn tree_sum(xs: &[f32]) -> f32 {
    tree_reduce(xs, |chunk| chunk.iter().sum(), |a, b| a + b)
}

/// Deterministic tree sum of squares (the square of the Frobenius /
/// Euclidean norm); same shape guarantees as [`tree_sum`].
pub fn tree_sum_squares(xs: &[f32]) -> f32 {
    tree_reduce(xs, |chunk| chunk.iter().map(|&v| v * v).sum(), |a, b| a + b)
}

/// Largest absolute value via the same fixed tree. `max` is insensitive
/// to association, but the fixed shape keeps the parallel split — and
/// `f32::max`'s NaN-ignoring semantics — deterministic too.
pub fn tree_max_abs(xs: &[f32]) -> f32 {
    tree_reduce(xs, |chunk| chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs())), f32::max)
}

/// Deterministic tree dot product; same shape guarantees as
/// [`tree_sum`].
///
/// # Panics
/// Panics when the slices differ in length.
pub fn tree_dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "tree_dot: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let chunks = a.len().div_ceil(REDUCE_CHUNK);
    let partials = par_map(chunks, REDUCE_CHUNK, |i| {
        let lo = i * REDUCE_CHUNK;
        let hi = (lo + REDUCE_CHUNK).min(a.len());
        a[lo..hi].iter().zip(&b[lo..hi]).map(|(&x, &y)| x * y).sum::<f32>()
    });
    combine_tree(partials, |x, y| x + y)
}

fn tree_reduce(
    xs: &[f32],
    chunk_eval: impl Fn(&[f32]) -> f32 + Sync,
    combine: impl Fn(f32, f32) -> f32,
) -> f32 {
    if xs.is_empty() {
        return chunk_eval(xs);
    }
    let chunks = xs.len().div_ceil(REDUCE_CHUNK);
    let partials = par_map(chunks, REDUCE_CHUNK, |i| {
        let lo = i * REDUCE_CHUNK;
        let hi = (lo + REDUCE_CHUNK).min(xs.len());
        chunk_eval(&xs[lo..hi])
    });
    combine_tree(partials, combine)
}

/// Combines partials in a fixed pairwise binary tree: adjacent pairs
/// fold into the next level until one value remains. The association
/// depends only on `partials.len()`, never on scheduling.
fn combine_tree(mut partials: Vec<f32>, combine: impl Fn(f32, f32) -> f32) -> f32 {
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        let mut it = partials.into_iter();
        while let Some(a) = it.next() {
            next.push(match it.next() {
                Some(b) => combine(a, b),
                None => a,
            });
        }
        partials = next;
    }
    partials[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_every_row_exactly_once() {
        for rows in [0usize, 1, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8] {
                let ranges: Vec<_> = split_rows(rows, parts).collect();
                assert_eq!(ranges.len(), parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    next = r.end;
                }
                assert_eq!(next, rows, "covers all rows");
                // Deterministic balance: sizes differ by at most one.
                let sizes: Vec<_> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn override_is_scoped_and_panic_safe() {
        let before = current_threads();
        with_thread_count(3, || assert_eq!(current_threads(), 3));
        assert_eq!(current_threads(), before);
        let caught = std::panic::catch_unwind(|| with_thread_count(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_threads(), before, "override restored after panic");
    }

    #[test]
    fn small_work_stays_serial() {
        with_thread_count(8, || {
            assert_eq!(decide_threads(4, 10), 1, "tiny work runs serially");
            assert_eq!(decide_threads(1 << 20, 1 << 10), 8, "big work uses all threads");
            assert_eq!(decide_threads(3, 1 << 30), 3, "capped by item count");
        });
    }

    #[test]
    fn for_each_row_chunk_writes_disjoint_rows() {
        let (rows, width) = (37, 5);
        let mut out = vec![0.0f32; rows * width];
        with_thread_count(4, || {
            for_each_row_chunk(rows, width, MIN_WORK_PER_THREAD, &mut out, |range, chunk| {
                assert_eq!(chunk.len(), range.len() * width);
                for (local, row) in range.clone().enumerate() {
                    for j in 0..width {
                        chunk[local * width + j] = (row * width + j) as f32;
                    }
                }
            });
        });
        let expect: Vec<f32> = (0..rows * width).map(|v| v as f32).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_preserves_order() {
        let serial: Vec<usize> = (0..101).map(|i| i * i).collect();
        for threads in [1, 2, 8] {
            let parallel =
                with_thread_count(threads, || par_map(101, MIN_WORK_PER_THREAD, |i| i * i));
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn zero_rows_is_a_noop() {
        let mut out: Vec<f32> = vec![];
        for_each_row_chunk(0, 4, 1 << 30, &mut out, |range, chunk| {
            assert!(range.is_empty() && chunk.is_empty());
        });
        assert!(par_map(0, 1 << 30, |i| i).is_empty());
    }

    #[test]
    fn nested_dispatch_falls_back_to_serial_and_completes() {
        let out = with_thread_count(4, || {
            par_map(8, MIN_WORK_PER_THREAD, |i| {
                // Inner dispatch runs while the pool is busy with the
                // outer job: must fall back to serial, never deadlock.
                par_map(4, MIN_WORK_PER_THREAD, move |j| i * 10 + j)
            })
        });
        let expect: Vec<Vec<usize>> =
            (0..8).map(|i| (0..4).map(|j| i * 10 + j).collect()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn concurrent_dispatch_from_many_threads_is_safe() {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    with_thread_count(4, || {
                        (0..16)
                            .map(|_| par_map(64, MIN_WORK_PER_THREAD, move |i| t * 1000 + i))
                            .collect::<Vec<_>>()
                    })
                })
            })
            .collect();
        for (t, handle) in handles.into_iter().enumerate() {
            let expect: Vec<usize> = (0..64).map(|i| t * 1000 + i).collect();
            for run in handle.join().expect("dispatch thread panicked") {
                assert_eq!(run, expect);
            }
        }
    }

    #[test]
    fn parallel_kernel_panic_propagates_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            with_thread_count(4, || {
                let mut out = vec![0.0f32; 64];
                for_each_row_chunk(64, 1, MIN_WORK_PER_THREAD, &mut out, |range, _| {
                    let _ = range;
                    panic!("kernel boom");
                });
            });
        });
        assert!(caught.is_err(), "kernel panic reaches the dispatching caller");
        // The pool must still dispatch correctly after a panicked job.
        let serial: Vec<usize> = (0..101).map(|i| i * 3).collect();
        let parallel = with_thread_count(4, || par_map(101, MIN_WORK_PER_THREAD, |i| i * 3));
        assert_eq!(parallel, serial);
    }

    /// Deterministic but irregular test values that exercise rounding.
    fn noisy(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.37).sin() * ((i % 97) as f32 - 48.0)).collect()
    }

    #[test]
    fn tree_sum_small_input_matches_serial_bits() {
        // One chunk or less: the tree degenerates to the exact serial
        // left-to-right sum the old implementation used.
        for n in [0usize, 1, 100, REDUCE_CHUNK] {
            let xs = noisy(n);
            assert_eq!(tree_sum(&xs), xs.iter().sum::<f32>(), "n = {n}");
            assert_eq!(
                tree_sum_squares(&xs),
                xs.iter().map(|&v| v * v).sum::<f32>(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn tree_reductions_are_thread_invariant() {
        // Crosses several chunk boundaries, including a partial tail.
        let xs = noisy(3 * REDUCE_CHUNK + 17);
        let ys = noisy(3 * REDUCE_CHUNK + 17);
        let reference = with_thread_count(1, || {
            (tree_sum(&xs), tree_sum_squares(&xs), tree_max_abs(&xs), tree_dot(&xs, &ys))
        });
        for threads in [2usize, 3, 8] {
            let got = with_thread_count(threads, || {
                (tree_sum(&xs), tree_sum_squares(&xs), tree_max_abs(&xs), tree_dot(&xs, &ys))
            });
            assert_eq!(got.0.to_bits(), reference.0.to_bits(), "sum, threads = {threads}");
            assert_eq!(got.1.to_bits(), reference.1.to_bits(), "sumsq, threads = {threads}");
            assert_eq!(got.2.to_bits(), reference.2.to_bits(), "max, threads = {threads}");
            assert_eq!(got.3.to_bits(), reference.3.to_bits(), "dot, threads = {threads}");
        }
    }

    #[test]
    fn combine_tree_shape_is_fixed_pairwise() {
        // ((1+2)+(3+4)) + 5 for five partials — spot-check the shape by
        // tagging partials with disjoint powers of two.
        let got = combine_tree(vec![1.0, 2.0, 4.0, 8.0, 16.0], |a, b| a + b);
        assert_eq!(got, 31.0);
        let got = combine_tree(vec![3.5], |_, _| unreachable!());
        assert_eq!(got, 3.5);
    }
}

//! Int8 weight quantization for the reduced-precision serving path.
//!
//! A [`QuantMatrix`] stores a weight matrix as signed 8-bit integers
//! with one f32 scale per *output column* (`amax(col) / 127`, the
//! symmetric per-channel scheme). Activations are quantized on the fly
//! to 16 bits with one dynamic scale per input row (W8A16: the weights
//! carry the memory-footprint win, the wider activations keep the
//! rounding error dominated by weight rounding alone — pure W8A8
//! roughly doubled the end-to-end score delta). The inner product then
//! runs entirely in integer arithmetic: each `i8 × i16` product is
//! exact in `i32` and the sums accumulate exactly in `i64`, so the
//! accumulation is associative and the result is bit-identical at any
//! `FD_THREADS` *by construction* — no reduction tree needed. Only the
//! two f32 multiplies at the edges (row scale × column scale × integer
//! accumulator) round.
//!
//! Training never touches this module; it exists for `ServeModel`'s
//! opt-in `--precision int8` forward path, which is gated by the
//! score-parity tests in `fd-core` and `fd-serve`.

use crate::{parallel, Matrix};

/// A `k x n` weight matrix quantized to int8 with per-column scales.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    /// Row-major `rows x cols` int8 weights.
    q: Vec<i8>,
    /// Dequantization scale per output column: `amax(col) / 127`, or 0
    /// for an all-zero column.
    col_scales: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl QuantMatrix {
    /// Quantizes `w` symmetrically per column: `q = round(w / scale)`
    /// clamped to `[-127, 127]` with `scale = amax(col) / 127`.
    pub fn from_matrix(w: &Matrix) -> QuantMatrix {
        let (rows, cols) = (w.rows(), w.cols());
        let mut amax = vec![0.0f32; cols];
        for r in 0..rows {
            for (m, &v) in amax.iter_mut().zip(w.row(r)) {
                *m = m.max(v.abs());
            }
        }
        let col_scales: Vec<f32> =
            amax.iter().map(|&m| if m > 0.0 { m / 127.0 } else { 0.0 }).collect();
        let inv: Vec<f32> =
            col_scales.iter().map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 }).collect();
        let mut q = vec![0i8; rows * cols];
        for r in 0..rows {
            for (c, &v) in w.row(r).iter().enumerate() {
                q[r * cols + c] = (v * inv[c]).round().clamp(-127.0, 127.0) as i8;
            }
        }
        QuantMatrix { q, col_scales, rows, cols }
    }

    /// Input dimension (`k`) the quantized weights expect.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Output dimension (`n`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `x · self` for f32 activations `x` (`m x k`): each activation
    /// row gets a dynamic symmetric 16-bit scale (`amax(row) / 32767`),
    /// each `i8 × i16` product is exact in `i32`, and the sums
    /// accumulate exactly in `i64` before the two scales dequantize the
    /// result. Rows run in parallel through the deterministic row
    /// driver; the integer accumulation makes the output bit-identical
    /// at any thread count.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_quant(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.cols(),
            self.rows,
            "matmul_quant: inner dimensions differ, {}x{} vs {}x{}",
            x.rows(),
            x.cols(),
            self.rows,
            self.cols
        );
        let (m, k, n) = (x.rows(), self.rows, self.cols);
        let mut out = Matrix::zeros(m, n);
        parallel::for_each_row_chunk(m, n, k * (n + 2), out.as_mut_slice(), |range, chunk| {
            let mut qx = vec![0i16; k];
            let mut acc = vec![0i64; n];
            for (local, i) in range.enumerate() {
                let xr = x.row(i);
                let amax = xr.iter().fold(0.0f32, |mx, &v| mx.max(v.abs()));
                if amax == 0.0 {
                    // Output row is already zero.
                    continue;
                }
                let sx = amax / 32767.0;
                let inv_sx = 32767.0 / amax;
                for (qv, &v) in qx.iter_mut().zip(xr) {
                    *qv = (v * inv_sx).round().clamp(-32767.0, 32767.0) as i16;
                }
                acc.fill(0);
                for (p, &qv) in qx.iter().enumerate() {
                    if qv == 0 {
                        continue;
                    }
                    let qv = qv as i32;
                    let w_row = &self.q[p * n..(p + 1) * n];
                    for (a, &w) in acc.iter_mut().zip(w_row) {
                        *a += (qv * w as i32) as i64;
                    }
                }
                let out_row = &mut chunk[local * n..(local + 1) * n];
                for ((o, &a), &s) in out_row.iter_mut().zip(&acc).zip(&self.col_scales) {
                    *o = sx * s * a as f32;
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::with_thread_count;

    fn weights(k: usize, n: usize) -> Matrix {
        Matrix::from_fn(k, n, |r, c| ((r * 7 + c * 13) as f32 * 0.137).sin() * 0.4)
    }

    fn acts(m: usize, k: usize) -> Matrix {
        Matrix::from_fn(m, k, |r, c| ((r * 3 + c * 5) as f32 * 0.211).cos())
    }

    #[test]
    fn quant_matmul_tracks_f32_reference() {
        let w = weights(48, 12);
        let x = acts(9, 48);
        let exact = x.matmul(&w);
        let quant = QuantMatrix::from_matrix(&w).matmul_quant(&x);
        // Int8 weight rounding over ~unit-range data (activations carry
        // 16 bits): a few parts in 1e3.
        let scale = exact.max_abs().max(1.0);
        for r in 0..exact.rows() {
            for c in 0..exact.cols() {
                let delta = (exact[(r, c)] - quant[(r, c)]).abs();
                assert!(delta <= 2e-2 * scale, "({r},{c}): {delta} too far");
            }
        }
    }

    #[test]
    fn quant_matmul_is_thread_invariant() {
        let w = QuantMatrix::from_matrix(&weights(64, 20));
        let x = acts(50, 64);
        let reference = with_thread_count(1, || w.matmul_quant(&x));
        for threads in [2usize, 3, 8] {
            let got = with_thread_count(threads, || w.matmul_quant(&x));
            assert_eq!(got, reference, "threads = {threads}");
        }
    }

    #[test]
    fn zero_inputs_and_columns_stay_exact() {
        let mut w = weights(8, 4);
        for r in 0..8 {
            w.row_mut(r)[2] = 0.0; // all-zero column -> scale 0
        }
        let q = QuantMatrix::from_matrix(&w);
        let x = Matrix::zeros(3, 8);
        let out = q.matmul_quant(&x);
        assert_eq!(out, Matrix::zeros(3, 4), "zero activations give exactly zero");
        let out = q.matmul_quant(&acts(3, 8));
        for r in 0..3 {
            assert_eq!(out[(r, 2)], 0.0, "zero weight column gives exactly zero");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn shape_mismatch_panics() {
        let _ = QuantMatrix::from_matrix(&weights(4, 4)).matmul_quant(&acts(2, 5));
    }
}

//! Fallible (`Result`-returning) counterparts of the core kernels, for
//! API boundaries handling untrusted shapes (file loaders, FFI, the CLI).
//! The panicking kernels remain the hot-path API.

use crate::{Matrix, ShapeError};

/// Mismatch raised by a checked binary kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimMismatch {
    /// Operation name ("matmul", "add", …).
    pub op: &'static str,
    /// Left operand shape.
    pub lhs: (usize, usize),
    /// Right operand shape.
    pub rhs: (usize, usize),
}

impl std::fmt::Display for DimMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: incompatible shapes {}x{} and {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl std::error::Error for DimMismatch {}

impl From<ShapeError> for DimMismatch {
    fn from(e: ShapeError) -> Self {
        DimMismatch { op: "from_vec", lhs: (e.rows, e.cols), rhs: (e.len, 1) }
    }
}

impl Matrix {
    /// Checked matrix product.
    pub fn try_matmul(&self, other: &Matrix) -> Result<Matrix, DimMismatch> {
        if self.cols() != other.rows() {
            return Err(DimMismatch { op: "matmul", lhs: self.shape(), rhs: other.shape() });
        }
        Ok(self.matmul(other))
    }

    /// Checked element-wise sum.
    pub fn try_add(&self, other: &Matrix) -> Result<Matrix, DimMismatch> {
        if self.shape() != other.shape() {
            return Err(DimMismatch { op: "add", lhs: self.shape(), rhs: other.shape() });
        }
        Ok(self.add(other))
    }

    /// Checked Hadamard product.
    pub fn try_mul(&self, other: &Matrix) -> Result<Matrix, DimMismatch> {
        if self.shape() != other.shape() {
            return Err(DimMismatch { op: "mul", lhs: self.shape(), rhs: other.shape() });
        }
        Ok(self.mul(other))
    }

    /// Checked column concatenation.
    pub fn try_concat_cols(&self, other: &Matrix) -> Result<Matrix, DimMismatch> {
        if self.rows() != other.rows() {
            return Err(DimMismatch {
                op: "concat_cols",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self.concat_cols(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_paths_match_panicking_kernels() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        assert_eq!(a.try_matmul(&b).unwrap(), a.matmul(&b));
        let c = Matrix::from_rows(&[&[5.0, 6.0]]);
        assert_eq!(a.try_add(&c).unwrap(), a.add(&c));
        assert_eq!(a.try_mul(&c).unwrap(), a.mul(&c));
        assert_eq!(a.try_concat_cols(&c).unwrap(), a.concat_cols(&c));
    }

    #[test]
    fn mismatches_return_descriptive_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = a.try_matmul(&b).unwrap_err();
        assert_eq!(err.op, "matmul");
        assert!(err.to_string().contains("2x3"));
        assert!(a.try_add(&Matrix::zeros(3, 2)).is_err());
        assert!(a.try_mul(&Matrix::zeros(1, 3)).is_err());
        assert!(a.try_concat_cols(&Matrix::zeros(3, 3)).is_err());
    }
}

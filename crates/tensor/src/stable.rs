//! Numerically stable soft-max and log-sum-exp.
//!
//! The credibility heads of every model in this workspace end in a
//! soft-max over 6 (or 2) classes; these kernels subtract the row maximum
//! before exponentiating so large logits never overflow.

use crate::Matrix;

/// Logistic sigmoid that does not overflow for large negative inputs.
///
/// This is the single sigmoid definition of the workspace: the autograd
/// tape and the tape-free batched inference path both call it, so their
/// outputs agree bit for bit.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Stable `log(Σ exp(xᵢ))` over a non-empty slice.
///
/// # Panics
/// Panics on an empty slice.
pub fn log_sum_exp(values: &[f32]) -> f32 {
    assert!(!values.is_empty(), "log_sum_exp: empty input");
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max.is_infinite() && max < 0.0 {
        // All entries are -inf: the sum of exps is 0.
        return f32::NEG_INFINITY;
    }
    let sum: f32 = values.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

/// Replaces `values` with its soft-max, stably.
///
/// # Panics
/// Panics on an empty slice.
pub fn softmax_in_place(values: &mut [f32]) {
    assert!(!values.is_empty(), "softmax_in_place: empty input");
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in values.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    // `sum >= exp(0) = 1` because at least one entry equals the max, so the
    // division is always safe.
    for v in values.iter_mut() {
        *v /= sum;
    }
}

/// Row-wise soft-max of a logits matrix.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        softmax_in_place(out.row_mut(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn softmax_sums_to_one() {
        let mut v = [1.0, 2.0, 3.0];
        softmax_in_place(&mut v);
        let s: f32 = v.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_survives_huge_logits() {
        let mut v = [1000.0, 1001.0, 999.0];
        softmax_in_place(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        let s: f32 = v.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_uniform_on_equal_logits() {
        let mut v = [5.0; 4];
        softmax_in_place(&mut v);
        for x in v {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn log_sum_exp_matches_naive_on_small_values() {
        let v = [0.1f32, -0.3, 0.7];
        let naive = v.iter().map(|x| x.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&v) - naive).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_stable_on_large_values() {
        let v = [800.0f32, 800.0];
        let lse = log_sum_exp(&v);
        assert!((lse - (800.0 + 2.0f32.ln())).abs() < 1e-3);
    }

    #[test]
    fn log_sum_exp_all_neg_inf() {
        assert_eq!(log_sum_exp(&[f32::NEG_INFINITY; 3]), f32::NEG_INFINITY);
    }

    #[test]
    fn softmax_rows_is_per_row() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0], &[100.0, 0.0]]);
        let p = softmax_rows(&logits);
        assert_close(
            &p.row_matrix(0),
            &Matrix::row_vector(&[0.5, 0.5]),
            1e-6,
        );
        assert!(p[(1, 0)] > 0.999);
    }
}

//! Row gather / scatter kernels for graph-structured batching.
//!
//! These are the tensor-level primitives behind the batched training
//! graph: selecting per-node rows out of a `count x hidden` state matrix
//! (head inputs, author states, embedding lookups) and averaging
//! neighbour rows (the diffusion aggregator). The backward directions are
//! the matching scatter-adds.
//!
//! All four kernels process rows in index order with a fixed inner
//! element order, so their output is deterministic and — for the
//! gather/mean forwards — row `i` is bitwise what a per-node computation
//! of that row alone produces.
//!
//! The scatter-adds parallelise by partitioning *destination* rows:
//! every thread scans the full source index list but only writes rows
//! inside its own contiguous destination partition. Within one
//! destination row the contributions still accumulate in source index
//! order, so the result is bitwise the serial kernel's at any
//! `FD_THREADS` — a deterministic alternative to atomics or
//! per-thread shadow buffers.

use crate::{parallel, Matrix};

/// Gathers `rows[i]` of `src` into row `i` of the result; `None` entries
/// yield a zero row (the "no neighbour on this port" case).
///
/// # Panics
/// Panics when an index is out of range.
pub fn gather_rows(src: &Matrix, rows: &[Option<usize>]) -> Matrix {
    for &r in rows.iter().flatten() {
        assert!(r < src.rows(), "gather_rows: row {r} out of {} rows", src.rows());
    }
    let cols = src.cols();
    let mut out = Matrix::zeros(rows.len(), cols);
    parallel::for_each_row_chunk(rows.len(), cols, cols, out.as_mut_slice(), |range, chunk| {
        for (local, i) in range.enumerate() {
            if let Some(r) = rows[i] {
                chunk[local * cols..(local + 1) * cols].copy_from_slice(src.row(r));
            }
        }
    });
    out
}

/// Adjoint of [`gather_rows`]: adds row `i` of `src` into row `rows[i]`
/// of `dst`; `None` entries contribute nothing. Repeated indices
/// accumulate in source index order, which is exactly the gradient of a
/// repeated gather (and bit-identical at any thread count — see the
/// module docs on destination partitioning).
///
/// # Panics
/// Panics on an index out of range or a row-count/width mismatch.
pub fn scatter_add_rows(dst: &mut Matrix, rows: &[Option<usize>], src: &Matrix) {
    assert_eq!(src.rows(), rows.len(), "scatter_add_rows: row-count mismatch");
    assert_eq!(dst.cols(), src.cols(), "scatter_add_rows: width mismatch");
    for &r in rows.iter().flatten() {
        assert!(r < dst.rows(), "scatter_add_rows: row {r} out of {} rows", dst.rows());
    }
    let cols = dst.cols();
    let n_dst = dst.rows();
    // Per destination row: its share of the adds plus its share of the
    // index scan every thread repeats.
    let work_per_row = (rows.len() * (cols + 2)) / n_dst.max(1) + 1;
    parallel::for_each_row_chunk(n_dst, cols, work_per_row, dst.as_mut_slice(), |range, chunk| {
        for (i, &r) in rows.iter().enumerate() {
            if let Some(r) = r {
                if !range.contains(&r) {
                    continue;
                }
                let off = (r - range.start) * cols;
                for (acc, &v) in chunk[off..off + cols].iter_mut().zip(src.row(i)) {
                    *acc += v;
                }
            }
        }
    });
}

/// Row-wise neighbour mean over `src`: row `i` of the result is the mean
/// of the `lists(i)` rows of `src`, replaying the tape aggregator's
/// (`mean_n`) arithmetic exactly — start from the first listed row, `+=`
/// the rest in list order, then multiply by `1/len`. Empty lists yield a
/// zero row, matching the tape path's zero-leaf fallback.
pub fn mean_rows<'a>(
    src: &Matrix,
    n: usize,
    lists: impl Fn(usize) -> &'a [usize] + Sync,
) -> Matrix {
    let cols = src.cols();
    let mut out = Matrix::zeros(n, cols);
    parallel::for_each_row_chunk(n, cols, 4 * cols, out.as_mut_slice(), |range, chunk| {
        for (local, i) in range.enumerate() {
            let list = lists(i);
            let Some((&first, rest)) = list.split_first() else { continue };
            let row = &mut chunk[local * cols..(local + 1) * cols];
            row.copy_from_slice(src.row(first));
            for &j in rest {
                for (acc, &v) in row.iter_mut().zip(src.row(j)) {
                    *acc += v;
                }
            }
            let inv = 1.0 / list.len() as f32;
            for acc in row.iter_mut() {
                *acc *= inv;
            }
        }
    });
    out
}

/// Adjoint of [`mean_rows`]: for every output row `i`, adds
/// `g.row(i) / lists(i).len()` into each listed row of `dst` — the same
/// per-member share `mean_n`'s backward distributes.
///
/// # Panics
/// Panics when a listed index is out of range.
pub fn scatter_add_mean_rows<'a>(
    dst: &mut Matrix,
    g: &Matrix,
    lists: impl Fn(usize) -> &'a [usize] + Sync,
) {
    assert_eq!(dst.cols(), g.cols(), "scatter_add_mean_rows: width mismatch");
    for i in 0..g.rows() {
        for &j in lists(i) {
            assert!(j < dst.rows(), "scatter_add_mean_rows: row {j} out of {} rows", dst.rows());
        }
    }
    let cols = dst.cols();
    let n_dst = dst.rows();
    let work_per_row = (g.rows() * (cols + 2)) / n_dst.max(1) + 1;
    parallel::for_each_row_chunk(n_dst, cols, work_per_row, dst.as_mut_slice(), |range, chunk| {
        for i in 0..g.rows() {
            let list = lists(i);
            if list.is_empty() {
                continue;
            }
            let inv = 1.0 / list.len() as f32;
            for &j in list {
                if !range.contains(&j) {
                    continue;
                }
                let off = (j - range.start) * cols;
                for (acc, &v) in chunk[off..off + cols].iter_mut().zip(g.row(i)) {
                    *acc += v * inv;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])
    }

    #[test]
    fn gather_copies_and_zeroes() {
        let out = gather_rows(&src(), &[Some(2), None, Some(0), Some(2)]);
        let expect =
            Matrix::from_rows(&[&[5.0, 6.0], &[0.0, 0.0], &[1.0, 2.0], &[5.0, 6.0]]);
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "out of 3 rows")]
    fn gather_rejects_out_of_range() {
        let _ = gather_rows(&src(), &[Some(3)]);
    }

    #[test]
    fn scatter_accumulates_repeats() {
        let mut dst = Matrix::zeros(3, 2);
        let g = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[4.0, 4.0]]);
        scatter_add_rows(&mut dst, &[Some(1), None, Some(1)], &g);
        let expect = Matrix::from_rows(&[&[0.0, 0.0], &[5.0, 5.0], &[0.0, 0.0]]);
        assert_eq!(dst, expect);
    }

    #[test]
    fn mean_rows_matches_manual_mean_and_zeroes_empties() {
        let lists: Vec<Vec<usize>> = vec![vec![0, 2], vec![], vec![1]];
        let out = mean_rows(&src(), 3, |i| &lists[i]);
        let expect = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0], &[3.0, 4.0]]);
        assert_eq!(out, expect);
    }

    #[test]
    fn scatter_mean_distributes_share() {
        let lists: Vec<Vec<usize>> = vec![vec![0, 2], vec![2]];
        let g = Matrix::from_rows(&[&[2.0, 4.0], &[1.0, 1.0]]);
        let mut dst = Matrix::zeros(3, 2);
        scatter_add_mean_rows(&mut dst, &g, |i| &lists[i]);
        let expect = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 0.0], &[2.0, 3.0]]);
        assert_eq!(dst, expect);
    }

    #[test]
    fn scatter_adds_are_thread_invariant_at_scale() {
        use crate::parallel::with_thread_count;
        let (n_dst, cols, m) = (512, 64, 20_000);
        let src = Matrix::from_fn(m, cols, |r, c| ((r * 13 + c * 7) as f32 * 0.173).sin());
        let rows: Vec<Option<usize>> =
            (0..m).map(|i| if i % 17 == 0 { None } else { Some((i * 31) % n_dst) }).collect();
        let lists: Vec<Vec<usize>> =
            (0..m).map(|i| ((i % 5)..(i % 5 + i % 4)).map(|j| (i * 7 + j) % n_dst).collect()).collect();
        let reference = with_thread_count(1, || {
            let mut dst = Matrix::zeros(n_dst, cols);
            scatter_add_rows(&mut dst, &rows, &src);
            let mut dst_mean = Matrix::zeros(n_dst, cols);
            scatter_add_mean_rows(&mut dst_mean, &src, |i| &lists[i]);
            (dst, dst_mean)
        });
        for threads in [2usize, 3, 8] {
            let got = with_thread_count(threads, || {
                let mut dst = Matrix::zeros(n_dst, cols);
                scatter_add_rows(&mut dst, &rows, &src);
                let mut dst_mean = Matrix::zeros(n_dst, cols);
                scatter_add_mean_rows(&mut dst_mean, &src, |i| &lists[i]);
                (dst, dst_mean)
            });
            assert_eq!(got.0, reference.0, "scatter_add_rows, threads = {threads}");
            assert_eq!(got.1, reference.1, "scatter_add_mean_rows, threads = {threads}");
        }
    }

    #[test]
    fn gather_then_scatter_roundtrips_identity_lists() {
        let s = src();
        let rows: Vec<Option<usize>> = (0..3).map(Some).collect();
        let g = gather_rows(&s, &rows);
        let mut dst = Matrix::zeros(3, 2);
        scatter_add_rows(&mut dst, &rows, &g);
        assert_eq!(dst, s);
    }
}

//! The owned dense matrix type and its constructors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Error returned by the fallible constructors when the element count does
/// not match the requested shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Requested number of rows.
    pub rows: usize,
    /// Requested number of columns.
    pub cols: usize,
    /// Number of elements actually supplied.
    pub len: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape {}x{} requires {} elements, got {}",
            self.rows,
            self.cols,
            self.rows * self.cols,
            self.len
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense, row-major `f32` matrix.
///
/// Row vectors (`1 x n`) double as the vector type throughout the
/// workspace; there is deliberately no separate `Vector` struct.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows x cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// A `rows x cols` matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major element vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`; use [`Matrix::try_from_vec`]
    /// for untrusted input.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        Self::try_from_vec(rows, cols, data)
            .unwrap_or_else(|e| panic!("Matrix::from_vec: {e}"))
    }

    /// Fallible version of [`Matrix::from_vec`].
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError { rows, cols, len: data.len() });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from row slices; all rows must share a length.
    ///
    /// # Panics
    /// Panics if the rows are ragged or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: no rows supplied");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "Matrix::from_rows: row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// A `1 x n` row vector copied from `slice`.
    pub fn row_vector(slice: &[f32]) -> Self {
        Self { rows: 1, cols: slice.len(), data: slice.to_vec() }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major elements.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "Matrix::row: index {r} out of {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "Matrix::row_mut: index {r} out of {} rows", self.rows);
        let cols = self.cols;
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Copies row `r` out as a `1 x cols` matrix.
    pub fn row_matrix(&self, r: usize) -> Matrix {
        Matrix::row_vector(self.row(r))
    }

    /// Column `c` collected into a `Vec`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "Matrix::col: index {c} out of {} cols", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// True when the matrix is a single row.
    #[inline]
    pub fn is_row_vector(&self) -> bool {
        self.rows == 1
    }

    /// True when every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Checks that `self` and `other` share a shape, panicking with a
    /// message that names `op` otherwise. Used by the element-wise kernels.
    #[inline]
    pub(crate) fn require_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "{op}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        // Clamp output so debug prints of big weight matrices stay readable.
        const MAX_DIM: usize = 8;
        for r in 0..self.rows.min(MAX_DIM) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(MAX_DIM) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:+.4}", self[(r, c)])?;
            }
            if self.cols > MAX_DIM {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > MAX_DIM {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_filled() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let o = Matrix::ones(3, 2);
        assert!(o.as_slice().iter().all(|&v| v == 1.0));
        let f = Matrix::filled(1, 4, 2.5);
        assert_eq!(f.as_slice(), &[2.5; 4]);
    }

    #[test]
    fn identity_diagonal() {
        let i = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn try_from_vec_reports_shape_error() {
        let err = Matrix::try_from_vec(2, 3, vec![0.0; 5]).unwrap_err();
        assert_eq!(err, ShapeError { rows: 2, cols: 3, len: 5 });
        assert!(err.to_string().contains("2x3"));
    }

    #[test]
    #[should_panic(expected = "Matrix::from_vec")]
    fn from_vec_panics_on_bad_len() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn from_rows_and_row_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0, 5.0]);
        assert_eq!(m.row_matrix(2), Matrix::row_vector(&[5.0, 6.0]));
    }

    #[test]
    #[should_panic(expected = "row 1 has length 2")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1).copy_from_slice(&[7.0, 8.0]);
        assert_eq!(m[(1, 0)], 7.0);
        assert_eq!(m[(1, 1)], 8.0);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        let mut m = Matrix::ones(2, 2);
        assert!(m.all_finite());
        m[(0, 0)] = f32::NAN;
        assert!(!m.all_finite());
        m[(0, 0)] = f32::INFINITY;
        assert!(!m.all_finite());
    }

    #[test]
    fn debug_output_is_bounded() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{m:?}");
        assert!(s.lines().count() < 15, "debug print should clamp large matrices");
    }

    #[test]
    fn serde_roundtrip() {
        let m = Matrix::from_fn(3, 4, |r, c| r as f32 - c as f32);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

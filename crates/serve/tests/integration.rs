//! End-to-end tests against a live server on localhost: concurrent
//! clients must get bitwise-identical answers to sequential scoring,
//! hostile input must map to 4xx (never a crash), and graceful
//! shutdown must complete in-flight requests.

use fd_core::{FakeDetector, FakeDetectorConfig, TrainedFakeDetector};
use fd_data::{
    generate, Corpus, CvSplits, ExperimentContext, ExplicitFeatures, GeneratorConfig, LabelMode,
    TokenizedCorpus, TrainSets,
};
use fd_serve::{HttpClient, Precision, ServeConfig, ServeModel, Server};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const EXPLICIT_DIM: usize = 30;
const SEQ_LEN: usize = 8;
const MAX_VOCAB: usize = 2000;

/// One tiny training run shared by every test (training dominates the
/// suite's runtime; serving itself is cheap). The trained weights are
/// kept as JSON so both precision variants can be built from the same
/// run.
fn parts() -> &'static (Corpus, String, TrainSets) {
    static PARTS: OnceLock<(Corpus, String, TrainSets)> = OnceLock::new();
    PARTS.get_or_init(|| {
        let seed = 7;
        let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 10, &mut rng).fold(0).0,
        };
        let tokenized = TokenizedCorpus::build(&corpus, SEQ_LEN, MAX_VOCAB);
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, EXPLICIT_DIM);
        let ctx = ExperimentContext {
            corpus: &corpus,
            tokenized: &tokenized,
            explicit: &explicit,
            train: &train,
            mode: LabelMode::Binary,
            seed,
        };
        let config = FakeDetectorConfig {
            epochs: 1,
            validation_fraction: 0.0,
            ..FakeDetectorConfig::default()
        };
        let trained = FakeDetector::new(config).fit(&ctx);
        (corpus, trained.to_json(), train)
    })
}

fn build_model(precision: Precision) -> Arc<ServeModel> {
    let (corpus, trained_json, train) = parts();
    let trained = TrainedFakeDetector::from_json(trained_json).expect("weights round-trip");
    Arc::new(
        ServeModel::new(
            corpus.clone(),
            trained,
            train.clone(),
            LabelMode::Binary,
            EXPLICIT_DIM,
            SEQ_LEN,
            MAX_VOCAB,
        )
        .with_precision(precision),
    )
}

fn model() -> Arc<ServeModel> {
    static MODEL: OnceLock<Arc<ServeModel>> = OnceLock::new();
    MODEL.get_or_init(|| build_model(Precision::F32)).clone()
}

fn start(config: &ServeConfig) -> (Server, String) {
    let server = Server::start(model(), config).expect("start server");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn ephemeral() -> ServeConfig {
    ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() }
}

fn client(addr: &str) -> HttpClient {
    let mut client = HttpClient::connect(addr).expect("connect");
    client.set_timeout(Duration::from_secs(30)).expect("timeout");
    client
}

fn body_for(i: usize) -> String {
    let (_, creators, subjects) = model().corpus_sizes();
    format!(
        "{{\"text\":\"claim {i} about the budget deficit and medicare\",\"creator\":{},\"subjects\":[{}]}}",
        i % creators,
        i % subjects
    )
}

#[test]
fn concurrent_clients_get_bitwise_identical_responses() {
    let (server, addr) = start(&ephemeral());
    let (clients, per_client) = (8, 6);
    let total = clients * per_client;
    let bodies: Vec<String> = (0..total).map(body_for).collect();

    // Sequential reference: every request scored alone.
    let mut sequential = client(&addr);
    let reference: Vec<String> = bodies
        .iter()
        .map(|b| {
            let (status, response) = sequential.post("/v1/predict", b).expect("post");
            assert_eq!(status, 200, "{response}");
            response
        })
        .collect();

    // The same requests, concurrently, co-batched by the server.
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let chunk: Vec<(usize, String)> = (c * per_client..(c + 1) * per_client)
                .map(|i| (i, bodies[i].clone()))
                .collect();
            std::thread::spawn(move || {
                let mut client = client(&addr);
                chunk
                    .into_iter()
                    .map(|(i, body)| (i, client.post("/v1/predict", &body).expect("post")))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for worker in workers {
        for (i, (status, response)) in worker.join().expect("client thread") {
            assert_eq!(status, 200, "request {i}: {response}");
            assert_eq!(response, reference[i], "request {i}: batched response drifted");
        }
    }

    // predict_batch agrees with predict: same probabilities, grouped.
    let batch_body = format!(
        "{{\"requests\":[{}]}}",
        bodies[..3].join(",")
    );
    let (status, response) = client(&addr).post("/v1/predict_batch", &batch_body).expect("post");
    assert_eq!(status, 200, "{response}");
    for single in &reference[..3] {
        let probs = single
            .split("\"probabilities\":")
            .nth(1)
            .and_then(|s| s.split(']').next())
            .expect("probabilities in single response");
        assert!(
            response.contains(probs),
            "batch response missing probabilities {probs}: {response}"
        );
    }
    server.shutdown();
}

#[test]
fn hostile_input_gets_4xx_and_never_kills_the_server() {
    let config = ServeConfig { max_body_bytes: 2048, ..ephemeral() };
    let (server, addr) = start(&config);

    // Malformed JSON.
    let (status, response) = client(&addr).post("/v1/predict", "not json").expect("post");
    assert_eq!(status, 400, "{response}");
    // Valid JSON, missing required field.
    let (status, _) = client(&addr).post("/v1/predict", "{\"creator\":1}").expect("post");
    assert_eq!(status, 400);
    // Unknown node type.
    let (status, _) = client(&addr)
        .post("/v1/predict", "{\"node_type\":\"moderator\",\"text\":\"x\"}")
        .expect("post");
    assert_eq!(status, 400);
    // Neighbour index out of range.
    let (status, response) = client(&addr)
        .post("/v1/predict", "{\"text\":\"x\",\"creator\":999999}")
        .expect("post");
    assert_eq!(status, 400, "{response}");
    // Wrong neighbour kind for the node type.
    let (status, _) = client(&addr)
        .post("/v1/predict", "{\"text\":\"x\",\"articles\":[0]}")
        .expect("post");
    assert_eq!(status, 400);
    // Oversized body.
    let huge = format!("{{\"text\":\"{}\"}}", "y".repeat(4096));
    let (status, _) = client(&addr).post("/v1/predict", &huge).expect("post");
    assert_eq!(status, 413);
    // Not HTTP at all.
    let (status, _) = client(&addr).raw(b"SING TO ME MUSE\r\n\r\n").expect("raw");
    assert_eq!(status, 400);
    // Unknown path / wrong method.
    let (status, _) = client(&addr).get("/v2/oracle").expect("get");
    assert_eq!(status, 404);
    let (status, _) = client(&addr)
        .raw(b"DELETE /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
        .expect("raw");
    assert_eq!(status, 405);

    // After all of that the server still answers.
    let (status, response) = client(&addr).get("/healthz").expect("get");
    assert_eq!(status, 200);
    assert!(response.contains("\"status\":\"ok\""), "{response}");
    let (status, response) = client(&addr).post("/v1/predict", &body_for(0)).expect("post");
    assert_eq!(status, 200, "{response}");
    server.shutdown();
}

#[test]
fn metrics_endpoint_reports_serve_counters() {
    let (server, addr) = start(&ephemeral());
    let (status, response) = client(&addr).post("/v1/predict", &body_for(1)).expect("post");
    assert_eq!(status, 200, "{response}");

    // Default exposition is Prometheus text, with the matching content
    // type, and it must pass fd-obs's own format validator.
    let (status, exposition, headers) = client(&addr).get_with_headers("/metrics").expect("get");
    assert_eq!(status, 200);
    let content_type = |headers: &[(String, String)]| {
        headers.iter().find(|(n, _)| n == "content-type").map(|(_, v)| v.clone())
    };
    assert_eq!(
        content_type(&headers).as_deref(),
        Some(fd_obs::PROMETHEUS_CONTENT_TYPE),
        "Prometheus exposition must carry the 0.0.4 content type"
    );
    for key in ["fd_serve_requests_total", "fd_serve_batch_size_bucket", "fd_serve_queue_depth"] {
        assert!(exposition.contains(key), "prometheus exposition missing {key}:\n{exposition}");
    }
    let samples = fd_obs::validate_prometheus(&exposition).expect("parseable exposition");
    assert!(samples > 0, "exposition carried no samples");

    // The JSON snapshot survives behind ?format=json with its keys and
    // content type intact.
    let (status, snapshot, headers) =
        client(&addr).get_with_headers("/metrics?format=json").expect("get");
    assert_eq!(status, 200);
    assert_eq!(content_type(&headers).as_deref(), Some("application/json"));
    for key in ["serve.requests", "serve.batch_size", "serve.request_us", "serve.queue_depth"] {
        assert!(snapshot.contains(key), "metrics snapshot missing {key}");
    }
    server.shutdown();
}

#[test]
fn request_id_is_echoed_on_responses() {
    let (server, addr) = start(&ephemeral());
    let (status, _, headers) = client(&addr)
        .post_with_headers("/v1/predict", &body_for(3), &[("x-request-id", "req-echo-42")])
        .expect("post");
    assert_eq!(status, 200);
    let echoed = headers.iter().find(|(n, _)| n == "x-request-id").map(|(_, v)| v.as_str());
    assert_eq!(echoed, Some("req-echo-42"), "inbound request id must be echoed");

    // Without an inbound id the server still answers with one — the
    // hex trace id — so every response is correlatable.
    let (status, _, headers) =
        client(&addr).post_with_headers("/v1/predict", &body_for(3), &[]).expect("post");
    assert_eq!(status, 200);
    let generated = headers.iter().find(|(n, _)| n == "x-request-id").map(|(_, v)| v.as_str());
    let generated = generated.expect("generated x-request-id");
    assert_eq!(generated.len(), 16, "generated id is the 16-hex-digit trace id: {generated}");
    assert!(generated.chars().all(|c| c.is_ascii_hexdigit()), "{generated}");
    server.shutdown();
}

#[test]
fn one_request_produces_one_linked_trace_across_the_batcher() {
    // Tracing state is process-global; enable it for this test and pick
    // the trace out of the shared ring by the trace id that the known
    // X-Request-Id deterministically hashes to. Other tests running in
    // parallel only add spans under different trace ids.
    fd_obs::trace::set_enabled(true);
    fd_obs::trace::set_sample(1);
    let request_id = "trace-e2e-7f3a";
    let expected_trace = fd_obs::TraceCtx::from_request_id(request_id).trace_id;

    // --max-batch 8: the request rides the micro-batching path, so its
    // queue wait and scoring happen on the batcher thread — the spans
    // must still land in the handler's trace.
    let config = ServeConfig { max_batch: 8, ..ephemeral() };
    let (server, addr) = start(&config);
    let batch_body = format!("{{\"requests\":[{},{}]}}", body_for(4), body_for(5));
    let (status, response, headers) = client(&addr)
        .post_with_headers("/v1/predict_batch", &batch_body, &[("x-request-id", request_id)])
        .expect("post");
    assert_eq!(status, 200, "{response}");
    assert_eq!(
        headers.iter().find(|(n, _)| n == "x-request-id").map(|(_, v)| v.as_str()),
        Some(request_id)
    );
    server.shutdown();
    fd_obs::trace::set_enabled(false);

    let spans: Vec<fd_obs::trace::Span> = fd_obs::trace::snapshot_spans()
        .into_iter()
        .filter(|s| s.trace_id == expected_trace)
        .collect();
    let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
    for required in
        ["request", "http.parse", "queue.wait", "batch.assemble", "batch.score", "respond"]
    {
        assert!(names.contains(&required), "trace missing {required} span, got {names:?}");
    }
    // One trace: a single root, and every other span is its direct
    // child — queue wait and scoring recorded by the batcher thread
    // link back to the span the handler thread opened.
    let root = spans.iter().find(|s| s.name == "request").expect("root span");
    assert_eq!(root.parent_id, 0, "request span must be the root");
    for span in spans.iter().filter(|s| s.name != "request") {
        assert_eq!(
            span.parent_id, root.span_id,
            "{} span must be parented to the request root",
            span.name
        );
    }
    // The Chrome export keeps them one loadable trace.
    let json = fd_obs::trace::chrome_json(&spans);
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(json.contains(&format!("{expected_trace:016x}")), "{json}");
}

#[test]
fn graceful_shutdown_completes_in_flight_requests() {
    // A long co-batching window, so a lone request sits in the queue
    // until shutdown flushes it — well before the window expires.
    let config = ServeConfig { max_delay_ms: 5000, ..ephemeral() };
    let (server, addr) = start(&config);

    let reference = {
        // Scored via a throwaway server with a normal window, to know
        // the expected answer independently of the drain path.
        let (fast, fast_addr) = start(&ephemeral());
        let (status, response) = client(&fast_addr).post("/v1/predict", &body_for(2)).expect("post");
        assert_eq!(status, 200, "{response}");
        fast.shutdown();
        response
    };

    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = client(&addr);
            let sent = Instant::now();
            let result = client.post("/v1/predict", &body_for(2)).expect("post");
            (result, sent.elapsed())
        })
    };
    // Let the request reach the queue, then shut down underneath it.
    std::thread::sleep(Duration::from_millis(300));
    server.shutdown();
    let ((status, response), waited) = in_flight.join().expect("in-flight client");
    assert_eq!(status, 200, "in-flight request must be answered, got: {response}");
    assert_eq!(response, reference, "drained response drifted");
    assert!(
        waited < Duration::from_millis(4500),
        "shutdown must flush the queue, not wait out the {}ms window (took {waited:?})",
        5000
    );
}

/// Pulls the `"probabilities":[…]` array out of a predict response.
fn parse_probabilities(response: &str) -> Vec<f32> {
    response
        .split("\"probabilities\":[")
        .nth(1)
        .and_then(|s| s.split(']').next())
        .expect("probabilities in response")
        .split(',')
        .map(|v| v.trim().parse::<f32>().expect("float"))
        .collect()
}

#[test]
fn endpoint_round_trip_agrees_at_each_precision() {
    // One server per precision, built from the same training run; the
    // wire answers must agree within the quantization parity gate
    // (identical arg-max labels, max |Δscore| ≤ 4e-3), and /healthz
    // must report which path is live.
    let f32_server = Server::start(model(), &ephemeral()).expect("start f32");
    let int8_server =
        Server::start(build_model(Precision::Int8), &ephemeral()).expect("start int8");
    let f32_addr = f32_server.local_addr().to_string();
    let int8_addr = int8_server.local_addr().to_string();

    for (addr, name) in [(&f32_addr, "f32"), (&int8_addr, "int8")] {
        let (status, health) = client(addr).get("/healthz").expect("get");
        assert_eq!(status, 200, "{health}");
        assert!(
            health.contains(&format!("\"precision\":\"{name}\"")),
            "healthz must report the serving precision: {health}"
        );
    }

    // The f32 endpoint is the exact reference: bitwise-equal to direct
    // in-process scoring (same JSON formatting path), so checking the
    // int8 endpoint against it checks the whole wire round-trip.
    for i in 0..8 {
        let body = body_for(i);
        let (status, exact) = client(&f32_addr).post("/v1/predict", &body).expect("post");
        assert_eq!(status, 200, "{exact}");
        let (status, quant) = client(&int8_addr).post("/v1/predict", &body).expect("post");
        assert_eq!(status, 200, "{quant}");

        let pe = parse_probabilities(&exact);
        let pq = parse_probabilities(&quant);
        assert_eq!(pe.len(), pq.len(), "request {i}");
        let argmax = |p: &[f32]| {
            p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(j, _)| j).unwrap()
        };
        assert_eq!(argmax(&pe), argmax(&pq), "request {i}: label flipped under int8");
        for (a, b) in pe.iter().zip(&pq) {
            assert!(
                (a - b).abs() <= 4e-3,
                "request {i}: |Δscore| {} exceeds the parity gate",
                (a - b).abs()
            );
        }
    }
    f32_server.shutdown();
    int8_server.shutdown();
}

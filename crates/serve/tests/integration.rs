//! End-to-end tests against a live server on localhost: concurrent
//! clients must get bitwise-identical answers to sequential scoring,
//! hostile input must map to 4xx (never a crash), and graceful
//! shutdown must complete in-flight requests.

use fd_core::{FakeDetector, FakeDetectorConfig, TrainedFakeDetector};
use fd_data::{
    generate, Corpus, CvSplits, ExperimentContext, ExplicitFeatures, GeneratorConfig, LabelMode,
    TokenizedCorpus, TrainSets,
};
use fd_serve::{HttpClient, Precision, ServeConfig, ServeModel, Server};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const EXPLICIT_DIM: usize = 30;
const SEQ_LEN: usize = 8;
const MAX_VOCAB: usize = 2000;

/// One tiny training run shared by every test (training dominates the
/// suite's runtime; serving itself is cheap). The trained weights are
/// kept as JSON so both precision variants can be built from the same
/// run.
fn parts() -> &'static (Corpus, String, TrainSets) {
    static PARTS: OnceLock<(Corpus, String, TrainSets)> = OnceLock::new();
    PARTS.get_or_init(|| {
        let seed = 7;
        let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 10, &mut rng).fold(0).0,
        };
        let tokenized = TokenizedCorpus::build(&corpus, SEQ_LEN, MAX_VOCAB);
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, EXPLICIT_DIM);
        let ctx = ExperimentContext {
            corpus: &corpus,
            tokenized: &tokenized,
            explicit: &explicit,
            train: &train,
            mode: LabelMode::Binary,
            seed,
        };
        let config = FakeDetectorConfig {
            epochs: 1,
            validation_fraction: 0.0,
            ..FakeDetectorConfig::default()
        };
        let trained = FakeDetector::new(config).fit(&ctx);
        (corpus, trained.to_json(), train)
    })
}

fn build_model(precision: Precision) -> Arc<ServeModel> {
    let (corpus, trained_json, train) = parts();
    let trained = TrainedFakeDetector::from_json(trained_json).expect("weights round-trip");
    Arc::new(
        ServeModel::new(
            corpus.clone(),
            trained,
            train.clone(),
            LabelMode::Binary,
            EXPLICIT_DIM,
            SEQ_LEN,
            MAX_VOCAB,
        )
        .with_precision(precision),
    )
}

fn model() -> Arc<ServeModel> {
    static MODEL: OnceLock<Arc<ServeModel>> = OnceLock::new();
    MODEL.get_or_init(|| build_model(Precision::F32)).clone()
}

fn start(config: &ServeConfig) -> (Server, String) {
    let server = Server::start(model(), config).expect("start server");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn ephemeral() -> ServeConfig {
    ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() }
}

fn client(addr: &str) -> HttpClient {
    let mut client = HttpClient::connect(addr).expect("connect");
    client.set_timeout(Duration::from_secs(30)).expect("timeout");
    client
}

fn body_for(i: usize) -> String {
    let (_, creators, subjects) = model().corpus_sizes();
    format!(
        "{{\"text\":\"claim {i} about the budget deficit and medicare\",\"creator\":{},\"subjects\":[{}]}}",
        i % creators,
        i % subjects
    )
}

#[test]
fn concurrent_clients_get_bitwise_identical_responses() {
    let (server, addr) = start(&ephemeral());
    let (clients, per_client) = (8, 6);
    let total = clients * per_client;
    let bodies: Vec<String> = (0..total).map(body_for).collect();

    // Sequential reference: every request scored alone.
    let mut sequential = client(&addr);
    let reference: Vec<String> = bodies
        .iter()
        .map(|b| {
            let (status, response) = sequential.post("/v1/predict", b).expect("post");
            assert_eq!(status, 200, "{response}");
            response
        })
        .collect();

    // The same requests, concurrently, co-batched by the server.
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let chunk: Vec<(usize, String)> = (c * per_client..(c + 1) * per_client)
                .map(|i| (i, bodies[i].clone()))
                .collect();
            std::thread::spawn(move || {
                let mut client = client(&addr);
                chunk
                    .into_iter()
                    .map(|(i, body)| (i, client.post("/v1/predict", &body).expect("post")))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for worker in workers {
        for (i, (status, response)) in worker.join().expect("client thread") {
            assert_eq!(status, 200, "request {i}: {response}");
            assert_eq!(response, reference[i], "request {i}: batched response drifted");
        }
    }

    // predict_batch agrees with predict: same probabilities, grouped.
    let batch_body = format!(
        "{{\"requests\":[{}]}}",
        bodies[..3].join(",")
    );
    let (status, response) = client(&addr).post("/v1/predict_batch", &batch_body).expect("post");
    assert_eq!(status, 200, "{response}");
    for single in &reference[..3] {
        let probs = single
            .split("\"probabilities\":")
            .nth(1)
            .and_then(|s| s.split(']').next())
            .expect("probabilities in single response");
        assert!(
            response.contains(probs),
            "batch response missing probabilities {probs}: {response}"
        );
    }
    server.shutdown();
}

#[test]
fn hostile_input_gets_4xx_and_never_kills_the_server() {
    let config = ServeConfig { max_body_bytes: 2048, ..ephemeral() };
    let (server, addr) = start(&config);

    // Malformed JSON.
    let (status, response) = client(&addr).post("/v1/predict", "not json").expect("post");
    assert_eq!(status, 400, "{response}");
    // Valid JSON, missing required field.
    let (status, _) = client(&addr).post("/v1/predict", "{\"creator\":1}").expect("post");
    assert_eq!(status, 400);
    // Unknown node type.
    let (status, _) = client(&addr)
        .post("/v1/predict", "{\"node_type\":\"moderator\",\"text\":\"x\"}")
        .expect("post");
    assert_eq!(status, 400);
    // Neighbour index out of range.
    let (status, response) = client(&addr)
        .post("/v1/predict", "{\"text\":\"x\",\"creator\":999999}")
        .expect("post");
    assert_eq!(status, 400, "{response}");
    // Wrong neighbour kind for the node type.
    let (status, _) = client(&addr)
        .post("/v1/predict", "{\"text\":\"x\",\"articles\":[0]}")
        .expect("post");
    assert_eq!(status, 400);
    // Oversized body.
    let huge = format!("{{\"text\":\"{}\"}}", "y".repeat(4096));
    let (status, _) = client(&addr).post("/v1/predict", &huge).expect("post");
    assert_eq!(status, 413);
    // Not HTTP at all.
    let (status, _) = client(&addr).raw(b"SING TO ME MUSE\r\n\r\n").expect("raw");
    assert_eq!(status, 400);
    // Unknown path / wrong method.
    let (status, _) = client(&addr).get("/v2/oracle").expect("get");
    assert_eq!(status, 404);
    let (status, _) = client(&addr)
        .raw(b"DELETE /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
        .expect("raw");
    assert_eq!(status, 405);

    // After all of that the server still answers.
    let (status, response) = client(&addr).get("/healthz").expect("get");
    assert_eq!(status, 200);
    assert!(response.contains("\"status\":\"ok\""), "{response}");
    let (status, response) = client(&addr).post("/v1/predict", &body_for(0)).expect("post");
    assert_eq!(status, 200, "{response}");
    server.shutdown();
}

#[test]
fn metrics_endpoint_reports_serve_counters() {
    let (server, addr) = start(&ephemeral());
    let (status, response) = client(&addr).post("/v1/predict", &body_for(1)).expect("post");
    assert_eq!(status, 200, "{response}");
    let (status, snapshot) = client(&addr).get("/metrics").expect("get");
    assert_eq!(status, 200);
    for key in ["serve.requests", "serve.batch_size", "serve.request_us", "serve.queue_depth"] {
        assert!(snapshot.contains(key), "metrics snapshot missing {key}");
    }
    server.shutdown();
}

#[test]
fn graceful_shutdown_completes_in_flight_requests() {
    // A long co-batching window, so a lone request sits in the queue
    // until shutdown flushes it — well before the window expires.
    let config = ServeConfig { max_delay_ms: 5000, ..ephemeral() };
    let (server, addr) = start(&config);

    let reference = {
        // Scored via a throwaway server with a normal window, to know
        // the expected answer independently of the drain path.
        let (fast, fast_addr) = start(&ephemeral());
        let (status, response) = client(&fast_addr).post("/v1/predict", &body_for(2)).expect("post");
        assert_eq!(status, 200, "{response}");
        fast.shutdown();
        response
    };

    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = client(&addr);
            let sent = Instant::now();
            let result = client.post("/v1/predict", &body_for(2)).expect("post");
            (result, sent.elapsed())
        })
    };
    // Let the request reach the queue, then shut down underneath it.
    std::thread::sleep(Duration::from_millis(300));
    server.shutdown();
    let ((status, response), waited) = in_flight.join().expect("in-flight client");
    assert_eq!(status, 200, "in-flight request must be answered, got: {response}");
    assert_eq!(response, reference, "drained response drifted");
    assert!(
        waited < Duration::from_millis(4500),
        "shutdown must flush the queue, not wait out the {}ms window (took {waited:?})",
        5000
    );
}

/// Pulls the `"probabilities":[…]` array out of a predict response.
fn parse_probabilities(response: &str) -> Vec<f32> {
    response
        .split("\"probabilities\":[")
        .nth(1)
        .and_then(|s| s.split(']').next())
        .expect("probabilities in response")
        .split(',')
        .map(|v| v.trim().parse::<f32>().expect("float"))
        .collect()
}

#[test]
fn endpoint_round_trip_agrees_at_each_precision() {
    // One server per precision, built from the same training run; the
    // wire answers must agree within the quantization parity gate
    // (identical arg-max labels, max |Δscore| ≤ 4e-3), and /healthz
    // must report which path is live.
    let f32_server = Server::start(model(), &ephemeral()).expect("start f32");
    let int8_server =
        Server::start(build_model(Precision::Int8), &ephemeral()).expect("start int8");
    let f32_addr = f32_server.local_addr().to_string();
    let int8_addr = int8_server.local_addr().to_string();

    for (addr, name) in [(&f32_addr, "f32"), (&int8_addr, "int8")] {
        let (status, health) = client(addr).get("/healthz").expect("get");
        assert_eq!(status, 200, "{health}");
        assert!(
            health.contains(&format!("\"precision\":\"{name}\"")),
            "healthz must report the serving precision: {health}"
        );
    }

    // The f32 endpoint is the exact reference: bitwise-equal to direct
    // in-process scoring (same JSON formatting path), so checking the
    // int8 endpoint against it checks the whole wire round-trip.
    for i in 0..8 {
        let body = body_for(i);
        let (status, exact) = client(&f32_addr).post("/v1/predict", &body).expect("post");
        assert_eq!(status, 200, "{exact}");
        let (status, quant) = client(&int8_addr).post("/v1/predict", &body).expect("post");
        assert_eq!(status, 200, "{quant}");

        let pe = parse_probabilities(&exact);
        let pq = parse_probabilities(&quant);
        assert_eq!(pe.len(), pq.len(), "request {i}");
        let argmax = |p: &[f32]| {
            p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(j, _)| j).unwrap()
        };
        assert_eq!(argmax(&pe), argmax(&pq), "request {i}: label flipped under int8");
        for (a, b) in pe.iter().zip(&pq) {
            assert!(
                (a - b).abs() <= 4e-3,
                "request {i}: |Δscore| {} exceeds the parity gate",
                (a - b).abs()
            );
        }
    }
    f32_server.shutdown();
    int8_server.shutdown();
}

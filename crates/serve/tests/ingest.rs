//! End-to-end tests for `POST /v1/ingest`: attached nodes must score
//! within the documented delta bound of a full extended-graph
//! recompute, hostile payloads must map to 4xx without hurting the
//! server, reloads must restore the pristine bundle, and predict
//! traffic must never be dropped while ingests land.

use fd_core::{FakeDetector, FakeDetectorConfig, TrainedFakeDetector};
use fd_data::{
    generate, Corpus, CvSplits, ExperimentContext, ExplicitFeatures, GeneratorConfig, LabelMode,
    TokenizedCorpus, TrainSets,
};
use fd_graph::{GraphOverlay, NodeType};
use fd_serve::{
    HttpClient, IngestArticle, IngestBatch, IngestCreator, IngestReport, IngestSubject,
    ServeConfig, ServeModel, Server,
};
use fd_tensor::Matrix;
use fd_text::{encode_sequence, Tokenizer};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const EXPLICIT_DIM: usize = 30;
const SEQ_LEN: usize = 8;
const MAX_VOCAB: usize = 2000;

/// The documented fast-path guarantee: ingested-node scores within
/// 1e-5 of the full-graph recompute over the frozen feature pipeline
/// (see DESIGN.md "Incremental diffusion").
const DELTA_BOUND: f32 = 1e-5;

/// One tiny training run shared by every test in this binary.
fn parts() -> &'static (Corpus, String, TrainSets) {
    static PARTS: OnceLock<(Corpus, String, TrainSets)> = OnceLock::new();
    PARTS.get_or_init(|| {
        let seed = 7;
        let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 10, &mut rng).fold(0).0,
        };
        let tokenized = TokenizedCorpus::build(&corpus, SEQ_LEN, MAX_VOCAB);
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, EXPLICIT_DIM);
        let ctx = ExperimentContext {
            corpus: &corpus,
            tokenized: &tokenized,
            explicit: &explicit,
            train: &train,
            mode: LabelMode::Binary,
            seed,
        };
        let config = FakeDetectorConfig {
            epochs: 1,
            validation_fraction: 0.0,
            ..FakeDetectorConfig::default()
        };
        let trained = FakeDetector::new(config).fit(&ctx);
        (corpus, trained.to_json(), train)
    })
}

fn build_model() -> Arc<ServeModel> {
    let (corpus, trained_json, train) = parts();
    let trained = TrainedFakeDetector::from_json(trained_json).expect("weights round-trip");
    Arc::new(ServeModel::new(
        corpus.clone(),
        trained,
        train.clone(),
        LabelMode::Binary,
        EXPLICIT_DIM,
        SEQ_LEN,
        MAX_VOCAB,
    ))
}

fn start(config: &ServeConfig) -> (Server, String) {
    let server = Server::start(build_model(), config).expect("start server");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn ephemeral() -> ServeConfig {
    ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() }
}

fn client(addr: &str) -> HttpClient {
    let mut client = HttpClient::connect(addr).expect("connect");
    client.set_timeout(Duration::from_secs(30)).expect("timeout");
    client
}

fn post_ingest(addr: &str, batch: &IngestBatch) -> (u16, String) {
    let body = serde_json::to_string(batch).expect("serialize batch");
    client(addr).post("/v1/ingest", &body).expect("post ingest")
}

/// A mixed batch of `n_articles` articles (plus one new creator and one
/// new subject when `n_articles > 1`) citing a blend of base and
/// batch-new nodes. `counts` are the combined counts *before* the
/// batch.
fn make_batch(n_articles: usize, counts: (usize, usize, usize), tag: usize) -> IngestBatch {
    let (_, creators_n, subjects_n) = counts;
    let mut batch = IngestBatch::default();
    if n_articles > 1 {
        batch.creators.push(IngestCreator { profile: format!("prolific new pundit {tag}") });
        batch.subjects.push(IngestSubject { description: format!("emerging controversy {tag}") });
    }
    for j in 0..n_articles {
        // Odd articles cite the batch-new creator; every third also
        // indicates the batch-new subject (ids are assigned before the
        // articles attach, so `counts` is where the new ids start).
        let creator = if n_articles > 1 && j % 2 == 1 { creators_n } else { j % creators_n };
        let mut subjects = vec![j % subjects_n];
        if n_articles > 1 && j % 3 == 0 {
            subjects.push(subjects_n);
        }
        batch.articles.push(IngestArticle {
            text: format!("fresh claims {tag}-{j} about the budget deficit and medicare"),
            creator,
            subjects,
        });
    }
    batch
}

/// An in-process replica of the server's attach path over the frozen
/// feature pipeline, used to compute the full extended-graph recompute
/// the parity gate compares against.
struct Reference<'a> {
    ctx: ExperimentContext<'a>,
    trained: &'a TrainedFakeDetector,
    overlay: GraphOverlay,
    explicit_rows: [Vec<Vec<f32>>; 3],
    sequences: [Vec<Vec<usize>>; 3],
}

impl<'a> Reference<'a> {
    fn new(ctx: ExperimentContext<'a>, trained: &'a TrainedFakeDetector) -> Self {
        let overlay = GraphOverlay::new(&ctx.corpus.graph);
        Self {
            ctx,
            trained,
            overlay,
            explicit_rows: Default::default(),
            sequences: Default::default(),
        }
    }

    fn featurise(&mut self, slot: usize, ty: NodeType, text: &str) {
        let tokens = Tokenizer::default().tokenize(text);
        self.explicit_rows[slot]
            .push(self.ctx.explicit.featurise_tokens(ty, &tokens).row(0).to_vec());
        self.sequences[slot].push(encode_sequence(
            &tokens,
            &self.ctx.tokenized.vocab,
            self.ctx.tokenized.seq_len,
        ));
    }

    /// Attaches `batch` exactly as the server does: creators, then
    /// subjects, then articles.
    fn apply(&mut self, batch: &IngestBatch) {
        for creator in &batch.creators {
            self.overlay.add_creator();
            self.featurise(1, NodeType::Creator, &creator.profile);
        }
        for subject in &batch.subjects {
            self.overlay.add_subject();
            self.featurise(2, NodeType::Subject, &subject.description);
        }
        for article in &batch.articles {
            self.overlay.add_article(article.creator, &article.subjects).expect("valid article");
            self.featurise(0, NodeType::Article, &article.text);
        }
    }

    /// Final-round probabilities of every combined node, via the
    /// honest O(corpus) recompute over the extended graph.
    fn full_recompute_probabilities(&self) -> [Vec<Vec<f32>>; 3] {
        let new_explicit: [Matrix; 3] = std::array::from_fn(|slot| {
            let rows = &self.explicit_rows[slot];
            let mut m = Matrix::zeros(rows.len(), self.ctx.explicit.dim);
            for (k, row) in rows.iter().enumerate() {
                m.row_mut(k).copy_from_slice(row);
            }
            m
        });
        let history = self
            .trained
            .extended_states_rounds(&self.ctx, &self.overlay, &new_explicit, &self.sequences)
            .expect("extended recompute");
        let last = history.last().expect("at least one round");
        std::array::from_fn(|slot| {
            let ty = NodeType::ALL[slot];
            (0..last[slot].rows())
                .map(|i| self.trained.node_probabilities(ty, last[slot].row(i)))
                .collect()
        })
    }
}

fn assert_within_bound(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: class count");
    for (a, b) in got.iter().zip(want) {
        assert!(
            (a - b).abs() <= DELTA_BOUND,
            "{what}: |Δ| {} exceeds the documented {DELTA_BOUND} bound ({a} vs {b})",
            (a - b).abs()
        );
    }
}

/// Pulls the `"probabilities":[…]` array out of a predict response.
fn parse_probabilities(response: &str) -> Vec<f32> {
    response
        .split("\"probabilities\":[")
        .nth(1)
        .and_then(|s| s.split(']').next())
        .expect("probabilities in response")
        .split(',')
        .map(|v| v.trim().parse::<f32>().expect("float"))
        .collect()
}

#[test]
fn ingested_scores_match_full_recompute_across_batch_sizes() {
    let (corpus, trained_json, train) = parts();
    let trained = TrainedFakeDetector::from_json(trained_json).expect("weights");
    let tokenized = TokenizedCorpus::build(corpus, SEQ_LEN, MAX_VOCAB);
    let explicit = ExplicitFeatures::extract(corpus, &tokenized, train, EXPLICIT_DIM);
    let ctx = ExperimentContext {
        corpus,
        tokenized: &tokenized,
        explicit: &explicit,
        train,
        mode: LabelMode::Binary,
        seed: 0,
    };
    let mut reference = Reference::new(ctx, &trained);

    let (server, addr) = start(&ephemeral());
    let mut counts = build_model().corpus_sizes();
    // Sequential ingests of growing batch size — later batches stack on
    // the overlay the earlier ones created.
    for (tag, n_articles) in [1usize, 3, 8].into_iter().enumerate() {
        let batch = make_batch(n_articles, counts, tag);
        let (status, response) = post_ingest(&addr, &batch);
        assert_eq!(status, 200, "{response}");
        let report: IngestReport = serde_json::from_str(&response).expect("report json");
        assert_eq!(report.articles.len(), batch.articles.len());
        assert_eq!(report.creators.len(), batch.creators.len());
        assert!(
            report.affected_base_nodes > 0,
            "articles cite base nodes, so some base states must be recomputed"
        );

        reference.apply(&batch);
        let full = reference.full_recompute_probabilities();
        let per_slot =
            [(&report.articles, 0usize), (&report.creators, 1), (&report.subjects, 2)];
        for (nodes, slot) in per_slot {
            for node in nodes.iter() {
                assert_within_bound(
                    &node.probabilities,
                    &full[slot][node.id],
                    &format!("batch {tag} slot {slot} node {node_id}", node_id = node.id),
                );
                // The by-id readout must agree with what ingest reported.
                let ty = ["article", "creator", "subject"][slot];
                let body = format!("{{\"node_type\":\"{ty}\",\"id\":{}}}", node.id);
                let (status, response) =
                    client(&addr).post("/v1/predict", &body).expect("post");
                assert_eq!(status, 200, "{response}");
                assert_within_bound(
                    &parse_probabilities(&response),
                    &node.probabilities,
                    &format!("by-id readout of slot {slot} node {}", node.id),
                );
            }
        }

        counts = (report.articles_total, report.creators_total, report.subjects_total);
        // /healthz reports the grown combined graph.
        let (status, health) = client(&addr).get("/healthz").expect("get");
        assert_eq!(status, 200);
        assert!(
            health.contains(&format!("\"articles\":{}", counts.0)),
            "healthz must show combined counts: {health}"
        );
    }

    // Inductive requests may cite ingested nodes as neighbours.
    let body = format!(
        "{{\"text\":\"follow-up on the emerging controversy\",\"creator\":{},\"subjects\":[{}]}}",
        counts.1 - 1,
        counts.2 - 1
    );
    let (status, response) = client(&addr).post("/v1/predict", &body).expect("post");
    assert_eq!(status, 200, "{response}");
    server.shutdown();
}

#[test]
fn hostile_ingest_payloads_get_4xx_and_never_kill_the_server() {
    let config = ServeConfig { max_ingest_nodes: 4, ..ephemeral() };
    let (server, addr) = start(&config);
    let (_, creators_n, subjects_n) = build_model().corpus_sizes();

    // Malformed JSON.
    let (status, _) = client(&addr).post("/v1/ingest", "not json").expect("post");
    assert_eq!(status, 400);
    // Empty batch.
    let (status, response) = client(&addr).post("/v1/ingest", "{}").expect("post");
    assert_eq!(status, 400, "{response}");
    assert!(response.contains("empty"), "{response}");
    // Creator out of range.
    let batch = IngestBatch {
        articles: vec![IngestArticle { text: "x".into(), creator: creators_n + 7, subjects: vec![] }],
        ..IngestBatch::default()
    };
    let (status, response) = post_ingest(&addr, &batch);
    assert_eq!(status, 400, "{response}");
    assert!(response.contains("out of range"), "{response}");
    // Subject out of range.
    let batch = IngestBatch {
        articles: vec![IngestArticle {
            text: "x".into(),
            creator: 0,
            subjects: vec![subjects_n + 3],
        }],
        ..IngestBatch::default()
    };
    let (status, response) = post_ingest(&addr, &batch);
    assert_eq!(status, 400, "{response}");
    // Duplicate subject.
    let batch = IngestBatch {
        articles: vec![IngestArticle { text: "x".into(), creator: 0, subjects: vec![0, 0] }],
        ..IngestBatch::default()
    };
    let (status, response) = post_ingest(&addr, &batch);
    assert_eq!(status, 400, "{response}");
    assert!(response.contains("duplicate"), "{response}");
    // Batch over the node cap → 413.
    let batch = IngestBatch {
        creators: (0..5).map(|i| IngestCreator { profile: format!("c{i}") }).collect(),
        ..IngestBatch::default()
    };
    let (status, response) = post_ingest(&addr, &batch);
    assert_eq!(status, 413, "{response}");
    // Wrong method.
    let (status, _) = client(&addr).get("/v1/ingest").expect("get");
    assert_eq!(status, 405);

    // A failed attach must not leak partial state: the graph is
    // unchanged (a batch attaches atomically or not at all).
    let (status, health) = client(&addr).get("/healthz").expect("get");
    assert_eq!(status, 200);
    assert!(health.contains(&format!("\"creators\":{creators_n}")), "{health}");

    // By-id hostile variants on /v1/predict.
    let (status, response) =
        client(&addr).post("/v1/predict", "{\"id\":999999}").expect("post");
    assert_eq!(status, 404, "{response}");
    let (status, _) =
        client(&addr).post("/v1/predict", "{\"id\":0,\"text\":\"both\"}").expect("post");
    assert_eq!(status, 400);
    let (status, response) =
        client(&addr).post("/v1/predict", "{\"id\":0,\"creator\":0}").expect("post");
    assert_eq!(status, 400, "{response}");
    let (status, _) = client(&addr).post("/v1/predict", "{}").expect("post");
    assert_eq!(status, 400);
    // By-id inside predict_batch is rejected.
    let (status, response) = client(&addr)
        .post("/v1/predict_batch", "{\"requests\":[{\"id\":0}]}")
        .expect("post");
    assert_eq!(status, 400, "{response}");

    // After all of that a well-formed ingest still lands.
    let batch = IngestBatch {
        articles: vec![IngestArticle { text: "valid claim".into(), creator: 0, subjects: vec![0] }],
        ..IngestBatch::default()
    };
    let (status, response) = post_ingest(&addr, &batch);
    assert_eq!(status, 200, "{response}");
    server.shutdown();
}

#[test]
fn reload_discards_ingested_nodes_and_ingest_works_again() {
    let (server, addr) = start(&ephemeral());
    let base_counts = build_model().corpus_sizes();
    let batch = make_batch(3, base_counts, 0);
    let (status, response) = post_ingest(&addr, &batch);
    assert_eq!(status, 200, "{response}");

    // A reload (what the SIGHUP supervision loop does) swaps in a
    // pristine bundle: ingested nodes are gone by design — the fast
    // path is a cache over the frozen bundle, the durable path is
    // retrain + reload.
    server.swap_model(build_model());
    let (status, health) = client(&addr).get("/healthz").expect("get");
    assert_eq!(status, 200);
    assert!(
        health.contains(&format!("\"articles\":{}", base_counts.0)),
        "reload must restore base counts: {health}"
    );
    // By-id lookups of the discarded nodes 404 now.
    let body = format!("{{\"id\":{}}}", base_counts.0);
    let (status, _) = client(&addr).post("/v1/predict", &body).expect("post");
    assert_eq!(status, 404);

    // The update lock serialises ingests with reloads, so ingesting
    // again just works on the fresh model.
    let (status, response) = post_ingest(&addr, &make_batch(1, base_counts, 1));
    assert_eq!(status, 200, "{response}");
    server.shutdown();
}

#[test]
fn inflight_predicts_are_never_dropped_during_ingest() {
    let (server, addr) = start(&ephemeral());
    let (_, creators_n, subjects_n) = build_model().corpus_sizes();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Hammer threads: continuous predict traffic citing base nodes.
    let hammers: Vec<_> = (0..4)
        .map(|t| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = client(&addr);
                let mut done = 0usize;
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let body = format!(
                        "{{\"text\":\"claim {t}-{done} about medicare\",\"creator\":{},\"subjects\":[{}]}}",
                        done % creators_n,
                        done % subjects_n
                    );
                    let (status, response) = client.post("/v1/predict", &body).expect("post");
                    assert_eq!(status, 200, "predict during ingest: {response}");
                    done += 1;
                }
                done
            })
        })
        .collect();

    // Meanwhile, a stream of ingests lands model swaps under them.
    let mut counts = build_model().corpus_sizes();
    for tag in 0..5 {
        let (status, response) = post_ingest(&addr, &make_batch(2, counts, tag));
        assert_eq!(status, 200, "{response}");
        let report: IngestReport = serde_json::from_str(&response).expect("report json");
        counts = (report.articles_total, report.creators_total, report.subjects_total);
        std::thread::sleep(Duration::from_millis(30));
    }
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let total: usize = hammers.into_iter().map(|h| h.join().expect("hammer thread")).sum();
    assert!(total > 0, "hammers must have exercised the predict path");
    assert_eq!(counts.0, build_model().corpus_sizes().0 + 10, "5 ingests × 2 articles landed");
    server.shutdown();
}

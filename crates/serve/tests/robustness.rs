//! Fault-injected serving tests: hot reload under sustained load must
//! drop zero requests, and an injected panic inside the batcher must
//! map to 500s for that batch only — the server keeps serving.

use fd_core::{FakeDetector, FakeDetectorConfig};
use fd_data::{
    generate, CvSplits, ExperimentContext, ExplicitFeatures, GeneratorConfig, LabelMode,
    TokenizedCorpus, TrainSets,
};
use fd_serve::{HttpClient, ServeConfig, ServeModel, Server};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Two tiny trained models over the same corpus — distinguishable by
/// their probability outputs, so reload tests can tell which model
/// answered.
fn models() -> (Arc<ServeModel>, Arc<ServeModel>) {
    static MODELS: OnceLock<(Arc<ServeModel>, Arc<ServeModel>)> = OnceLock::new();
    MODELS
        .get_or_init(|| {
            let seed = 7;
            let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let train = TrainSets {
                articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
                creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
                subjects: CvSplits::new(corpus.subjects.len(), 10, &mut rng).fold(0).0,
            };
            let (explicit_dim, seq_len, max_vocab) = (30, 8, 2000);
            let tokenized = TokenizedCorpus::build(&corpus, seq_len, max_vocab);
            let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, explicit_dim);
            let ctx = ExperimentContext {
                corpus: &corpus,
                tokenized: &tokenized,
                explicit: &explicit,
                train: &train,
                mode: LabelMode::Binary,
                seed,
            };
            let build = |epochs: usize| {
                let config = FakeDetectorConfig {
                    epochs,
                    validation_fraction: 0.0,
                    ..FakeDetectorConfig::default()
                };
                FakeDetector::new(config).fit(&ctx)
            };
            let (a, b) = (build(1), build(3));
            drop((tokenized, explicit));
            let wrap = |trained| {
                Arc::new(ServeModel::new(
                    corpus.clone(),
                    trained,
                    train.clone(),
                    LabelMode::Binary,
                    explicit_dim,
                    seq_len,
                    max_vocab,
                ))
            };
            (wrap(a), wrap(b))
        })
        .clone()
}

fn client(addr: &str) -> HttpClient {
    let mut client = HttpClient::connect(addr).expect("connect");
    client.set_timeout(Duration::from_secs(30)).expect("timeout");
    client
}

fn body_for(i: usize) -> String {
    let (_, creators, subjects) = models().0.corpus_sizes();
    format!(
        "{{\"text\":\"claim {i} about the budget deficit and medicare\",\"creator\":{},\"subjects\":[{}]}}",
        i % creators,
        i % subjects
    )
}

fn ephemeral() -> ServeConfig {
    ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() }
}

/// FD_FAULT state is process-global; serialise the tests that touch it.
fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn hot_reload_under_load_drops_no_requests() {
    // Not a fault test itself, but the fault spec is process-global and
    // a concurrently-running fault test would poison this server too.
    let _guard = fault_lock();
    let (model_a, model_b) = models();
    let server = Server::start(Arc::clone(&model_a), &ephemeral()).expect("start");
    let addr = server.local_addr().to_string();

    // Reference answers from each model, taken single-threaded.
    let reference_a = {
        let (status, response) = client(&addr).post("/v1/predict", &body_for(0)).expect("post");
        assert_eq!(status, 200, "{response}");
        response
    };
    server.swap_model(Arc::clone(&model_b));
    let reference_b = {
        let (status, response) = client(&addr).post("/v1/predict", &body_for(0)).expect("post");
        assert_eq!(status, 200, "{response}");
        response
    };
    assert_ne!(reference_a, reference_b, "test models must be distinguishable");
    server.swap_model(Arc::clone(&model_a));

    // Hammer one request shape from several clients while the model is
    // swapped back and forth underneath them. Every response must be a
    // 200 matching one of the two models — nothing dropped, nothing
    // torn between the two.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = client(&addr);
                let body = body_for(0);
                let mut count = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let (status, response) = client.post("/v1/predict", &body).expect("post");
                    assert_eq!(status, 200, "in-flight request failed during reload: {response}");
                    count += 1;
                }
                count
            })
        })
        .collect();
    for i in 0..20 {
        std::thread::sleep(Duration::from_millis(10));
        let next = if i % 2 == 0 { &model_b } else { &model_a };
        server.swap_model(Arc::clone(next));
    }
    stop.store(true, Ordering::SeqCst);
    let total: usize = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    assert!(total > 0, "load generator never completed a request");

    // And the server is still healthy on the final model.
    let (status, response) = client(&addr).post("/v1/predict", &body_for(0)).expect("post");
    assert_eq!(status, 200);
    assert_eq!(response, reference_a, "final model is model_a");
    server.shutdown();
}

#[test]
fn injected_batch_panic_maps_to_500_and_server_survives() {
    let _guard = fault_lock();
    let (model, _) = models();
    let server = Server::start(model, &ephemeral()).expect("start");
    let addr = server.local_addr().to_string();

    // Warm request so the panic hits an established, healthy server.
    let (status, _) = client(&addr).post("/v1/predict", &body_for(1)).expect("post");
    assert_eq!(status, 200);

    // The next scored batch panics inside the batcher thread.
    fd_ckpt::fault::set_spec(Some(
        fd_ckpt::fault::FaultSpec::parse("panic-batch:1").expect("spec"),
    ));
    let (status, response) = client(&addr).post("/v1/predict", &body_for(1)).expect("post");
    assert_eq!(status, 500, "panicked batch must answer 500, got: {response}");
    assert!(response.contains("internal error"), "{response}");

    // The batcher thread survived the panic: scoring still works.
    let (status, response) = client(&addr).post("/v1/predict", &body_for(1)).expect("post");
    assert_eq!(status, 200, "server must keep serving after a batch panic: {response}");

    fd_ckpt::fault::set_spec(None);
    server.shutdown();
}

#[test]
fn injected_slow_batch_trips_request_deadline() {
    let _guard = fault_lock();
    let (model, _) = models();
    // Tight deadline, so the injected delay reliably exceeds it.
    let config = ServeConfig { request_timeout_ms: 200, ..ephemeral() };
    let server = Server::start(model, &config).expect("start");
    let addr = server.local_addr().to_string();

    fd_ckpt::fault::set_spec(Some(
        fd_ckpt::fault::FaultSpec::parse("slow-batch:800").expect("spec"),
    ));
    let (status, response) = client(&addr).post("/v1/predict", &body_for(2)).expect("post");
    assert_eq!(status, 504, "slow batch must trip the deadline, got: {response}");
    fd_ckpt::fault::set_spec(None);

    // Deadline misses don't wedge the server: once the batcher finishes
    // its injected nap, scoring is back to normal.
    std::thread::sleep(Duration::from_millis(900));
    let (status, response) = client(&addr).post("/v1/predict", &body_for(2)).expect("post");
    assert_eq!(status, 200, "{response}");
    server.shutdown();
}

//! Loading a trained bundle into a shareable serving handle.
//!
//! [`ServeModel`] owns everything a request needs — the corpus, the
//! rebuilt feature pipeline, the trained weights, and the precomputed
//! diffused states — so the server can score inductive requests with a
//! single batched GDU step instead of replaying the whole graph pass
//! per request. It is `Send + Sync` and lives behind an `Arc` shared
//! by every handler thread and the batcher.

use fd_core::{QuantModel, ScoreRequest, StateOverlay, StateView, TrainedFakeDetector};
use fd_data::{
    Corpus, Credibility, ExperimentContext, ExplicitFeatures, LabelMode, TokenizedCorpus,
    TrainSets,
};
use fd_graph::{GraphOverlay, NodeType};
use fd_tensor::Matrix;
use fd_text::{encode_sequence, Tokenizer};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// The on-disk train bundle written by `fdctl train` and consumed by
/// `fdctl predict|evaluate|score|serve`. Everything beyond the raw
/// weights that is needed to rebuild the feature pipeline exactly:
/// train indices (χ² statistics are train-only), feature width,
/// sequence length, vocabulary cap, and label mode.
#[derive(Serialize, Deserialize)]
pub struct TrainBundle {
    /// Serialized [`TrainedFakeDetector`] weights.
    pub model_json: String,
    /// Per-type training indices.
    pub train: BundleSplit,
    /// `"binary"` or `"multi"`.
    pub mode: String,
    /// χ² explicit-feature width per node type.
    pub explicit_dim: usize,
    /// Token-sequence truncation length.
    pub seq_len: usize,
    /// Vocabulary cap for the tokenizer.
    pub max_vocab: usize,
}

/// Serializable mirror of [`TrainSets`].
#[derive(Serialize, Deserialize)]
pub struct BundleSplit {
    /// Training article indices.
    pub articles: Vec<usize>,
    /// Training creator indices.
    pub creators: Vec<usize>,
    /// Training subject indices.
    pub subjects: Vec<usize>,
}

impl From<TrainSets> for BundleSplit {
    fn from(t: TrainSets) -> Self {
        Self { articles: t.articles, creators: t.creators, subjects: t.subjects }
    }
}

impl From<BundleSplit> for TrainSets {
    fn from(b: BundleSplit) -> Self {
        Self { articles: b.articles, creators: b.creators, subjects: b.subjects }
    }
}

/// Parses `"binary"` / `"multi"` into a [`LabelMode`].
pub fn parse_mode(raw: &str) -> Result<LabelMode, String> {
    match raw {
        "binary" => Ok(LabelMode::Binary),
        "multi" => Ok(LabelMode::MultiClass),
        other => Err(format!("mode must be binary or multi, got {other}")),
    }
}

/// The label-mode name used on the wire for a [`LabelMode`].
pub fn mode_name(mode: LabelMode) -> &'static str {
    match mode {
        LabelMode::Binary => "binary",
        LabelMode::MultiClass => "multi",
    }
}

/// Numeric precision of the serving forward pass, selected by
/// `fdctl serve --precision`.
///
/// * [`Precision::F32`] (default) — the exact native path: bit-identical
///   to training-time inference and to `fdctl score`.
/// * [`Precision::Int8`] — int8 weights with 16-bit activation
///   quantization for the GDU step and classification head; gated by
///   the parity suite at max |Δscore| ≤ 4e-3 and identical arg-max
///   labels vs f32. Featurisation, diffused states and softmax stay
///   f32.
///
/// Training is always full precision; this knob only affects
/// [`ServeModel::score`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Exact f32 — the reference numerics of the whole repo.
    F32,
    /// Int8-weight quantized forward (W8A16).
    Int8,
}

impl Precision {
    /// Parses a `--precision` value. `f64` is rejected with an
    /// explanation rather than silently aliased: this stack trains and
    /// serves in f32, so f32 *is* the exact reference and there is no
    /// wider path to fall back to.
    pub fn parse(raw: &str) -> Result<Precision, String> {
        match raw {
            "f32" => Ok(Precision::F32),
            "int8" => Ok(Precision::Int8),
            "f64" => Err(
                "precision f64 is not available: the model trains and serves in f32, \
                 so f32 is already the exact reference (use f32, or int8 for the \
                 quantized path)"
                    .into(),
            ),
            other => Err(format!("precision must be f32 or int8, got {other}")),
        }
    }

    /// The wire/flag name (`"f32"` / `"int8"`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

/// One new creator on the ingest wire: the profile text the frozen
/// feature pipeline featurises (mirroring how base creator profiles
/// were featurised at train time).
#[derive(Serialize, Deserialize, Clone, Debug)]
pub struct IngestCreator {
    /// Profile/biography text of the creator.
    pub profile: String,
}

/// One new subject on the ingest wire.
#[derive(Serialize, Deserialize, Clone, Debug)]
pub struct IngestSubject {
    /// Description text of the subject.
    pub description: String,
}

/// One new article on the ingest wire. Neighbour indices are
/// *combined* indices: base corpus nodes, previously ingested nodes,
/// and nodes earlier in the same batch (creators and subjects are
/// attached before articles) are all valid targets.
#[derive(Serialize, Deserialize, Clone, Debug)]
pub struct IngestArticle {
    /// Article body text.
    pub text: String,
    /// Combined index of the authoring creator.
    pub creator: usize,
    /// Combined indices of the subjects the article indicates.
    #[serde(default)]
    pub subjects: Vec<usize>,
}

/// Wire payload of `POST /v1/ingest`: nodes to attach to the live
/// News-HSN. Creators and subjects are attached first (in batch
/// order), then articles — so an article may cite a creator/subject
/// introduced by the same batch.
#[derive(Serialize, Deserialize, Clone, Debug, Default)]
pub struct IngestBatch {
    /// New creators, attached first.
    #[serde(default)]
    pub creators: Vec<IngestCreator>,
    /// New subjects, attached second.
    #[serde(default)]
    pub subjects: Vec<IngestSubject>,
    /// New articles, attached last (may cite batch-new nodes).
    #[serde(default)]
    pub articles: Vec<IngestArticle>,
}

impl IngestBatch {
    /// Total nodes the batch attaches.
    pub fn len(&self) -> usize {
        self.creators.len() + self.subjects.len() + self.articles.len()
    }

    /// Whether the batch attaches nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One attached node in an [`IngestReport`]: its assigned combined
/// index and its credibility distribution after incremental diffusion.
#[derive(Serialize, Deserialize, Clone, Debug)]
pub struct IngestedNode {
    /// Combined index the node was assigned (usable as `id` in
    /// `POST /v1/predict` and as a neighbour index in later requests).
    pub id: usize,
    /// Per-class probabilities, aligned with `labels`.
    pub probabilities: Vec<f32>,
}

/// Response body of `POST /v1/ingest`: assigned ids + scores per node,
/// and the cost counters the incremental update actually paid.
#[derive(Serialize, Deserialize, Clone, Debug)]
pub struct IngestReport {
    /// Label mode (`"binary"` / `"multi"`).
    pub mode: String,
    /// Class names, index-aligned with every probability vector.
    pub labels: Vec<String>,
    /// Attached creators, batch order.
    pub creators: Vec<IngestedNode>,
    /// Attached subjects, batch order.
    pub subjects: Vec<IngestedNode>,
    /// Attached articles, batch order.
    pub articles: Vec<IngestedNode>,
    /// Largest number of *base* nodes any diffusion round recomputed —
    /// the affected-neighbourhood size (O(payload × degree), not
    /// O(corpus)).
    pub affected_base_nodes: usize,
    /// Diffusion rounds the delta update replayed.
    pub diffusion_rounds: usize,
    /// Wall-clock µs spent attaching + featurising the new nodes.
    pub attach_us: u64,
    /// Wall-clock µs spent on incremental diffusion.
    pub diffuse_us: u64,
    /// Combined article count after the ingest.
    pub articles_total: usize,
    /// Combined creator count after the ingest.
    pub creators_total: usize,
    /// Combined subject count after the ingest.
    pub subjects_total: usize,
}

/// The immutable, expensive-to-build part of a serving handle: corpus,
/// feature pipeline, weights, and the per-round diffused base states.
/// Shared by every [`ServeModel`] generation an ingest produces, so an
/// ingest clones an `Arc`, never the corpus.
struct BaseModel {
    corpus: Corpus,
    tokenized: TokenizedCorpus,
    explicit: ExplicitFeatures,
    train: TrainSets,
    mode: LabelMode,
    trained: TrainedFakeDetector,
    /// Full diffusion history (one `[articles, creators, subjects]`
    /// state triple per round) — incremental updates patch against
    /// every round, serving reads the last.
    rounds: Vec<[Matrix; 3]>,
}

impl BaseModel {
    fn ctx(&self) -> ExperimentContext<'_> {
        ExperimentContext {
            corpus: &self.corpus,
            tokenized: &self.tokenized,
            explicit: &self.explicit,
            train: &self.train,
            mode: self.mode,
            seed: 0,
        }
    }
}

/// Ingested nodes layered over a [`BaseModel`]: the overlay adjacency,
/// the frozen-pipeline features of every appended node (cumulative, in
/// append order — exactly what `delta_states` consumes), and the
/// per-round state deltas. Cloning copies appended data only.
#[derive(Clone)]
struct IngestOverlay {
    graph: GraphOverlay,
    explicit: [Vec<Vec<f32>>; 3],
    sequences: [Vec<Vec<usize>>; 3],
    states: StateOverlay,
}

fn type_slot(ty: NodeType) -> usize {
    match ty {
        NodeType::Article => 0,
        NodeType::Creator => 1,
        NodeType::Subject => 2,
    }
}

fn type_name(ty: NodeType) -> &'static str {
    match ty {
        NodeType::Article => "article",
        NodeType::Creator => "creator",
        NodeType::Subject => "subject",
    }
}

fn rows_to_matrix(rows: &[Vec<f32>], cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows.len(), cols);
    for (k, row) in rows.iter().enumerate() {
        m.row_mut(k).copy_from_slice(row);
    }
    m
}

/// A self-contained, thread-shareable serving handle: corpus + feature
/// pipeline + trained weights + precomputed diffused states, plus an
/// optional overlay of nodes ingested since the last full load.
///
/// Ingestion is copy-on-write: [`ServeModel::ingest`] returns a *new*
/// handle sharing the same base (behind an `Arc`) with the grown
/// overlay, leaving `self` — and every in-flight request pinned to it —
/// untouched. The server's model slot swaps handles atomically.
pub struct ServeModel {
    base: Arc<BaseModel>,
    overlay: Option<IngestOverlay>,
    precision: Precision,
    /// Prebuilt int8 twin — `Some` exactly when `precision` is
    /// [`Precision::Int8`], so the quantization cost is paid once at
    /// load, never per request (and shared across ingest generations).
    quant: Option<Arc<QuantModel>>,
}

impl ServeModel {
    /// Builds a serving handle from in-memory parts, rebuilding the
    /// feature pipeline and precomputing the diffused corpus states.
    pub fn new(
        corpus: Corpus,
        trained: TrainedFakeDetector,
        train: TrainSets,
        mode: LabelMode,
        explicit_dim: usize,
        seq_len: usize,
        max_vocab: usize,
    ) -> Self {
        let tokenized = TokenizedCorpus::build(&corpus, seq_len, max_vocab);
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, explicit_dim);
        let rounds = {
            let ctx = ExperimentContext {
                corpus: &corpus,
                tokenized: &tokenized,
                explicit: &explicit,
                train: &train,
                mode,
                seed: 0,
            };
            let hist =
                fd_obs::histogram("serve.warmup_us", &fd_obs::exponential_buckets(100.0, 4.0, 12));
            let _timer = fd_obs::span_timed("serve.warmup", hist);
            trained.diffused_states_rounds(&ctx)
        };
        Self {
            base: Arc::new(BaseModel { corpus, tokenized, explicit, train, mode, trained, rounds }),
            overlay: None,
            precision: Precision::F32,
            quant: None,
        }
    }

    /// Switches the serving forward pass to `precision`, building the
    /// int8 twin when needed. Consumes and returns `self` so loading
    /// reads as `ServeModel::new(..).with_precision(p)`.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self.quant = match precision {
            Precision::F32 => None,
            Precision::Int8 => Some(Arc::new(self.base.trained.quantize())),
        };
        self
    }

    /// Builds a serving handle from a corpus and a serialized
    /// [`TrainBundle`].
    pub fn from_bundle_json(corpus: Corpus, bundle_json: &str) -> Result<Self, String> {
        let bundle: TrainBundle =
            serde_json::from_str(bundle_json).map_err(|e| format!("bundle: {e}"))?;
        let trained = TrainedFakeDetector::from_json(&bundle.model_json)?;
        let mode = parse_mode(&bundle.mode)?;
        Ok(Self::new(
            corpus,
            trained,
            bundle.train.into(),
            mode,
            bundle.explicit_dim,
            bundle.seq_len,
            bundle.max_vocab,
        ))
    }

    /// Reads the corpus and bundle files and builds a serving handle.
    pub fn load(corpus_path: &str, bundle_path: &str) -> Result<Self, String> {
        Self::load_with_precision(corpus_path, bundle_path, Precision::F32)
    }

    /// [`ServeModel::load`] with an explicit serving precision — the
    /// entry point `fdctl serve --precision` uses (including across
    /// SIGHUP reloads, which keep the flag's value).
    pub fn load_with_precision(
        corpus_path: &str,
        bundle_path: &str,
        precision: Precision,
    ) -> Result<Self, String> {
        let corpus_json =
            std::fs::read_to_string(corpus_path).map_err(|e| format!("{corpus_path}: {e}"))?;
        let corpus = Corpus::from_json(&corpus_json)?;
        let bundle_json =
            std::fs::read_to_string(bundle_path).map_err(|e| format!("{bundle_path}: {e}"))?;
        Ok(Self::from_bundle_json(corpus, &bundle_json)?.with_precision(precision))
    }

    /// Combined node counts, `[articles, creators, subjects]`.
    fn counts(&self) -> [usize; 3] {
        match &self.overlay {
            Some(overlay) => overlay.graph.counts(),
            None => {
                let c = &self.base.corpus;
                [c.articles.len(), c.creators.len(), c.subjects.len()]
            }
        }
    }

    /// The state view requests score against: the final diffusion
    /// round, patched/extended by the ingest overlay when present.
    fn view(&self) -> StateView<'_> {
        let last = self.base.rounds.last().expect("at least one diffusion round");
        match &self.overlay {
            Some(overlay) => StateView::with_delta(last, overlay.states.final_round()),
            None => StateView::from_base(last),
        }
    }

    /// Checks a request against the combined graph (neighbour indices
    /// in range — ingested nodes are valid neighbours — and neighbour
    /// kinds appropriate for the node type) without scoring.
    pub fn validate(&self, request: &ScoreRequest) -> Result<(), String> {
        self.base.trained.validate_request_extended(self.counts(), request)
    }

    /// Scores a batch of requests in one matrix pass through the
    /// configured [`Precision`]. Results are bitwise-identical to
    /// scoring each request alone — on the int8 path too, since its
    /// integer accumulation is row-independent.
    pub fn score(&self, requests: &[ScoreRequest]) -> Result<Vec<Vec<f32>>, String> {
        let ctx = self.base.ctx();
        let view = self.view();
        match &self.quant {
            None => self.base.trained.score_batch_view(&ctx, &view, requests),
            Some(quant) => self.base.trained.score_batch_view_quant(&ctx, &view, requests, quant),
        }
    }

    /// Credibility distribution of a node *already in* the combined
    /// graph (base corpus or ingested), read straight off its diffused
    /// state — no featurisation, no batching. Errors name the valid
    /// range, so callers can map them to 404.
    pub fn score_node(&self, ty: NodeType, idx: usize) -> Result<Vec<f32>, String> {
        let slot = type_slot(ty);
        let counts = self.counts();
        if idx >= counts[slot] {
            return Err(format!(
                "{} {idx} out of range (graph has {})",
                type_name(ty),
                counts[slot]
            ));
        }
        let row = self.view().row(slot, idx);
        Ok(match &self.quant {
            None => self.base.trained.node_probabilities(ty, row),
            Some(quant) => self.base.trained.node_probabilities_quant(quant, ty, row),
        })
    }

    /// Attaches a batch of new nodes and runs incremental diffusion,
    /// returning a new serving handle plus a report with assigned ids,
    /// scores, and cost counters. `self` is untouched (copy-on-write:
    /// the base model is shared via `Arc`, only overlay data is
    /// cloned), so in-flight requests pinned to the old handle are
    /// unaffected; the caller swaps the new handle into the model slot.
    ///
    /// Cost scales with the batch's affected neighbourhood (the new
    /// nodes plus the base creators/subjects they cite, expanded one
    /// hop per extra diffusion round), **not** with corpus size.
    ///
    /// ```
    /// # use fd_core::{FakeDetector, FakeDetectorConfig};
    /// # use fd_data::{generate, CvSplits, ExplicitFeatures, GeneratorConfig,
    /// #               ExperimentContext, LabelMode, TokenizedCorpus, TrainSets};
    /// # use fd_serve::{IngestArticle, IngestBatch, ServeModel};
    /// # use rand::{rngs::StdRng, SeedableRng};
    /// # let corpus = generate(&GeneratorConfig::politifact().scaled(0.008), 7);
    /// # let tokenized = TokenizedCorpus::build(&corpus, 8, 1500);
    /// # let mut rng = StdRng::seed_from_u64(1);
    /// # let train = TrainSets {
    /// #     articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
    /// #     creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
    /// #     subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
    /// # };
    /// # let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 20);
    /// # let ctx = ExperimentContext {
    /// #     corpus: &corpus, tokenized: &tokenized, explicit: &explicit,
    /// #     train: &train, mode: LabelMode::Binary, seed: 1,
    /// # };
    /// # let config = FakeDetectorConfig { epochs: 1, ..FakeDetectorConfig::default() };
    /// # let trained = FakeDetector::new(config).fit(&ctx);
    /// let model = ServeModel::new(corpus, trained, train, LabelMode::Binary, 20, 8, 1500);
    /// let (articles, creators, subjects) = model.corpus_sizes();
    /// let batch = IngestBatch {
    ///     articles: vec![IngestArticle {
    ///         text: "breaking claims about the budget".into(),
    ///         creator: 0,
    ///         subjects: vec![0],
    ///     }],
    ///     ..IngestBatch::default()
    /// };
    /// let (next, report) = model.ingest(&batch).unwrap();
    /// // The new article is appended after the base corpus and scored.
    /// assert_eq!(report.articles[0].id, articles);
    /// assert!((report.articles[0].probabilities.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    /// assert_eq!(next.corpus_sizes(), (articles + 1, creators, subjects));
    /// // The old handle still serves the pre-ingest graph.
    /// assert_eq!(model.corpus_sizes(), (articles, creators, subjects));
    /// ```
    pub fn ingest(&self, batch: &IngestBatch) -> Result<(ServeModel, IngestReport), String> {
        if batch.is_empty() {
            return Err("ingest batch is empty: provide at least one creator, subject or article"
                .to_string());
        }
        let base = &self.base;
        let attach_start = Instant::now();
        let (mut graph, mut explicit, mut sequences) = match &self.overlay {
            Some(o) => (o.graph.clone(), o.explicit.clone(), o.sequences.clone()),
            None => (GraphOverlay::new(&base.corpus.graph), Default::default(), Default::default()),
        };
        {
            // Featurisation goes through the *frozen* pipeline: the
            // training-time vocabulary and χ² word sets, exactly as base
            // nodes were featurised. (Refreshing the pipeline itself is
            // the slow path: retrain + SIGHUP.)
            let tokenizer = Tokenizer::default();
            let mut featurise = |slot: usize, ty: NodeType, text: &str| {
                let tokens = tokenizer.tokenize(text);
                explicit[slot].push(base.explicit.featurise_tokens(ty, &tokens).row(0).to_vec());
                sequences[slot]
                    .push(encode_sequence(&tokens, &base.tokenized.vocab, base.tokenized.seq_len));
            };
            for creator in &batch.creators {
                graph.add_creator();
                featurise(1, NodeType::Creator, &creator.profile);
            }
            for subject in &batch.subjects {
                graph.add_subject();
                featurise(2, NodeType::Subject, &subject.description);
            }
            for (i, article) in batch.articles.iter().enumerate() {
                graph
                    .add_article(article.creator, &article.subjects)
                    .map_err(|e| format!("article {i}: {e}"))?;
                featurise(0, NodeType::Article, &article.text);
            }
        }
        let attach_us = attach_start.elapsed().as_micros() as u64;

        let diffuse_start = Instant::now();
        let dim = base.explicit.dim;
        let new_explicit: [Matrix; 3] =
            std::array::from_fn(|slot| rows_to_matrix(&explicit[slot], dim));
        let states = base.trained.delta_states(
            &base.ctx(),
            &base.rounds,
            &graph,
            &new_explicit,
            &sequences,
            None,
        )?;
        let diffuse_us = diffuse_start.elapsed().as_micros() as u64;

        let affected_base_nodes = states.max_affected_base;
        let counts = graph.counts();
        let diffusion_rounds = states.rounds.len();
        let next = ServeModel {
            base: Arc::clone(&self.base),
            overlay: Some(IngestOverlay { graph, explicit, sequences, states }),
            precision: self.precision,
            quant: self.quant.clone(),
        };
        // Assigned ids: this batch's nodes are the last of each slot.
        let scored = |ty: NodeType, total: usize, n: usize| -> Result<Vec<IngestedNode>, String> {
            (total - n..total)
                .map(|id| Ok(IngestedNode { id, probabilities: next.score_node(ty, id)? }))
                .collect()
        };
        let report = IngestReport {
            mode: mode_name(base.mode).into(),
            labels: next.class_labels().into_iter().map(str::to_string).collect(),
            creators: scored(NodeType::Creator, counts[1], batch.creators.len())?,
            subjects: scored(NodeType::Subject, counts[2], batch.subjects.len())?,
            articles: scored(NodeType::Article, counts[0], batch.articles.len())?,
            affected_base_nodes,
            diffusion_rounds,
            attach_us,
            diffuse_us,
            articles_total: counts[0],
            creators_total: counts[1],
            subjects_total: counts[2],
        };
        Ok((next, report))
    }

    /// The precision the forward pass runs at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The label mode the model was trained under.
    pub fn mode(&self) -> LabelMode {
        self.base.mode
    }

    /// Class names, index-aligned with the probability vectors.
    pub fn class_labels(&self) -> Vec<&'static str> {
        match self.base.mode {
            LabelMode::Binary => vec!["fake", "credible"],
            LabelMode::MultiClass => Credibility::ALL.iter().map(|l| l.name()).collect(),
        }
    }

    /// Combined graph sizes as (articles, creators, subjects) — base
    /// corpus plus ingested nodes — reported by `/healthz` so operators
    /// can sanity-check what is being served.
    pub fn corpus_sizes(&self) -> (usize, usize, usize) {
        let [articles, creators, subjects] = self.counts();
        (articles, creators, subjects)
    }
}

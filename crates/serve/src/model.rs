//! Loading a trained bundle into a shareable serving handle.
//!
//! [`ServeModel`] owns everything a request needs — the corpus, the
//! rebuilt feature pipeline, the trained weights, and the precomputed
//! diffused states — so the server can score inductive requests with a
//! single batched GDU step instead of replaying the whole graph pass
//! per request. It is `Send + Sync` and lives behind an `Arc` shared
//! by every handler thread and the batcher.

use fd_core::{QuantModel, ScoreRequest, TrainedFakeDetector};
use fd_data::{
    Corpus, Credibility, ExperimentContext, ExplicitFeatures, LabelMode, TokenizedCorpus,
    TrainSets,
};
use serde::{Deserialize, Serialize};

/// The on-disk train bundle written by `fdctl train` and consumed by
/// `fdctl predict|evaluate|score|serve`. Everything beyond the raw
/// weights that is needed to rebuild the feature pipeline exactly:
/// train indices (χ² statistics are train-only), feature width,
/// sequence length, vocabulary cap, and label mode.
#[derive(Serialize, Deserialize)]
pub struct TrainBundle {
    /// Serialized [`TrainedFakeDetector`] weights.
    pub model_json: String,
    /// Per-type training indices.
    pub train: BundleSplit,
    /// `"binary"` or `"multi"`.
    pub mode: String,
    /// χ² explicit-feature width per node type.
    pub explicit_dim: usize,
    /// Token-sequence truncation length.
    pub seq_len: usize,
    /// Vocabulary cap for the tokenizer.
    pub max_vocab: usize,
}

/// Serializable mirror of [`TrainSets`].
#[derive(Serialize, Deserialize)]
pub struct BundleSplit {
    /// Training article indices.
    pub articles: Vec<usize>,
    /// Training creator indices.
    pub creators: Vec<usize>,
    /// Training subject indices.
    pub subjects: Vec<usize>,
}

impl From<TrainSets> for BundleSplit {
    fn from(t: TrainSets) -> Self {
        Self { articles: t.articles, creators: t.creators, subjects: t.subjects }
    }
}

impl From<BundleSplit> for TrainSets {
    fn from(b: BundleSplit) -> Self {
        Self { articles: b.articles, creators: b.creators, subjects: b.subjects }
    }
}

/// Parses `"binary"` / `"multi"` into a [`LabelMode`].
pub fn parse_mode(raw: &str) -> Result<LabelMode, String> {
    match raw {
        "binary" => Ok(LabelMode::Binary),
        "multi" => Ok(LabelMode::MultiClass),
        other => Err(format!("mode must be binary or multi, got {other}")),
    }
}

/// The label-mode name used on the wire for a [`LabelMode`].
pub fn mode_name(mode: LabelMode) -> &'static str {
    match mode {
        LabelMode::Binary => "binary",
        LabelMode::MultiClass => "multi",
    }
}

/// Numeric precision of the serving forward pass, selected by
/// `fdctl serve --precision`.
///
/// * [`Precision::F32`] (default) — the exact native path: bit-identical
///   to training-time inference and to `fdctl score`.
/// * [`Precision::Int8`] — int8 weights with 16-bit activation
///   quantization for the GDU step and classification head; gated by
///   the parity suite at max |Δscore| ≤ 4e-3 and identical arg-max
///   labels vs f32. Featurisation, diffused states and softmax stay
///   f32.
///
/// Training is always full precision; this knob only affects
/// [`ServeModel::score`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Exact f32 — the reference numerics of the whole repo.
    F32,
    /// Int8-weight quantized forward (W8A16).
    Int8,
}

impl Precision {
    /// Parses a `--precision` value. `f64` is rejected with an
    /// explanation rather than silently aliased: this stack trains and
    /// serves in f32, so f32 *is* the exact reference and there is no
    /// wider path to fall back to.
    pub fn parse(raw: &str) -> Result<Precision, String> {
        match raw {
            "f32" => Ok(Precision::F32),
            "int8" => Ok(Precision::Int8),
            "f64" => Err(
                "precision f64 is not available: the model trains and serves in f32, \
                 so f32 is already the exact reference (use f32, or int8 for the \
                 quantized path)"
                    .into(),
            ),
            other => Err(format!("precision must be f32 or int8, got {other}")),
        }
    }

    /// The wire/flag name (`"f32"` / `"int8"`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

/// A self-contained, thread-shareable serving handle: corpus + feature
/// pipeline + trained weights + precomputed diffused states.
pub struct ServeModel {
    corpus: Corpus,
    tokenized: TokenizedCorpus,
    explicit: ExplicitFeatures,
    train: TrainSets,
    mode: LabelMode,
    trained: TrainedFakeDetector,
    states: [fd_tensor::Matrix; 3],
    precision: Precision,
    /// Prebuilt int8 twin — `Some` exactly when `precision` is
    /// [`Precision::Int8`], so the quantization cost is paid once at
    /// load, never per request.
    quant: Option<QuantModel>,
}

impl ServeModel {
    /// Builds a serving handle from in-memory parts, rebuilding the
    /// feature pipeline and precomputing the diffused corpus states.
    pub fn new(
        corpus: Corpus,
        trained: TrainedFakeDetector,
        train: TrainSets,
        mode: LabelMode,
        explicit_dim: usize,
        seq_len: usize,
        max_vocab: usize,
    ) -> Self {
        let tokenized = TokenizedCorpus::build(&corpus, seq_len, max_vocab);
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, explicit_dim);
        let states = {
            let ctx = ExperimentContext {
                corpus: &corpus,
                tokenized: &tokenized,
                explicit: &explicit,
                train: &train,
                mode,
                seed: 0,
            };
            let hist =
                fd_obs::histogram("serve.warmup_us", &fd_obs::exponential_buckets(100.0, 4.0, 12));
            let _timer = fd_obs::span_timed("serve.warmup", hist);
            trained.diffused_states(&ctx)
        };
        Self {
            corpus,
            tokenized,
            explicit,
            train,
            mode,
            trained,
            states,
            precision: Precision::F32,
            quant: None,
        }
    }

    /// Switches the serving forward pass to `precision`, building the
    /// int8 twin when needed. Consumes and returns `self` so loading
    /// reads as `ServeModel::new(..).with_precision(p)`.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self.quant = match precision {
            Precision::F32 => None,
            Precision::Int8 => Some(self.trained.quantize()),
        };
        self
    }

    /// Builds a serving handle from a corpus and a serialized
    /// [`TrainBundle`].
    pub fn from_bundle_json(corpus: Corpus, bundle_json: &str) -> Result<Self, String> {
        let bundle: TrainBundle =
            serde_json::from_str(bundle_json).map_err(|e| format!("bundle: {e}"))?;
        let trained = TrainedFakeDetector::from_json(&bundle.model_json)?;
        let mode = parse_mode(&bundle.mode)?;
        Ok(Self::new(
            corpus,
            trained,
            bundle.train.into(),
            mode,
            bundle.explicit_dim,
            bundle.seq_len,
            bundle.max_vocab,
        ))
    }

    /// Reads the corpus and bundle files and builds a serving handle.
    pub fn load(corpus_path: &str, bundle_path: &str) -> Result<Self, String> {
        Self::load_with_precision(corpus_path, bundle_path, Precision::F32)
    }

    /// [`ServeModel::load`] with an explicit serving precision — the
    /// entry point `fdctl serve --precision` uses (including across
    /// SIGHUP reloads, which keep the flag's value).
    pub fn load_with_precision(
        corpus_path: &str,
        bundle_path: &str,
        precision: Precision,
    ) -> Result<Self, String> {
        let corpus_json =
            std::fs::read_to_string(corpus_path).map_err(|e| format!("{corpus_path}: {e}"))?;
        let corpus = Corpus::from_json(&corpus_json)?;
        let bundle_json =
            std::fs::read_to_string(bundle_path).map_err(|e| format!("{bundle_path}: {e}"))?;
        Ok(Self::from_bundle_json(corpus, &bundle_json)?.with_precision(precision))
    }

    fn ctx(&self) -> ExperimentContext<'_> {
        ExperimentContext {
            corpus: &self.corpus,
            tokenized: &self.tokenized,
            explicit: &self.explicit,
            train: &self.train,
            mode: self.mode,
            seed: 0,
        }
    }

    /// Checks a request against the corpus (neighbour indices in range,
    /// neighbour kinds appropriate for the node type) without scoring.
    pub fn validate(&self, request: &ScoreRequest) -> Result<(), String> {
        self.trained.validate_request(&self.ctx(), request)
    }

    /// Scores a batch of requests in one matrix pass through the
    /// configured [`Precision`]. Results are bitwise-identical to
    /// scoring each request alone — on the int8 path too, since its
    /// integer accumulation is row-independent.
    pub fn score(&self, requests: &[ScoreRequest]) -> Result<Vec<Vec<f32>>, String> {
        match &self.quant {
            None => self.trained.score_batch(&self.ctx(), &self.states, requests),
            Some(quant) => {
                self.trained.score_batch_quant(&self.ctx(), &self.states, requests, quant)
            }
        }
    }

    /// The precision the forward pass runs at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The label mode the model was trained under.
    pub fn mode(&self) -> LabelMode {
        self.mode
    }

    /// Class names, index-aligned with the probability vectors.
    pub fn class_labels(&self) -> Vec<&'static str> {
        match self.mode {
            LabelMode::Binary => vec!["fake", "credible"],
            LabelMode::MultiClass => Credibility::ALL.iter().map(|l| l.name()).collect(),
        }
    }

    /// Corpus sizes as (articles, creators, subjects) — reported by
    /// `/healthz` so operators can sanity-check what got loaded.
    pub fn corpus_sizes(&self) -> (usize, usize, usize) {
        (self.corpus.articles.len(), self.corpus.creators.len(), self.corpus.subjects.len())
    }
}

//! The HTTP server: accept loop, per-connection handlers, routing, and
//! graceful shutdown.
//!
//! Each connection gets a handler thread that parses requests and
//! enqueues scoring jobs on the shared [`BatchQueue`]; one batcher
//! thread drains the queue and runs batched matrix passes over the
//! shared [`ServeModel`]. Handler threads poll the shutdown flag
//! between requests (via a short read timeout), so
//! [`Server::shutdown`] completes every in-flight request, drains the
//! queue, and only then tears the threads down.

use crate::batch::{BatchQueue, EnqueueError};
use crate::http::{read_request, write_response, write_response_ext, HttpError, Request};
use crate::model::{mode_name, IngestBatch, ServeModel};
use fd_core::ScoreRequest;
use fd_graph::NodeType;
use fd_obs::TraceCtx;
use serde::{Deserialize, Serialize};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often idle connection handlers wake up to poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(250);

/// Tunables for [`Server::start`]. The defaults match the documented
/// `fdctl serve` defaults (see OPERATIONS.md).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port 0 picks a free port
    /// (query it with [`Server::local_addr`]).
    pub addr: String,
    /// Largest batch the batcher scores in one matrix pass.
    pub max_batch: usize,
    /// Longest a queued request waits for co-batching company before a
    /// partial batch is dispatched.
    pub max_delay_ms: u64,
    /// Queued-job bound; beyond it new requests get 429.
    pub queue_bound: usize,
    /// Per-request deadline from enqueue to scored result (504 past it).
    pub request_timeout_ms: u64,
    /// Largest accepted request body (413 past it).
    pub max_body_bytes: usize,
    /// Largest node count a single `POST /v1/ingest` batch may attach
    /// (413 past it). Bounds the worst-case affected neighbourhood an
    /// ingest recomputes while holding the update lock.
    pub max_ingest_nodes: usize,
    /// `Some((i, n))` when this process is shard worker `i` of `n` in a
    /// routed tier (`fdctl serve --shard i/n`). The worker still loads
    /// the full corpus — diffused states are read-only, so any replica
    /// answers bitwise-identically — but it *owns* only the entities
    /// whose `id % n == i`: by-id readouts for other ids are refused
    /// with 421 so a misconfigured router is caught loudly instead of
    /// silently double-serving. `None` (the default) serves everything.
    pub shard: Option<(usize, usize)>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            max_batch: 32,
            max_delay_ms: 2,
            queue_bound: 1024,
            request_timeout_ms: 10_000,
            max_body_bytes: 1 << 20,
            max_ingest_nodes: 256,
            shard: None,
        }
    }
}

/// An atomically swappable model handle for zero-downtime reloads and
/// ingests.
///
/// Readers clone the inner `Arc` under a momentary read lock; a reload
/// replaces it under a write lock. Requests that already cloned the old
/// `Arc` keep scoring against it until they finish — a swap never drops
/// or corrupts an in-flight request, it only changes which model *new*
/// work picks up. The old model is freed when its last request
/// completes.
///
/// Writers (SIGHUP reloads and `/v1/ingest`) additionally serialise on
/// an update lock, so two concurrent ingests — or an ingest racing a
/// reload — apply one after the other instead of losing one side's
/// nodes. The update lock is never held while *readers* wait: `get` only
/// touches the inner `RwLock`.
pub struct ModelSlot {
    current: RwLock<Arc<ServeModel>>,
    update: Mutex<()>,
}

impl ModelSlot {
    /// A slot serving `model`.
    pub fn new(model: Arc<ServeModel>) -> Self {
        Self { current: RwLock::new(model), update: Mutex::new(()) }
    }

    /// The model new work should score against.
    pub fn get(&self) -> Arc<ServeModel> {
        // An Arc clone cannot leave the slot half-written, so a poison
        // (panicking reader) is recoverable.
        self.current.read().unwrap_or_else(|poisoned| poisoned.into_inner()).clone()
    }

    fn replace(&self, model: Arc<ServeModel>) -> Arc<ServeModel> {
        let mut slot = self.current.write().unwrap_or_else(|poisoned| poisoned.into_inner());
        std::mem::replace(&mut *slot, model)
    }

    /// Atomically replaces the served model; returns the previous one.
    pub fn swap(&self, model: Arc<ServeModel>) -> Arc<ServeModel> {
        let _writer = self.update.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        self.replace(model)
    }

    /// Read-modify-write under the update lock: derives a new model
    /// from the currently served one and publishes it atomically. An
    /// `Err` from `f` publishes nothing. `/v1/ingest` goes through
    /// here, so an ingest can never clobber (or be clobbered by) a
    /// concurrent ingest or SIGHUP reload.
    pub fn update<R>(
        &self,
        f: impl FnOnce(Arc<ServeModel>) -> Result<(Arc<ServeModel>, R), String>,
    ) -> Result<R, String> {
        let _writer = self.update.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let (next, out) = f(self.get())?;
        self.replace(next);
        Ok(out)
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// leaves the threads running detached; call `shutdown` for a clean,
/// draining stop.
pub struct Server {
    addr: SocketAddr,
    queue: Arc<BatchQueue>,
    slot: Arc<ModelSlot>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

/// Clonable remote control for a [`Server`]; lets a signal watcher ask
/// for shutdown without owning the server.
#[derive(Clone)]
pub struct ShutdownHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Flips the shutdown flag and wakes the accept loop. Idempotent;
    /// the actual draining happens in [`Server::shutdown`].
    pub fn request_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // A throwaway connection unblocks the accept() call so it can
        // observe the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

impl Server {
    /// Binds `config.addr` and starts the accept loop and the batcher.
    pub fn start(model: Arc<ServeModel>, config: &ServeConfig) -> Result<Self, String> {
        // SO_REUSEADDR so a replica killed mid-drill can be restarted
        // on its fixed port without waiting out TIME_WAIT.
        let listener = crate::http::bind_reuse(&config.addr)
            .map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let queue = Arc::new(BatchQueue::new(
            config.queue_bound,
            config.max_batch,
            Duration::from_millis(config.max_delay_ms),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let slot = Arc::new(ModelSlot::new(model));

        let batcher = {
            let queue = Arc::clone(&queue);
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || batcher_loop(&queue, &slot))
        };
        let accept = {
            let queue = Arc::clone(&queue);
            let slot = Arc::clone(&slot);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::spawn(move || accept_loop(listener, slot, queue, stop, config))
        };
        fd_obs::event(
            fd_obs::Level::Info,
            "serve.start",
            &[("addr", fd_obs::Value::Str(addr.to_string()))],
        );
        Ok(Self { addr, queue, slot, stop, accept: Some(accept), batcher: Some(batcher) })
    }

    /// Hot-swaps the served model without dropping in-flight requests
    /// (see [`ModelSlot`]); `fdctl serve` calls this on `SIGHUP`.
    pub fn swap_model(&self, model: Arc<ServeModel>) {
        let _old = self.slot.swap(model);
        fd_obs::counter("serve.reloads").inc();
        fd_obs::event(fd_obs::Level::Info, "serve.reload", &[]);
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clonable handle that can request shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { addr: self.addr, stop: Arc::clone(&self.stop) }
    }

    /// Graceful stop: stop accepting, flush the queue (already-enqueued
    /// jobs are scored and answered immediately, without waiting out the
    /// co-batching window; requests arriving after this point get 503),
    /// then join the handlers and finally the batcher. The queue must be
    /// shut down *before* the handlers are joined — handlers waiting on
    /// a queued result would otherwise block the join until the batching
    /// window expired.
    pub fn shutdown(mut self) {
        self.shutdown_handle().request_shutdown();
        self.queue.shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        fd_obs::event(fd_obs::Level::Info, "serve.stop", &[]);
    }
}

/// Scores batches until the queue shuts down and drains. The batcher is
/// a singleton — if it dies, every future request times out — so a
/// panic during scoring is contained per batch: the batch's requests
/// get a 500 and the loop keeps serving.
fn batcher_loop(queue: &BatchQueue, slot: &ModelSlot) {
    let size_hist = fd_obs::histogram("serve.batch_size", &fd_obs::exponential_buckets(1.0, 2.0, 9));
    let wait_hist =
        fd_obs::histogram("serve.queue_wait_us", &fd_obs::exponential_buckets(50.0, 4.0, 10));
    let score_hist =
        fd_obs::histogram("serve.batch_score_us", &fd_obs::exponential_buckets(100.0, 4.0, 12));
    let occupancy = fd_obs::gauge("serve.batch_occupancy");
    while let Some(batch) = queue.next_batch() {
        size_hist.record(batch.requests.len() as f64);
        occupancy.set(batch.requests.len() as f64 / queue.max_batch() as f64);
        // The jobs crossed the thread boundary carrying their handler's
        // trace context: bill each request its own queue wait, then the
        // shared assembly/scoring time, so every trace in the batch is
        // self-contained.
        let assembled_us = fd_obs::trace::now_us();
        for (trace, wait) in batch.traces.iter().zip(&batch.waits) {
            wait_hist.record(wait.as_secs_f64() * 1e6);
            if trace.sampled {
                let wait_us = wait.as_micros() as u64;
                trace.child().record("queue.wait", assembled_us.saturating_sub(wait_us), wait_us);
            }
        }
        // The model is re-read per batch, so a hot reload takes effect
        // on the very next batch while this one finishes on the Arc it
        // already holds.
        let model = slot.get();
        let score_start_us = fd_obs::trace::now_us();
        let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(delay) = fd_ckpt::fault::slow_batch() {
                std::thread::sleep(delay);
            }
            if fd_ckpt::fault::panic_batch() {
                panic!("injected batch panic (FD_FAULT=panic-batch)");
            }
            let _timer = fd_obs::span_timed("serve.batch_score", score_hist);
            model.score(&batch.requests)
        }));
        let score_end_us = fd_obs::trace::now_us();
        for trace in &batch.traces {
            if trace.sampled {
                trace.child().record(
                    "batch.assemble",
                    assembled_us,
                    score_start_us.saturating_sub(assembled_us),
                );
                trace.child().record(
                    "batch.score",
                    score_start_us,
                    score_end_us.saturating_sub(score_start_us),
                );
            }
        }
        match scored {
            // Send failures mean the handler gave up (timeout / dead
            // connection); the result is simply dropped.
            Ok(Ok(rows)) => {
                for (row, reply) in rows.into_iter().zip(&batch.replies) {
                    let _ = reply.send(Ok(row));
                }
            }
            Ok(Err(e)) => {
                fd_obs::counter("serve.batch_errors").inc();
                for reply in &batch.replies {
                    let _ = reply.send(Err(e.clone()));
                }
            }
            Err(_) => {
                fd_obs::counter("serve.batch_panics").inc();
                fd_obs::event(fd_obs::Level::Error, "serve.batch_panic", &[]);
                for reply in &batch.replies {
                    let _ = reply.send(Err("internal error: scoring panicked".to_string()));
                }
            }
        }
    }
}

/// Accepts connections until shutdown, then joins every handler thread
/// so in-flight requests complete before `Server::shutdown` proceeds.
fn accept_loop(
    listener: TcpListener,
    slot: Arc<ModelSlot>,
    queue: Arc<BatchQueue>,
    stop: Arc<AtomicBool>,
    config: ServeConfig,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        fd_obs::counter("serve.connections").inc();
        let slot = Arc::clone(&slot);
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        let config = config.clone();
        handlers.push(std::thread::spawn(move || {
            handle_connection(stream, &slot, &queue, &stop, &config)
        }));
        handlers.retain(|h| !h.is_finished());
    }
    for handler in handlers {
        let _ = handler.join();
    }
}

/// Serves one keep-alive connection until the peer closes, an
/// unrecoverable parse error occurs, or shutdown is requested.
fn handle_connection(
    mut stream: TcpStream,
    slot: &ModelSlot,
    queue: &BatchQueue,
    stop: &AtomicBool,
    config: &ServeConfig,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let latency_hist =
        fd_obs::histogram("serve.request_us", &fd_obs::exponential_buckets(50.0, 4.0, 12));
    let inflight = fd_obs::gauge("serve.inflight_requests");
    loop {
        let request = match read_request(&mut stream, config.max_body_bytes) {
            Ok(request) => request,
            Err(HttpError::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(HttpError::Closed) => return,
            Err(HttpError::Io(_)) => return,
            // The connection state is unknown after these; respond and
            // close rather than trying to resynchronise.
            Err(e @ (HttpError::HeadTooLarge | HttpError::BodyTooLarge(_))) => {
                respond_error(&mut stream, 413, &e.to_string());
                return;
            }
            Err(e @ HttpError::Malformed(_)) => {
                respond_error(&mut stream, 400, &e.to_string());
                return;
            }
        };
        fd_obs::counter("serve.requests").inc();
        inflight.add(1.0);
        // The request's root trace context: derived from the inbound
        // X-Request-Id when the client sent one (so retries map to the
        // same trace id), fresh otherwise. Every span of this request —
        // including those the batcher thread records — hangs off it.
        let trace = match request.request_id.as_deref() {
            Some(id) => TraceCtx::from_request_id(id),
            None => TraceCtx::root(),
        };
        // The parse span is anchored at the first byte's arrival, so
        // keep-alive idle time between requests is not billed to it.
        let parse_end_us = fd_obs::trace::now_us();
        let parse_us = request.received.elapsed().as_micros() as u64;
        let request_start_us = parse_end_us.saturating_sub(parse_us);
        if trace.sampled {
            trace.child().record("http.parse", request_start_us, parse_us);
        }
        let started = Instant::now();
        // Each request pins the model that was current when it arrived;
        // a concurrent hot reload affects only later requests. Panics
        // inside routing map to a 500 on this connection instead of
        // silently dropping it mid-response.
        let model = slot.get();
        let (status, body, content_type, extra_headers) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                route(&model, slot, queue, config, &request, &trace)
            }))
            .unwrap_or_else(|_| {
                fd_obs::counter("serve.handler_panics").inc();
                fd_obs::event(fd_obs::Level::Error, "serve.handler_panic", &[]);
                (500, error_body("internal error"), "application/json", vec![])
            });
        latency_hist.record(started.elapsed().as_secs_f64() * 1e6);
        match status {
            429 => fd_obs::counter("serve.responses_429").inc(),
            504 => fd_obs::counter("serve.responses_504").inc(),
            _ => {}
        }
        if status >= 500 {
            fd_obs::counter("serve.responses_5xx").inc();
        } else if status >= 400 {
            fd_obs::counter("serve.responses_4xx").inc();
        } else {
            fd_obs::counter("serve.responses_2xx").inc();
        }
        let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
        // Echo the request id (client-supplied, else the generated
        // trace id) so callers can correlate responses with traces.
        let echo_id = request.request_id.clone().unwrap_or_else(|| trace.trace_hex());
        let mut headers: Vec<(&str, &str)> = vec![("x-request-id", &echo_id)];
        headers.extend(extra_headers.iter().map(|(k, v)| (k.as_str(), v.as_str())));
        let respond_start_us = fd_obs::trace::now_us();
        let write_ok =
            write_response_ext(&mut stream, status, &body, keep_alive, content_type, &headers)
                .is_ok();
        if trace.sampled {
            let end_us = fd_obs::trace::now_us();
            trace.child().record(
                "respond",
                respond_start_us,
                end_us.saturating_sub(respond_start_us),
            );
            trace.record("request", request_start_us, end_us.saturating_sub(request_start_us));
        }
        inflight.add(-1.0);
        if !write_ok || !keep_alive {
            return;
        }
    }
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str) {
    fd_obs::counter("serve.responses_4xx").inc();
    let _ = write_response(stream, status, &error_body(message), false);
}

/// One entity to score, as it appears on the wire. Exactly one of
/// `text` (inductive scoring of an out-of-graph entity) or `id`
/// (state readout of a node already in the graph, including ingested
/// ones) must be present.
#[derive(Deserialize)]
struct WireRequest {
    /// `article` (default), `creator`, or `subject`.
    #[serde(default = "default_node_type")]
    node_type: String,
    #[serde(default)]
    text: Option<String>,
    #[serde(default)]
    id: Option<usize>,
    #[serde(default)]
    creator: Option<usize>,
    #[serde(default)]
    subjects: Vec<usize>,
    #[serde(default)]
    articles: Vec<usize>,
}

/// How a `/v1/predict` request is served: inline by-id readout, or
/// featurise-and-batch inductive scoring.
enum PredictTarget {
    ById(NodeType, usize),
    Inductive(ScoreRequest),
}

fn default_node_type() -> String {
    "article".into()
}

#[derive(Deserialize)]
struct WireBatch {
    requests: Vec<WireRequest>,
}

#[derive(Serialize)]
struct PredictResponse {
    mode: String,
    labels: Vec<String>,
    probabilities: Vec<f32>,
}

#[derive(Serialize)]
struct BatchResponse {
    mode: String,
    labels: Vec<String>,
    results: Vec<Vec<f32>>,
}

#[derive(Serialize)]
struct Health {
    status: String,
    mode: String,
    precision: String,
    articles: usize,
    creators: usize,
    subjects: usize,
    /// This worker's shard index; 0 when unsharded.
    shard: usize,
    /// Total shards in the tier; 1 when unsharded.
    shards: usize,
}

#[derive(Serialize)]
struct ErrorBody {
    error: String,
}

fn error_body(message: &str) -> String {
    serde_json::to_string(&ErrorBody { error: message.to_string() })
        .unwrap_or_else(|_| "{}".into())
}

fn owned_labels(model: &ServeModel) -> Vec<String> {
    model.class_labels().into_iter().map(str::to_string).collect()
}

impl WireRequest {
    fn into_target(self) -> Result<PredictTarget, String> {
        let node_type = match self.node_type.as_str() {
            "article" => NodeType::Article,
            "creator" => NodeType::Creator,
            "subject" => NodeType::Subject,
            other => return Err(format!("node_type must be article|creator|subject, got {other}")),
        };
        match (self.id, self.text) {
            (Some(_), Some(_)) => Err("provide either text or id, not both".to_string()),
            (None, None) => {
                Err("provide text (inductive scoring) or id (by-id readout)".to_string())
            }
            (Some(id), None) => {
                if self.creator.is_some() || !self.subjects.is_empty() || !self.articles.is_empty()
                {
                    return Err(
                        "by-id requests must not name neighbours: the graph already has them"
                            .to_string(),
                    );
                }
                Ok(PredictTarget::ById(node_type, id))
            }
            (None, Some(text)) => Ok(PredictTarget::Inductive(ScoreRequest {
                node_type,
                text,
                creator: self.creator,
                subjects: self.subjects,
                articles: self.articles,
            })),
        }
    }

    /// The inductive-only conversion `/v1/predict_batch` uses; by-id
    /// readouts are not batched (they never touch the batcher).
    fn into_score_request(self) -> Result<ScoreRequest, String> {
        match self.into_target()? {
            PredictTarget::Inductive(request) => Ok(request),
            PredictTarget::ById(..) => {
                Err("by-id requests are not batched; use /v1/predict".to_string())
            }
        }
    }
}

/// Response headers beyond the defaults — currently only `Retry-After`
/// on 429s. Owned strings because the values are computed per response.
type ExtraHeaders = Vec<(String, String)>;

/// Dispatches one parsed request to its endpoint; returns status, body,
/// the body's `Content-Type`, and any extra response headers. Never
/// panics on request content.
fn route(
    model: &ServeModel,
    slot: &ModelSlot,
    queue: &BatchQueue,
    config: &ServeConfig,
    request: &Request,
    trace: &TraceCtx,
) -> (u16, String, &'static str, ExtraHeaders) {
    const JSON: &str = "application/json";
    // Split off the query string so `/metrics?format=json` routes like
    // `/metrics`.
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (request.path.as_str(), None),
    };
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let (articles, creators, subjects) = model.corpus_sizes();
            let (shard, shards) = config.shard.unwrap_or((0, 1));
            let health = Health {
                status: "ok".into(),
                mode: mode_name(model.mode()).into(),
                precision: model.precision().name().into(),
                articles,
                creators,
                subjects,
                shard,
                shards,
            };
            (200, serde_json::to_string(&health).unwrap_or_else(|_| "{}".into()), JSON, vec![])
        }
        // Prometheus text exposition by default; the original JSON
        // snapshot stays reachable at `/metrics?format=json`.
        ("GET", "/metrics") => {
            if query.is_some_and(|q| q.split('&').any(|p| p == "format=json")) {
                (200, fd_obs::snapshot(), JSON, vec![])
            } else {
                (200, fd_obs::prometheus_text(), fd_obs::PROMETHEUS_CONTENT_TYPE, vec![])
            }
        }
        ("POST", "/v1/predict") => {
            let (status, body, headers) = predict_one(model, queue, config, &request.body, trace);
            (status, body, JSON, headers)
        }
        ("POST", "/v1/predict_batch") => {
            let (status, body, headers) = predict_batch(model, queue, config, &request.body, trace);
            (status, body, JSON, headers)
        }
        ("POST", "/v1/ingest") => {
            let (status, body) = ingest(slot, config, &request.body, trace);
            (status, body, JSON, vec![])
        }
        (_, "/healthz" | "/metrics" | "/v1/predict" | "/v1/predict_batch" | "/v1/ingest") => {
            (405, error_body("method not allowed"), JSON, vec![])
        }
        (_, path) => (404, error_body(&format!("no such endpoint: {path}")), JSON, vec![]),
    }
}

fn parse_body<T: Deserialize>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    serde_json::from_str(text).map_err(|e| format!("invalid request body: {e}"))
}

/// Seconds a 429'd client should wait before retrying: the backlog in
/// batches (`depth / max_batch`, rounded up) times the mean
/// batch-scoring time observed so far, clamped to `[1, 30]`. Before the
/// first batch has been scored there is no mean yet; 1 s is a safe
/// floor either way since the clamp guarantees `Retry-After >= 1`.
pub fn retry_after_secs(queue: &BatchQueue) -> u64 {
    let hist =
        fd_obs::histogram("serve.batch_score_us", &fd_obs::exponential_buckets(100.0, 4.0, 12));
    let mean_us = if hist.count() > 0 { hist.sum() / hist.count() as f64 } else { 0.0 };
    let backlog_batches = (queue.depth() as f64 / queue.max_batch() as f64).ceil();
    let secs = (backlog_batches * mean_us / 1e6).ceil() as u64;
    secs.clamp(1, 30)
}

/// Maps an enqueue rejection to its HTTP response. 429s carry a
/// `Retry-After` so well-behaved clients back off for roughly as long
/// as the backlog needs to drain, instead of hammering a full queue.
fn enqueue_failure(queue: &BatchQueue, err: EnqueueError) -> (u16, String, ExtraHeaders) {
    match err {
        EnqueueError::Full => (
            429,
            error_body("queue full, retry later"),
            vec![("retry-after".into(), retry_after_secs(queue).to_string())],
        ),
        EnqueueError::ShuttingDown => (503, error_body("server is shutting down"), vec![]),
    }
}

fn predict_one(
    model: &ServeModel,
    queue: &BatchQueue,
    config: &ServeConfig,
    body: &[u8],
    trace: &TraceCtx,
) -> (u16, String, ExtraHeaders) {
    let wire: WireRequest = match parse_body(body) {
        Ok(wire) => wire,
        Err(e) => return (400, error_body(&e), vec![]),
    };
    let score_request = match wire.into_target() {
        // By-id readouts answer inline off the precomputed (and
        // ingest-patched) states — no featurisation, no batcher trip.
        Ok(PredictTarget::ById(ty, id)) => {
            // Shard ownership guard: a by-id readout landing on a
            // worker that does not own the id means the router's shard
            // math disagrees with ours — refuse loudly (421) rather
            // than answer for an entity another shard owns.
            if let Some((index, total)) = config.shard {
                if id % total != index {
                    fd_obs::counter("serve.responses_421").inc();
                    return (
                        421,
                        error_body(&format!(
                            "id {id} belongs to shard {}/{total}, this worker is {index}/{total}",
                            id % total
                        )),
                        vec![],
                    );
                }
            }
            return match model.score_node(ty, id) {
                Ok(probabilities) => {
                    let response = PredictResponse {
                        mode: mode_name(model.mode()).into(),
                        labels: owned_labels(model),
                        probabilities,
                    };
                    (200, serde_json::to_string(&response).unwrap_or_else(|_| "{}".into()), vec![])
                }
                Err(e) => (404, error_body(&e), vec![]),
            };
        }
        Ok(PredictTarget::Inductive(r)) => r,
        Err(e) => return (400, error_body(&e), vec![]),
    };
    // Validate before enqueueing so the batcher only ever sees
    // well-formed jobs and bad requests fail fast with a 400.
    if let Err(e) = model.validate(&score_request) {
        return (400, error_body(&e), vec![]);
    }
    let receiver = match queue.enqueue_traced(score_request, *trace) {
        Ok(rx) => rx,
        Err(e) => return enqueue_failure(queue, e),
    };
    match receiver.recv_timeout(Duration::from_millis(config.request_timeout_ms)) {
        Ok(Ok(probabilities)) => {
            let response = PredictResponse {
                mode: mode_name(model.mode()).into(),
                labels: owned_labels(model),
                probabilities,
            };
            (200, serde_json::to_string(&response).unwrap_or_else(|_| "{}".into()), vec![])
        }
        Ok(Err(e)) => (500, error_body(&e), vec![]),
        Err(RecvTimeoutError::Timeout) => {
            fd_obs::counter("serve.request_timeouts").inc();
            (504, error_body("scoring deadline exceeded"), vec![])
        }
        Err(RecvTimeoutError::Disconnected) => (500, error_body("batcher unavailable"), vec![]),
    }
}

fn predict_batch(
    model: &ServeModel,
    queue: &BatchQueue,
    config: &ServeConfig,
    body: &[u8],
    trace: &TraceCtx,
) -> (u16, String, ExtraHeaders) {
    let wire: WireBatch = match parse_body(body) {
        Ok(wire) => wire,
        Err(e) => return (400, error_body(&e), vec![]),
    };
    let mut score_requests = Vec::with_capacity(wire.requests.len());
    for (i, item) in wire.requests.into_iter().enumerate() {
        let score_request = match item.into_score_request() {
            Ok(r) => r,
            Err(e) => return (400, error_body(&format!("request {i}: {e}")), vec![]),
        };
        if let Err(e) = model.validate(&score_request) {
            return (400, error_body(&format!("request {i}: {e}")), vec![]);
        }
        score_requests.push(score_request);
    }
    let mut receivers = Vec::with_capacity(score_requests.len());
    for score_request in score_requests {
        match queue.enqueue_traced(score_request, *trace) {
            Ok(rx) => receivers.push(rx),
            // Earlier items of this batch stay queued; their results are
            // dropped by the batcher when it finds the receivers dead.
            Err(e) => return enqueue_failure(queue, e),
        }
    }
    // One deadline for the whole batch, not per item.
    let deadline = Instant::now() + Duration::from_millis(config.request_timeout_ms);
    let mut results = Vec::with_capacity(receivers.len());
    for receiver in receivers {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match receiver.recv_timeout(remaining) {
            Ok(Ok(probabilities)) => results.push(probabilities),
            Ok(Err(e)) => return (500, error_body(&e), vec![]),
            Err(RecvTimeoutError::Timeout) => {
                fd_obs::counter("serve.request_timeouts").inc();
                return (504, error_body("scoring deadline exceeded"), vec![]);
            }
            Err(RecvTimeoutError::Disconnected) => {
                return (500, error_body("batcher unavailable"), vec![])
            }
        }
    }
    let response = BatchResponse {
        mode: mode_name(model.mode()).into(),
        labels: owned_labels(model),
        results,
    };
    (200, serde_json::to_string(&response).unwrap_or_else(|_| "{}".into()), vec![])
}

/// `POST /v1/ingest`: attach new nodes, run incremental diffusion, and
/// publish the grown model through the slot's update lock. Predict
/// traffic is never blocked — readers keep cloning whichever `Arc` is
/// current, and requests already pinned to the old model finish on it.
fn ingest(
    slot: &ModelSlot,
    config: &ServeConfig,
    body: &[u8],
    trace: &TraceCtx,
) -> (u16, String) {
    let batch: IngestBatch = match parse_body(body) {
        Ok(batch) => batch,
        Err(e) => {
            fd_obs::counter("serve.ingest_rejected").inc();
            return (400, error_body(&e));
        }
    };
    let nodes = batch.len();
    if nodes == 0 {
        fd_obs::counter("serve.ingest_rejected").inc();
        return (
            400,
            error_body("ingest batch is empty: provide at least one creator, subject or article"),
        );
    }
    if nodes > config.max_ingest_nodes {
        fd_obs::counter("serve.ingest_rejected").inc();
        return (
            413,
            error_body(&format!(
                "ingest batch attaches {nodes} nodes, limit is {} (raise --max-ingest-nodes)",
                config.max_ingest_nodes
            )),
        );
    }
    // The closure re-reads the current model *inside* the update lock,
    // so concurrent ingests (and SIGHUP reloads) serialise instead of
    // losing each other's nodes.
    let outcome = slot.update(|current| {
        let (next, report) = current.ingest(&batch)?;
        Ok((Arc::new(next), report))
    });
    match outcome {
        Ok(report) => {
            fd_obs::counter("serve.ingests").inc();
            fd_obs::counter("serve.ingest_nodes").add(nodes as u64);
            fd_obs::histogram("serve.ingest_attach_us", &fd_obs::exponential_buckets(50.0, 4.0, 10))
                .record(report.attach_us as f64);
            fd_obs::histogram(
                "serve.ingest_diffuse_us",
                &fd_obs::exponential_buckets(50.0, 4.0, 12),
            )
            .record(report.diffuse_us as f64);
            fd_obs::histogram("serve.ingest_affected", &fd_obs::exponential_buckets(1.0, 2.0, 12))
                .record(report.affected_base_nodes as f64);
            if trace.sampled {
                // The two phases run back to back and end roughly now;
                // reconstruct their spans from the reported durations.
                let end_us = fd_obs::trace::now_us();
                let diffuse_start = end_us.saturating_sub(report.diffuse_us);
                let attach_start = diffuse_start.saturating_sub(report.attach_us);
                trace.child().record("ingest.attach", attach_start, report.attach_us);
                trace.child().record("ingest.diffuse", diffuse_start, report.diffuse_us);
            }
            fd_obs::event(
                fd_obs::Level::Info,
                "serve.ingest",
                &[
                    ("nodes", nodes.into()),
                    ("affected_base", report.affected_base_nodes.into()),
                    ("articles_total", report.articles_total.into()),
                ],
            );
            (200, serde_json::to_string(&report).unwrap_or_else(|_| "{}".into()))
        }
        Err(e) => {
            fd_obs::counter("serve.ingest_rejected").inc();
            (400, error_body(&e))
        }
    }
}

/// Installs `SIGINT`/`SIGTERM` handlers that set a process-wide flag,
/// readable via [`signal_received`], plus a `SIGHUP` handler that sets
/// a reload flag readable via [`take_reload_request`]. Uses the libc
/// `signal(2)` symbol directly so no crate dependency is needed; the
/// handlers only touch atomics, which is async-signal-safe.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn mark(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" fn mark_reload(_signum: i32) {
        RELOAD_REQUESTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, mark as extern "C" fn(i32) as usize);
        signal(SIGTERM, mark as extern "C" fn(i32) as usize);
        signal(SIGHUP, mark_reload as extern "C" fn(i32) as usize);
    }
}

/// No-op off Unix; `fdctl serve` then only stops when killed.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

static SIGNALLED: AtomicBool = AtomicBool::new(false);
static RELOAD_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has arrived since
/// [`install_signal_handlers`].
pub fn signal_received() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Consumes a pending `SIGHUP` reload request: true exactly once per
/// signal. The `fdctl serve` supervision loop polls this and responds
/// by reloading the bundle from disk and calling
/// [`Server::swap_model`].
pub fn take_reload_request() -> bool {
    RELOAD_REQUESTED.swap(false, Ordering::SeqCst)
}

//! A minimal HTTP/1.1 implementation over `std::net` — just enough
//! surface for the credibility-inference API: request-head parsing with
//! hard size caps, `Content-Length` bodies, keep-alive, and a blocking
//! client used by the tests and the load generator.
//!
//! Everything here is defensive: malformed input produces a typed
//! [`HttpError`] that the server maps to a 4xx response; nothing panics
//! on wire data.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

/// Binds a TCP listener with `SO_REUSEADDR` set (Linux), so a killed
/// worker can be restarted on the same port immediately. Without it,
/// connections the dead process left behind sit in `TIME_WAIT` and
/// block the rebind for a minute — which defeats replica-restart
/// drills (`scripts/router_chaos.sh` kills and revives shard workers
/// on fixed ports). Falls back to a plain [`TcpListener::bind`] off
/// Linux, or when `addr` does not resolve to IPv4.
pub fn bind_reuse(addr: &str) -> io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    {
        use std::net::{SocketAddr, ToSocketAddrs};
        let v4 = addr
            .to_socket_addrs()?
            .find_map(|a| match a {
                SocketAddr::V4(v4) => Some(v4),
                SocketAddr::V6(_) => None,
            });
        if let Some(v4) = v4 {
            return bind_reuse_v4(v4);
        }
    }
    TcpListener::bind(addr)
}

/// The Linux FFI path of [`bind_reuse`]: socket → `SO_REUSEADDR` →
/// bind → listen, handing the finished fd to [`TcpListener`]. Uses the
/// raw syscall surface directly (as the signal handlers already do) so
/// no crate dependency is needed.
#[cfg(target_os = "linux")]
fn bind_reuse_v4(addr: std::net::SocketAddrV4) -> io::Result<TcpListener> {
    use std::os::fd::FromRawFd;
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const u32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    /// `struct sockaddr_in` as Linux lays it out.
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    // SAFETY: plain syscalls on a fresh fd; the fd is closed on every
    // error path and ownership transfers to TcpListener on success.
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let on: u32 = 1;
        let sa = SockaddrIn {
            family: AF_INET as u16,
            port_be: addr.port().to_be(),
            addr_be: u32::from(*addr.ip()).to_be(),
            zero: [0; 8],
        };
        let rc = setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, 4);
        let rc = if rc == 0 { bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) } else { rc };
        let rc = if rc == 0 { listen(fd, 128) } else { rc };
        if rc != 0 {
            let err = io::Error::last_os_error();
            close(fd);
            return Err(err);
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …(uppercase as received).
    pub method: String,
    /// The request target, e.g. `/v1/predict`.
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Inbound `X-Request-Id` header, when the client sent one — the
    /// server derives a deterministic trace id from it and echoes it on
    /// the response.
    pub request_id: Option<String>,
    /// When the request's first byte arrived — the trace's anchor for
    /// the parse span, so keep-alive idle time between requests is not
    /// billed to parsing.
    pub received: Instant,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request.
    Closed,
    /// Reading timed out (the caller decides whether to retry).
    TimedOut,
    /// Transport failure.
    Io(io::Error),
    /// The request head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The declared `Content-Length` exceeded the server's body cap.
    BodyTooLarge(usize),
    /// The bytes did not parse as HTTP/1.x.
    Malformed(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::TimedOut => write!(f, "read timed out"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge(cap) => write!(f, "request body exceeds {cap} bytes"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::TimedOut,
            io::ErrorKind::UnexpectedEof => HttpError::Closed,
            _ => HttpError::Io(e),
        }
    }
}

/// Reads one request from `stream`. `max_body` caps the accepted
/// `Content-Length`; larger declarations return
/// [`HttpError::BodyTooLarge`] without draining the body.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let (head, received) = read_head(stream)?;
    let text = std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("head not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().filter(|m| !m.is_empty()).ok_or(HttpError::Malformed("no method"))?;
    let path = parts.next().ok_or(HttpError::Malformed("no path"))?;
    let version = parts.next().ok_or(HttpError::Malformed("no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    let mut request_id = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without colon"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length =
                value.parse().map_err(|_| HttpError::Malformed("bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-request-id") && !value.is_empty() {
            // Cap what we echo back: a hostile header should not grow
            // the response unboundedly.
            request_id = Some(value.chars().take(128).collect::<String>());
        }
    }
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge(max_body));
    }

    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
        request_id,
        received,
    })
}

/// Reads until the `\r\n\r\n` head terminator, leaving the stream
/// positioned at the body, and stamps when the first byte arrived.
/// Reads byte-by-byte through a small state machine: request heads are
/// tiny and this keeps the body bytes out of any look-ahead buffer.
fn read_head(stream: &mut TcpStream) -> Result<(Vec<u8>, Instant), HttpError> {
    let mut head = Vec::with_capacity(256);
    let mut matched = 0usize; // prefix length of b"\r\n\r\n" seen
    let mut byte = [0u8; 1];
    let mut received = None;
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return if head.is_empty() { Err(HttpError::Closed) } else {
                Err(HttpError::Malformed("connection closed mid-head"))
            };
        }
        received.get_or_insert_with(Instant::now);
        head.push(byte[0]);
        matched = match (matched, byte[0]) {
            (0, b'\r') | (2, b'\r') => matched + 1,
            (1, b'\n') | (3, b'\n') => matched + 1,
            (_, b'\r') => 1,
            _ => 0,
        };
        if matched == 4 {
            head.truncate(head.len() - 4);
            return Ok((head, received.unwrap_or_else(Instant::now)));
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
    }
}

/// Writes a JSON response. `keep_alive` controls the `Connection`
/// header; the caller closes the stream when it is `false`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response_ext(stream, status, body, keep_alive, "application/json", &[])
}

/// [`write_response`] with an explicit `Content-Type` and extra
/// response headers (e.g. the echoed `X-Request-Id`). Header values are
/// sanitised against CRLF injection — any control character becomes a
/// space.
pub fn write_response_ext(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
    content_type: &str,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    use std::fmt::Write as _;
    let reason = reason_phrase(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        let _ = write!(head, "{name}: ");
        head.extend(value.chars().map(|c| if c.is_control() { ' ' } else { c }));
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The standard reason phrase for the statuses this server emits.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        421 => "Misdirected Request",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

/// A blocking keep-alive HTTP client, used by the integration tests and
/// the `report serve` load generator. One client drives one connection;
/// for concurrent load, create one client per thread.
pub struct HttpClient {
    stream: TcpStream,
}

/// `(status, body, response headers)` — headers with lowercased names,
/// as returned by the `*_with_headers` client calls.
pub type FullResponse = (u16, String, Vec<(String, String)>);

impl HttpClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// [`Self::connect`] with a connect *and* read timeout — what the
    /// router uses, so an unreachable replica costs a bounded attempt
    /// instead of a hung dispatch thread.
    pub fn connect_timeout(addr: &str, timeout: std::time::Duration) -> io::Result<Self> {
        use std::net::ToSocketAddrs;
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
        let stream = TcpStream::connect_timeout(&sock, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { stream })
    }

    /// Sets the response-read (and request-write) timeout.
    pub fn set_timeout(&mut self, timeout: std::time::Duration) -> io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))
    }

    /// Sends `GET path` and returns `(status, body)`.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.roundtrip(&format!("GET {path} HTTP/1.1\r\nhost: fd-serve\r\n\r\n"))
    }

    /// Sends `GET path` and returns `(status, body, response headers)`
    /// — the variant the content-type and tracing tests use. Header
    /// names come back lowercased.
    pub fn get_with_headers(
        &mut self,
        path: &str,
    ) -> io::Result<FullResponse> {
        self.stream
            .write_all(format!("GET {path} HTTP/1.1\r\nhost: fd-serve\r\n\r\n").as_bytes())?;
        self.stream.flush()?;
        self.read_response_full()
    }

    /// Sends `POST path` with a JSON body and returns `(status, body)`.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.roundtrip(&format!(
            "POST {path} HTTP/1.1\r\nhost: fd-serve\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ))
    }

    /// [`Self::post`] with extra request headers (e.g. `X-Request-Id`),
    /// returning the response headers too.
    pub fn post_with_headers(
        &mut self,
        path: &str,
        body: &str,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<FullResponse> {
        let mut request = format!("POST {path} HTTP/1.1\r\nhost: fd-serve\r\ncontent-type: application/json\r\ncontent-length: {}\r\n", body.len());
        for (name, value) in extra_headers {
            request.push_str(&format!("{name}: {value}\r\n"));
        }
        request.push_str("\r\n");
        request.push_str(body);
        self.stream.write_all(request.as_bytes())?;
        self.stream.flush()?;
        self.read_response_full()
    }

    /// Sends raw bytes (for malformed-input tests) and reads a response.
    pub fn raw(&mut self, bytes: &[u8]) -> io::Result<(u16, String)> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn roundtrip(&mut self, request: &str) -> io::Result<(u16, String)> {
        self.stream.write_all(request.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        self.read_response_full().map(|(status, body, _)| (status, body))
    }

    fn read_response_full(&mut self) -> io::Result<FullResponse> {
        let head = {
            let mut head = Vec::with_capacity(256);
            let mut matched = 0usize;
            let mut byte = [0u8; 1];
            loop {
                let n = self.stream.read(&mut byte)?;
                if n == 0 {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "closed mid-response"));
                }
                head.push(byte[0]);
                matched = match (matched, byte[0]) {
                    (0, b'\r') | (2, b'\r') => matched + 1,
                    (1, b'\n') | (3, b'\n') => matched + 1,
                    (_, b'\r') => 1,
                    _ => 0,
                };
                if matched == 4 {
                    head.truncate(head.len() - 4);
                    break head;
                }
                if head.len() > MAX_HEAD_BYTES {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "response head too large"));
                }
            }
        };
        let text = String::from_utf8(head)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response head not UTF-8"))?;
        let mut lines = text.split("\r\n");
        let status_line = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
                headers.push((name.to_ascii_lowercase(), value.to_string()));
            }
        }
        let mut body = vec![0u8; content_length];
        self.stream.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body not UTF-8"))?;
        Ok((status, body, headers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    /// Runs `read_request` against raw bytes sent over a real socket.
    fn parse(bytes: &'static [u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(bytes).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream, max_body);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn captures_request_id_header() {
        let req = parse(
            b"POST / HTTP/1.1\r\nX-Request-Id: abc-123\r\nContent-Length: 0\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(req.request_id.as_deref(), Some("abc-123"));
        let req = parse(b"GET / HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.request_id, None);
    }

    #[test]
    fn honours_connection_close() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n", 1024).unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let err = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge(1024)), "{err}");
    }

    #[test]
    fn rejects_garbage() {
        let err = parse(b"NOT AN HTTP REQUEST\r\n\r\n", 1024).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
        let err = parse(b"GET / SMTP/3\r\n\r\n", 1024).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
    }

    #[test]
    fn rejects_oversized_head() {
        // A single giant header blows the head cap.
        let bytes: &'static [u8] = Box::leak(
            format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "y".repeat(MAX_HEAD_BYTES + 1))
                .into_bytes()
                .into_boxed_slice(),
        );
        let err = parse(bytes, 1024).unwrap_err();
        assert!(matches!(err, HttpError::HeadTooLarge), "{err}");
    }
}

//! The dynamic micro-batching queue.
//!
//! Request handler threads [`enqueue`](BatchQueue::enqueue) individual
//! scoring jobs; one batcher thread drains them in batches of up to
//! `max_batch`, waiting at most `max_delay` past the oldest job's
//! arrival so a lone request is never stalled for long. Under load the
//! queue fills faster than the delay expires and batches run full —
//! throughput then rides the blocked matrix kernels instead of
//! degrading to per-request `1 x h` matmuls.
//!
//! The queue is bounded: when `bound` jobs are already waiting,
//! [`enqueue`](BatchQueue::enqueue) fails immediately and the server
//! surfaces 429 backpressure instead of letting latency grow without
//! limit. Shutdown is graceful by construction — the batcher keeps
//! draining until the queue is empty *and* shutdown was signalled, so
//! every job enqueued before shutdown still gets its answer.

use fd_core::ScoreRequest;
use fd_obs::TraceCtx;
use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-class probabilities, or an internal scoring failure.
pub type ScoreResult = Result<Vec<f32>, String>;

/// One queued scoring job: the request plus the channel its result
/// travels back on, and the trace context of the HTTP request it came
/// from — the context crosses the handler→batcher thread boundary
/// here, which is what links a request's queue wait and scoring time
/// into the one trace its handler started.
struct Job {
    request: ScoreRequest,
    reply: SyncSender<ScoreResult>,
    enqueued: Instant,
    trace: TraceCtx,
}

/// Rejection reasons for [`BatchQueue::enqueue`].
#[derive(Debug, PartialEq, Eq)]
pub enum EnqueueError {
    /// The queue already holds `bound` jobs — backpressure (HTTP 429).
    Full,
    /// The server is shutting down and takes no new work (HTTP 503).
    ShuttingDown,
}

struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// The shared queue between handler threads and the batcher thread.
pub struct BatchQueue {
    state: Mutex<State>,
    arrival: Condvar,
    bound: usize,
    max_batch: usize,
    max_delay: Duration,
}

/// A drained batch: requests plus their reply channels, index-aligned.
pub struct Batch {
    /// The requests to score together in one matrix pass.
    pub requests: Vec<ScoreRequest>,
    /// Reply channels, one per request.
    pub replies: Vec<SyncSender<ScoreResult>>,
    /// Queue-wait of the oldest job in the batch.
    pub oldest_wait: Duration,
    /// Trace contexts, one per request (index-aligned with
    /// `requests`). The batcher parents its per-batch spans to these.
    pub traces: Vec<TraceCtx>,
    /// Per-request queue wait, index-aligned with `requests` — the
    /// batcher records each request's `queue.wait` span from this.
    pub waits: Vec<Duration>,
}

impl BatchQueue {
    /// Locks the queue state, recovering from a poisoned mutex. A panic
    /// in some other thread while it held the lock poisons the mutex,
    /// but `State` is only ever mutated by single `push_back`/`drain`
    /// calls that cannot leave it half-updated — so the data is intact
    /// and recovering the guard is sound. Propagating the poison
    /// instead would cascade one contained panic into an abort of every
    /// handler thread and the batcher.
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|poisoned| {
            fd_obs::counter("serve.lock_poison_recovered").inc();
            poisoned.into_inner()
        })
    }

    /// An empty queue. `bound` caps waiting jobs, `max_batch` caps the
    /// jobs drained per batch, and `max_delay` caps how long the batcher
    /// waits past the oldest job's arrival before dispatching a partial
    /// batch.
    pub fn new(bound: usize, max_batch: usize, max_delay: Duration) -> Self {
        assert!(bound >= 1, "queue bound must be at least 1");
        assert!(max_batch >= 1, "max_batch must be at least 1");
        Self {
            state: Mutex::new(State { queue: VecDeque::new(), shutdown: false }),
            arrival: Condvar::new(),
            bound,
            max_batch,
            max_delay,
        }
    }

    /// Enqueues one request; returns the receiver its result will arrive
    /// on. Fails immediately (no blocking) when the queue is full or the
    /// server is shutting down.
    pub fn enqueue(&self, request: ScoreRequest) -> Result<Receiver<ScoreResult>, EnqueueError> {
        self.enqueue_traced(request, TraceCtx::off())
    }

    /// [`Self::enqueue`] carrying the HTTP request's trace context, so
    /// the batcher can attribute queue wait and scoring time to it.
    pub fn enqueue_traced(
        &self,
        request: ScoreRequest,
        trace: TraceCtx,
    ) -> Result<Receiver<ScoreResult>, EnqueueError> {
        let (tx, rx) = sync_channel(1);
        {
            let mut st = self.lock();
            if st.shutdown {
                return Err(EnqueueError::ShuttingDown);
            }
            if st.queue.len() >= self.bound {
                fd_obs::counter("serve.queue_full").inc();
                return Err(EnqueueError::Full);
            }
            st.queue.push_back(Job { request, reply: tx, enqueued: Instant::now(), trace });
            fd_obs::gauge("serve.queue_depth").set(st.queue.len() as f64);
        }
        self.arrival.notify_all();
        Ok(rx)
    }

    /// The batch-size cap this queue dispatches at — the denominator of
    /// the batch-occupancy gauge.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Jobs currently waiting. The 429 `Retry-After` estimate is
    /// `depth / max_batch` batches times the mean batch-scoring time.
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Signals shutdown: no new jobs are accepted, and the batcher
    /// exits once the queue is drained.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.arrival.notify_all();
    }

    /// Blocks until a batch is ready and drains it, or returns `None`
    /// when shutdown was signalled and the queue is empty. The batching
    /// rule: dispatch as soon as `max_batch` jobs are waiting, the
    /// oldest job has waited `max_delay`, or shutdown begins (drain
    /// without further delay).
    pub fn next_batch(&self) -> Option<Batch> {
        let mut st = self.lock();
        let front_arrival = loop {
            match st.queue.front() {
                Some(job) => break job.enqueued,
                None if st.shutdown => return None,
                None => {
                    st = self
                        .arrival
                        .wait(st)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            }
        };
        // A batch exists; wait for it to fill or for the delay to
        // lapse. Shutdown flushes immediately.
        let deadline = front_arrival + self.max_delay;
        while st.queue.len() < self.max_batch && !st.shutdown {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timeout) = self
                .arrival
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = next;
            if timeout.timed_out() {
                break;
            }
        }
        let take = st.queue.len().min(self.max_batch);
        let now = Instant::now();
        let mut requests = Vec::with_capacity(take);
        let mut replies = Vec::with_capacity(take);
        let mut traces = Vec::with_capacity(take);
        let mut waits = Vec::with_capacity(take);
        let mut oldest_wait = Duration::ZERO;
        for job in st.queue.drain(..take) {
            let wait = now.duration_since(job.enqueued);
            oldest_wait = oldest_wait.max(wait);
            requests.push(job.request);
            replies.push(job.reply);
            traces.push(job.trace);
            waits.push(wait);
        }
        fd_obs::gauge("serve.queue_depth").set(st.queue.len() as f64);
        Some(Batch { requests, replies, oldest_wait, traces, waits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn req(tag: &str) -> ScoreRequest {
        ScoreRequest::article(tag, None, vec![])
    }

    #[test]
    fn drains_up_to_max_batch() {
        let q = BatchQueue::new(64, 3, Duration::from_millis(1));
        for i in 0..5 {
            q.enqueue(req(&format!("r{i}"))).unwrap();
        }
        let first = q.next_batch().unwrap();
        assert_eq!(first.requests.len(), 3);
        assert_eq!(first.requests[0].text, "r0");
        let second = q.next_batch().unwrap();
        assert_eq!(second.requests.len(), 2);
        assert_eq!(second.requests[0].text, "r3");
    }

    #[test]
    fn bound_rejects_excess_jobs() {
        let q = BatchQueue::new(2, 8, Duration::from_millis(1));
        q.enqueue(req("a")).unwrap();
        q.enqueue(req("b")).unwrap();
        assert_eq!(q.enqueue(req("c")).unwrap_err(), EnqueueError::Full);
    }

    #[test]
    fn dispatches_partial_batch_after_delay() {
        let q = BatchQueue::new(64, 32, Duration::from_millis(5));
        let start = Instant::now();
        q.enqueue(req("lonely")).unwrap();
        let batch = q.next_batch().unwrap();
        assert_eq!(batch.requests.len(), 1);
        // Dispatched once the delay lapsed, not after an indefinite wait.
        assert!(start.elapsed() >= Duration::from_millis(4));
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn full_batch_dispatches_before_delay() {
        let q = BatchQueue::new(64, 2, Duration::from_secs(30));
        q.enqueue(req("a")).unwrap();
        q.enqueue(req("b")).unwrap();
        let start = Instant::now();
        let batch = q.next_batch().unwrap();
        assert_eq!(batch.requests.len(), 2);
        assert!(start.elapsed() < Duration::from_secs(5), "must not wait out the delay");
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = Arc::new(BatchQueue::new(64, 4, Duration::from_secs(30)));
        q.enqueue(req("in-flight")).unwrap();
        q.shutdown();
        assert_eq!(q.enqueue(req("late")).unwrap_err(), EnqueueError::ShuttingDown);
        // The queued job is still delivered (no delay wait under shutdown)…
        let batch = q.next_batch().unwrap();
        assert_eq!(batch.requests.len(), 1);
        assert_eq!(batch.requests[0].text, "in-flight");
        // …then the batcher is told to exit.
        assert!(q.next_batch().is_none());
    }

    #[test]
    fn queue_survives_a_poisoned_lock() {
        // A thread panicking while holding the state lock must not take
        // the whole server down with it: later enqueues and drains
        // recover the (still consistent) state instead of cascading the
        // panic.
        let q = Arc::new(BatchQueue::new(4, 2, Duration::from_millis(1)));
        let poisoner = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let _guard = q.lock();
                panic!("injected panic while holding the queue lock");
            })
        };
        assert!(poisoner.join().is_err(), "poisoner thread must have panicked");
        q.enqueue(req("after-poison")).unwrap();
        let batch = q.next_batch().unwrap();
        assert_eq!(batch.requests[0].text, "after-poison");
        q.shutdown();
        assert!(q.next_batch().is_none(), "shutdown still works on a recovered lock");
    }

    #[test]
    fn shutdown_wakes_a_blocked_batcher() {
        let q = Arc::new(BatchQueue::new(64, 4, Duration::from_millis(1)));
        let waiter = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.next_batch().is_none())
        };
        thread::sleep(Duration::from_millis(20));
        q.shutdown();
        assert!(waiter.join().unwrap(), "blocked batcher must observe shutdown");
    }
}

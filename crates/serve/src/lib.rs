//! **fd-serve** — a dependency-free credibility-inference server.
//!
//! Turns a trained [FakeDetector](fd_core::FakeDetector) bundle into an
//! HTTP/1.1 service (`fdctl serve`) built entirely on `std::net` — no
//! async runtime, no HTTP framework. Three layers:
//!
//! 1. [`http`] — a defensive HTTP/1.1 parser/writer with hard size
//!    caps plus a small blocking client for tests and load generation.
//! 2. [`batch`] — the dynamic micro-batching queue. Handler threads
//!    enqueue single requests; the batcher drains up to `max_batch`
//!    jobs (or waits at most `max_delay_ms`) and scores them in one
//!    matrix pass. Because every serving op is row-independent and the
//!    kernels reduce in a fixed order, a batched response is
//!    bitwise-identical to scoring the same request alone.
//! 3. [`server`] — accept loop, routing (`POST /v1/predict`,
//!    `POST /v1/predict_batch`, `POST /v1/ingest`, `GET /healthz`,
//!    `GET /metrics`), backpressure (bounded queue → 429), per-request
//!    deadlines (→ 504), and graceful shutdown that completes in-flight
//!    requests and drains the queue before exiting.
//!
//! [`ServeModel`] is the shareable handle behind it all: corpus,
//! feature pipeline, trained weights, and the precomputed diffused
//! corpus states, so each request costs one batched HFLU encode + one
//! GDU step instead of a full graph pass.
//!
//! `POST /v1/ingest` grows the graph online: new articles, creators and
//! subjects attach behind the same hot-swap slot SIGHUP reloads use,
//! and only the affected neighbourhood's diffused states are
//! recomputed ([`ServeModel::ingest`]) — so ingest cost tracks the
//! batch's neighbourhood, not the corpus. In-flight predicts keep the
//! model they pinned; later requests see (and may cite, by combined
//! index) the ingested nodes.
//!
//! ```no_run
//! use fd_serve::{ServeConfig, ServeModel, Server};
//! use std::sync::Arc;
//!
//! let model = Arc::new(ServeModel::load("corpus.json", "model.json")?);
//! let server = Server::start(model, &ServeConfig::default())?;
//! println!("listening on {}", server.local_addr());
//! server.shutdown(); // graceful: drains the queue first
//! # Ok::<(), String>(())
//! ```
//!
//! Operational details — every flag, env var, endpoint schema, and
//! metric — live in the repository's `OPERATIONS.md`.

pub mod batch;
pub mod http;
pub mod model;
pub mod server;

pub use batch::{Batch, BatchQueue, EnqueueError, ScoreResult};
pub use http::{bind_reuse, HttpClient, HttpError, Request};
pub use model::{
    mode_name, parse_mode, BundleSplit, IngestArticle, IngestBatch, IngestCreator, IngestReport,
    IngestSubject, IngestedNode, Precision, ServeModel, TrainBundle,
};
pub use server::{
    install_signal_handlers, retry_after_secs, signal_received, take_reload_request, ModelSlot,
    ServeConfig, Server, ShutdownHandle,
};

//! Neighbour-sampled minibatch subgraphs for bounded-memory training.
//!
//! `TrainMode::Sampled` steps do not record the whole News-HSN on the
//! tape. Instead, each minibatch's training items become the *seed set*
//! of a k-hop expansion: every frontier node contributes its author port
//! plus a deterministic reservoir sample of its relation lists
//! (`fd_graph::NeighborSampler`), and the union of everything reached is
//! compacted into per-type local index spaces. The existing batched
//! autograd ops (`gather_rows` / `mean_rows` / masked GRU recurrence)
//! then run over the compacted node set only, so peak memory scales with
//! `batch_size x fanout^hops` instead of the corpus.
//!
//! Determinism: the sampler is a pure function of `(seed, salt, node)`
//! and the expansion visits nodes in discovery order, so a subgraph is a
//! pure function of `(graph, sampler, seeds, hops, salt)` — independent
//! of `FD_THREADS` and of any other subgraph built before it. That is
//! what keeps sampled runs bitwise-resumable from checkpoints.

use crate::model::type_slot;
use fd_graph::{HetGraph, NeighborSampler, NodeType};
use std::collections::HashMap;
use std::rc::Rc;

/// A sampled k-hop neighbourhood subgraph, compacted to dense per-type
/// local index spaces. Adjacency lists are in *local* indices and ready
/// for `Tape::mean_rows` / `Tape::gather_rows`.
pub(crate) struct SampledSubgraph {
    /// Global entity indices per type slot; position = compacted row.
    pub nodes: [Vec<usize>; 3],
    /// Where each seed landed, `(slot, local row)`, in seed order.
    pub seed_rows: Vec<(usize, usize)>,
    /// Local article → sampled local subject rows.
    pub subjects_of_article: Rc<Vec<Vec<usize>>>,
    /// Local article → local creator row (author port; `None` when the
    /// author was not reached — only possible for frontier-edge nodes).
    pub author: Vec<Option<usize>>,
    /// Local creator → sampled local article rows.
    pub articles_of_creator: Rc<Vec<Vec<usize>>>,
    /// Local subject → sampled local article rows.
    pub articles_of_subject: Rc<Vec<Vec<usize>>>,
}

impl SampledSubgraph {
    /// Compacted nodes across all three types.
    pub fn n_nodes(&self) -> usize {
        self.nodes.iter().map(Vec::len).sum()
    }

    /// Sampled directed adjacency entries (the per-step gather volume).
    pub fn n_sampled_edges(&self) -> usize {
        let lists = |l: &[Vec<usize>]| l.iter().map(Vec::len).sum::<usize>();
        lists(&self.subjects_of_article)
            + self.author.iter().flatten().count()
            + lists(&self.articles_of_creator)
            + lists(&self.articles_of_subject)
    }
}

/// Adds `(slot, idx)` to the compaction if unseen, queueing it for the
/// next expansion hop; returns its local row either way.
fn intern(
    nodes: &mut [Vec<usize>; 3],
    local_of: &mut [HashMap<usize, usize>; 3],
    next_frontier: &mut Vec<(usize, usize)>,
    slot: usize,
    idx: usize,
) -> usize {
    if let Some(&local) = local_of[slot].get(&idx) {
        return local;
    }
    let local = nodes[slot].len();
    nodes[slot].push(idx);
    local_of[slot].insert(idx, local);
    next_frontier.push((slot, idx));
    local
}

/// Builds the sampled `hops`-hop subgraph around `seeds`.
///
/// Expansion relations mirror the diffusion data flow: an article pulls
/// its author plus a sampled subset of its subjects; creators and
/// subjects pull sampled subsets of their articles. Nodes discovered on
/// the final hop keep whatever sampled neighbours happen to be inside
/// the node set (often none) — their state then sees a truncated
/// neighbourhood, the standard GraphSAGE-style approximation at the
/// receptive-field boundary.
pub(crate) fn sample_subgraph(
    graph: &HetGraph,
    sampler: &NeighborSampler,
    seeds: &[(NodeType, usize)],
    hops: usize,
    salt: u64,
) -> SampledSubgraph {
    let mut nodes: [Vec<usize>; 3] = Default::default();
    let mut local_of: [HashMap<usize, usize>; 3] = Default::default();
    let mut frontier: Vec<(usize, usize)> = Vec::new();

    let seed_rows: Vec<(usize, usize)> = seeds
        .iter()
        .map(|&(ty, idx)| {
            let slot = type_slot(ty);
            (slot, intern(&mut nodes, &mut local_of, &mut frontier, slot, idx))
        })
        .collect();

    let mut buf: Vec<usize> = Vec::new();
    let mut current = std::mem::take(&mut frontier);
    for _hop in 0..hops {
        if current.is_empty() {
            break;
        }
        for &(slot, idx) in &current {
            match slot {
                0 => {
                    if let Some(u) = graph.author_of(idx) {
                        intern(&mut nodes, &mut local_of, &mut frontier, 1, u);
                    }
                    sampler.sample_list_into(
                        NodeType::Article,
                        idx,
                        graph.subjects_of_article(idx),
                        salt,
                        &mut buf,
                    );
                    for &s in &buf {
                        intern(&mut nodes, &mut local_of, &mut frontier, 2, s);
                    }
                }
                1 => {
                    sampler.sample_list_into(
                        NodeType::Creator,
                        idx,
                        graph.articles_of_creator(idx),
                        salt,
                        &mut buf,
                    );
                    for &a in &buf {
                        intern(&mut nodes, &mut local_of, &mut frontier, 0, a);
                    }
                }
                _ => {
                    sampler.sample_list_into(
                        NodeType::Subject,
                        idx,
                        graph.articles_of_subject(idx),
                        salt,
                        &mut buf,
                    );
                    for &a in &buf {
                        intern(&mut nodes, &mut local_of, &mut frontier, 0, a);
                    }
                }
            }
        }
        current = std::mem::take(&mut frontier);
    }

    // Local adjacency over the final node set. The sampler is a pure
    // function of (seed, salt, node), so re-drawing here reproduces the
    // exact lists the expansion followed; lookups drop targets outside
    // the node set, which only happens for final-hop nodes.
    let mut subjects_of_article = Vec::with_capacity(nodes[0].len());
    let mut author = Vec::with_capacity(nodes[0].len());
    for &a in &nodes[0] {
        author.push(graph.author_of(a).and_then(|u| local_of[1].get(&u).copied()));
        sampler.sample_list_into(
            NodeType::Article,
            a,
            graph.subjects_of_article(a),
            salt,
            &mut buf,
        );
        subjects_of_article
            .push(buf.iter().filter_map(|s| local_of[2].get(s).copied()).collect());
    }
    let mut articles_of_creator = Vec::with_capacity(nodes[1].len());
    for &u in &nodes[1] {
        sampler.sample_list_into(
            NodeType::Creator,
            u,
            graph.articles_of_creator(u),
            salt,
            &mut buf,
        );
        articles_of_creator
            .push(buf.iter().filter_map(|a| local_of[0].get(a).copied()).collect());
    }
    let mut articles_of_subject = Vec::with_capacity(nodes[2].len());
    for &s in &nodes[2] {
        sampler.sample_list_into(
            NodeType::Subject,
            s,
            graph.articles_of_subject(s),
            salt,
            &mut buf,
        );
        articles_of_subject
            .push(buf.iter().filter_map(|a| local_of[0].get(a).copied()).collect());
    }

    SampledSubgraph {
        nodes,
        seed_rows,
        subjects_of_article: Rc::new(subjects_of_article),
        author,
        articles_of_creator: Rc::new(articles_of_creator),
        articles_of_subject: Rc::new(articles_of_subject),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_data::{generate, GeneratorConfig};

    fn graph() -> fd_graph::HetGraph {
        generate(&GeneratorConfig::politifact().scaled(0.02), 11).graph
    }

    fn seeds(n: usize) -> Vec<(NodeType, usize)> {
        (0..n).map(|i| (NodeType::Article, i * 3)).collect()
    }

    #[test]
    fn subgraph_is_deterministic() {
        let g = graph();
        // Fan-out 1 forces real selection pressure (most relation lists
        // are longer), so the salt-variation assert below is meaningful.
        let sampler = NeighborSampler::new(5, [1, 1, 1]);
        let a = sample_subgraph(&g, &sampler, &seeds(8), 2, 7);
        let b = sample_subgraph(&g, &sampler, &seeds(8), 2, 7);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.seed_rows, b.seed_rows);
        assert_eq!(a.subjects_of_article, b.subjects_of_article);
        assert_eq!(a.author, b.author);
        assert_eq!(a.articles_of_creator, b.articles_of_creator);
        assert_eq!(a.articles_of_subject, b.articles_of_subject);
        // A different salt reshuffles the sampled neighbourhood.
        let c = sample_subgraph(&g, &sampler, &seeds(8), 2, 8);
        assert_ne!(
            (&a.nodes, &a.subjects_of_article),
            (&c.nodes, &c.subjects_of_article),
            "salt must vary the sample"
        );
    }

    #[test]
    fn seeds_are_compacted_first_and_dedup() {
        let g = graph();
        let sampler = NeighborSampler::new(5, [4, 4, 4]);
        let mut s = seeds(4);
        s.push(s[0]); // duplicate seed maps to the same local row
        let sub = sample_subgraph(&g, &sampler, &s, 1, 0);
        assert_eq!(sub.seed_rows.len(), 5);
        assert_eq!(sub.seed_rows[4], sub.seed_rows[0]);
        for (k, &(slot, local)) in sub.seed_rows[..4].iter().enumerate() {
            assert_eq!(slot, 0);
            assert_eq!(sub.nodes[0][local], k * 3, "seed {k} must keep its global idx");
        }
    }

    #[test]
    fn adjacency_is_fanout_bounded_and_in_local_range(){
        let g = graph();
        let fanout = 3;
        let sampler = NeighborSampler::new(9, [fanout; 3]);
        let sub = sample_subgraph(&g, &sampler, &seeds(10), 2, 1);
        let check = |lists: &[Vec<usize>], target_count: usize| {
            for l in lists {
                assert!(l.len() <= fanout, "list over fanout: {}", l.len());
                assert!(l.iter().all(|&t| t < target_count), "local idx out of range");
            }
        };
        check(&sub.subjects_of_article, sub.nodes[2].len());
        check(&sub.articles_of_creator, sub.nodes[0].len());
        check(&sub.articles_of_subject, sub.nodes[0].len());
        for a in sub.author.iter().flatten() {
            assert!(*a < sub.nodes[1].len());
        }
        assert!(sub.n_nodes() >= 10);
        assert!(sub.n_sampled_edges() > 0);
    }

    #[test]
    fn interior_nodes_see_their_full_sampled_lists() {
        // Every node discovered before the final hop had its sampled
        // targets interned, so its local list must have the sampled
        // length exactly (no boundary truncation).
        let g = graph();
        let sampler = NeighborSampler::new(2, [4, 4, 4]);
        let s = seeds(6);
        let sub = sample_subgraph(&g, &sampler, &s, 2, 3);
        let mut buf = Vec::new();
        // The seeds themselves are hop-0 (interior for hops >= 2).
        for (k, &(slot, local)) in sub.seed_rows.iter().enumerate() {
            assert_eq!(slot, 0);
            let global = s[k].1;
            sampler.sample_list_into(
                NodeType::Article,
                global,
                g.subjects_of_article(global),
                3,
                &mut buf,
            );
            assert_eq!(
                sub.subjects_of_article[local].len(),
                buf.len(),
                "seed {k} lost sampled subjects"
            );
            assert_eq!(sub.author[local].is_some(), g.author_of(global).is_some());
        }
    }

    #[test]
    fn huge_fanout_and_depth_cover_the_connected_component_exactly() {
        // With fanout >= max degree nothing is dropped: the subgraph is
        // the union of the seeds' k-hop balls and every interior list
        // equals the full relation list (reservoir keeps order when the
        // list is under the cap).
        let g = graph();
        let sampler = NeighborSampler::new(1, [usize::MAX; 3]);
        let s = vec![(NodeType::Article, 0)];
        let sub = sample_subgraph(&g, &sampler, &s, 2, 0);
        // Article 0's subjects and author, in order.
        let local_subjects: Vec<usize> =
            sub.subjects_of_article[0].iter().map(|&l| sub.nodes[2][l]).collect();
        assert_eq!(local_subjects, g.subjects_of_article(0));
        let author_global = sub.author[0].map(|l| sub.nodes[1][l]);
        assert_eq!(author_global, g.author_of(0));
        // Hop-1 creators' article lists are complete too.
        for (local_u, &u) in sub.nodes[1].iter().enumerate() {
            let got: Vec<usize> =
                sub.articles_of_creator[local_u].iter().map(|&l| sub.nodes[0][l]).collect();
            assert_eq!(got, g.articles_of_creator(u), "creator {u}");
        }
    }

    #[test]
    fn zero_hops_is_just_the_seed_set() {
        let g = graph();
        let sampler = NeighborSampler::new(0, [4; 3]);
        let sub = sample_subgraph(&g, &sampler, &seeds(5), 0, 0);
        assert_eq!(sub.n_nodes(), 5);
        assert_eq!(sub.nodes[1].len() + sub.nodes[2].len(), 0);
        assert!(sub.subjects_of_article.iter().all(Vec::is_empty));
        assert!(sub.author.iter().all(Option::is_none));
    }
}

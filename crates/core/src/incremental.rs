//! Incremental diffusion: delta state updates for online ingestion.
//!
//! The serving tier precomputes the per-round diffused GDU states of a
//! frozen corpus ([`TrainedFakeDetector::diffused_states_rounds`]).
//! When new nodes are attached at runtime (a [`GraphOverlay`] over the
//! frozen News-HSN), recomputing the whole graph would cost O(corpus)
//! per ingest. This module instead recomputes only the **affected
//! neighbourhood** and stores it as a [`StateOverlay`] beside the
//! untouched base matrices.
//!
//! **Why the affected set is small.** Diffusion starts from zero
//! states, so a node's *round-1* state is `GDU(x, 0, 0)` — a function
//! of its own features only (the neighbour mean of zero rows is zero
//! whatever the adjacency). Attaching nodes therefore never changes any
//! base node's round-1 state. A base node's round `r ≥ 2` state changes
//! only if its neighbour list changed (it gained a citing article) or a
//! neighbour's round `r − 1` state changed. Since only new articles
//! introduce edges, the affected set at round 2 is exactly the base
//! creators/subjects cited by the new articles; each further round
//! grows it by one hop of readers. With the default
//! `diffusion_rounds = 2`, an ingest recomputes the new nodes plus the
//! directly cited base nodes — O(payload × degree), independent of
//! corpus size.
//!
//! **Delta update rule.** For each round `r` and each affected or
//! appended node `v` of slot `τ`:
//!
//! ```text
//! z_v  = mean_{w ∈ N_z(v)}  view_{r−1}[w]      (combined list: base ++ extras)
//! t_v  = view_{r−1}[author(v)]                 (articles only, else 0)
//! s_v^r = GDU_τ(x_v, z_v, t_v)
//! ```
//!
//! where `view_{r−1}` resolves a row through the previous round's
//! [`RoundDelta`] (patched base row → appended row → base matrix). The
//! combined neighbour lists concatenate the base CSR slice with the
//! overlay extras in ingestion order — the same insertion order a
//! from-scratch rebuild would use — and the mean replays the exact
//! `fd_tensor::mean_rows` reduction, so every recomputed row is
//! bit-identical to [`TrainedFakeDetector::extended_states_rounds`],
//! the honest O(corpus) recompute over the extended graph with the
//! *frozen* feature pipeline. (A true retrain re-tokenizes and refits —
//! that is the slow path: checkpoint retrain + SIGHUP swap.)

use crate::trained::TrainedFakeDetector;
use fd_data::ExperimentContext;
use fd_graph::{GraphOverlay, NeighborSampler, NodeType};
use fd_tensor::Matrix;
use std::collections::{BTreeMap, BTreeSet};

/// Recomputed rows for one diffusion round: sparse patches over the
/// base node set plus dense state rows for the appended nodes.
#[derive(Debug, Clone)]
pub struct RoundDelta {
    /// Base rows whose state this round's recompute replaced, per slot
    /// (`BTreeMap` for deterministic enumeration).
    pub patched: [BTreeMap<usize, Vec<f32>>; 3],
    /// States of the appended nodes, row `k` = appended node `k` of the
    /// slot (combined index `base_count + k`).
    pub appended: [Matrix; 3],
}

/// The full per-round delta an ingest produced: one [`RoundDelta`] per
/// diffusion round, aligned with the base history from
/// [`TrainedFakeDetector::diffused_states_rounds`].
#[derive(Debug, Clone)]
pub struct StateOverlay {
    /// Element `r` patches the base states after round `r + 1`.
    pub rounds: Vec<RoundDelta>,
    /// Largest number of base rows any single round recomputed — the
    /// affected-neighbourhood size an ingest actually paid for.
    pub max_affected_base: usize,
}

impl StateOverlay {
    /// The final round's delta — what serving reads states through.
    pub fn final_round(&self) -> &RoundDelta {
        self.rounds.last().expect("at least one diffusion round")
    }
}

/// A read-only resolver for "current" state rows: base matrices,
/// optionally overlaid with one round's [`RoundDelta`]. Row lookups
/// check the patch map first, fall through to the base matrix, and
/// serve appended nodes (combined index at or beyond the base count)
/// from the delta's appended rows.
#[derive(Clone, Copy)]
pub struct StateView<'a> {
    base: &'a [Matrix; 3],
    delta: Option<&'a RoundDelta>,
}

impl<'a> StateView<'a> {
    /// A view over plain base matrices (no overlay).
    pub fn from_base(base: &'a [Matrix; 3]) -> Self {
        Self { base, delta: None }
    }

    /// A view over base matrices patched and extended by `delta`.
    pub fn with_delta(base: &'a [Matrix; 3], delta: &'a RoundDelta) -> Self {
        Self { base, delta: Some(delta) }
    }

    /// Node counts visible through the view, `[articles, creators,
    /// subjects]` (base + appended).
    pub fn counts(&self) -> [usize; 3] {
        std::array::from_fn(|slot| {
            self.base[slot].rows() + self.delta.map_or(0, |d| d.appended[slot].rows())
        })
    }

    /// The state row of combined node `idx` in `slot`.
    ///
    /// # Panics
    /// Panics when `idx` is beyond [`StateView::counts`] for the slot.
    pub fn row(&self, slot: usize, idx: usize) -> &'a [f32] {
        let base_rows = self.base[slot].rows();
        if idx < base_rows {
            if let Some(delta) = self.delta {
                if let Some(patch) = delta.patched[slot].get(&idx) {
                    return patch;
                }
            }
            self.base[slot].row(idx)
        } else {
            let delta = self.delta.expect("combined index requires an overlay");
            delta.appended[slot].row(idx - base_rows)
        }
    }
}

/// Mean of the listed rows read through `view`, replaying the exact
/// `fd_tensor::mean_rows` arithmetic (copy first, accumulate rest in
/// list order, scale by `1/len`; empty list → zero row) over the
/// concatenation `base_part ++ extra_part`.
fn mean_into(
    view: &StateView<'_>,
    src_slot: usize,
    base_part: &[usize],
    extra_part: &[usize],
    out: &mut [f32],
) {
    let len = base_part.len() + extra_part.len();
    if len == 0 {
        return; // `out` is already the zero row.
    }
    let mut items = base_part.iter().chain(extra_part.iter()).copied();
    let first = items.next().expect("len > 0");
    out.copy_from_slice(view.row(src_slot, first));
    for j in items {
        for (acc, &v) in out.iter_mut().zip(view.row(src_slot, j)) {
            *acc += v;
        }
    }
    let inv = 1.0 / len as f32;
    for acc in out.iter_mut() {
        *acc *= inv;
    }
}

/// Shape checks shared by the delta and reference recomputes; returns
/// the appended node counts per slot.
fn check_overlay_inputs(
    ctx: &ExperimentContext<'_>,
    overlay: &GraphOverlay,
    new_explicit: &[Matrix; 3],
    new_sequences: &[Vec<Vec<usize>>; 3],
) -> Result<[usize; 3], String> {
    let graph = &ctx.corpus.graph;
    let graph_counts = [graph.n_articles(), graph.n_creators(), graph.n_subjects()];
    if overlay.base_counts() != graph_counts {
        return Err(format!(
            "overlay anchored to {:?} nodes but the corpus graph has {graph_counts:?}",
            overlay.base_counts()
        ));
    }
    let appended = overlay.appended();
    for slot in 0..3 {
        if new_explicit[slot].rows() != appended[slot] || new_sequences[slot].len() != appended[slot]
        {
            return Err(format!(
                "slot {slot}: overlay appends {} nodes but got {} explicit rows / {} sequences",
                appended[slot],
                new_explicit[slot].rows(),
                new_sequences[slot].len()
            ));
        }
    }
    Ok(appended)
}

impl TrainedFakeDetector {
    /// Incremental diffusion for an ingest: recomputes the per-round
    /// states of the appended nodes and of the affected base
    /// neighbourhood only, as a [`StateOverlay`] against `base_rounds`
    /// (the untouched history from
    /// [`TrainedFakeDetector::diffused_states_rounds`]).
    ///
    /// `new_explicit` / `new_sequences` carry the frozen-pipeline
    /// features of *all* nodes the overlay appends (cumulative, in
    /// append order). Every recomputed row is bit-identical to the same
    /// row of [`TrainedFakeDetector::extended_states_rounds`]; the
    /// serving layer documents the looser `≤ 1e-5` score bound so the
    /// implementation keeps the freedom the int8 path already has.
    ///
    /// `expansion` optionally caps the frontier: when set, the reader
    /// expansion of a changed base creator/subject samples at most the
    /// sampler's fan-out from its base CSR slice ([`NeighborSampler`],
    /// salted by round). New-node rows stay exact under any cap — the
    /// directly cited base nodes are always recomputed — the cap only
    /// bounds how far *base-node* refresh propagates at
    /// `diffusion_rounds > 2`. `None` (the serving default) recomputes
    /// the full affected set.
    pub fn delta_states(
        &self,
        ctx: &ExperimentContext<'_>,
        base_rounds: &[[Matrix; 3]],
        overlay: &GraphOverlay,
        new_explicit: &[Matrix; 3],
        new_sequences: &[Vec<Vec<usize>>; 3],
        expansion: Option<&NeighborSampler>,
    ) -> Result<StateOverlay, String> {
        self.check_ctx(ctx);
        let rounds = self.config.diffusion_rounds.max(1);
        if base_rounds.len() != rounds {
            return Err(format!(
                "base history has {} rounds but the model diffuses {rounds}",
                base_rounds.len()
            ));
        }
        let new_n = check_overlay_inputs(ctx, overlay, new_explicit, new_sequences)?;
        let graph = &ctx.corpus.graph;
        let base_counts = overlay.base_counts();
        let hidden = self.config.gdu_hidden;
        let params = &self.network.params;

        // HFLU features of the appended nodes, encoded once from the
        // frozen vocabulary/χ² pipeline.
        let x_new: [Option<Matrix>; 3] = std::array::from_fn(|slot| {
            (new_n[slot] > 0).then(|| {
                let seq_refs: Vec<&[usize]> =
                    new_sequences[slot].iter().map(Vec::as_slice).collect();
                self.network.hflu[slot].encode_raw_batch(
                    params,
                    new_explicit[slot].clone(),
                    &seq_refs,
                )
            })
        });

        let mut deltas: Vec<RoundDelta> = Vec::with_capacity(rounds);
        let mut affected_prev: [Vec<usize>; 3] = Default::default();
        let mut max_affected_base = 0usize;
        for r in 1..=rounds {
            // Base rows to recompute this round. Round 1 states depend
            // on own features only, so base rows never change there;
            // from round 2 on, the changed-adjacency set plus one hop
            // of readers of last round's recomputed rows.
            let affected: [Vec<usize>; 3] = if r == 1 || !self.config.use_diffusion {
                Default::default()
            } else {
                let mut next: [BTreeSet<usize>; 3] = Default::default();
                next[1].extend(overlay.changed_base_creators());
                next[2].extend(overlay.changed_base_subjects());
                let mut buf = Vec::new();
                for (slot, prev) in affected_prev.iter().enumerate() {
                    for &i in prev {
                        if slot == 0 {
                            // Readers of a base article: its author (t
                            // port) and subjects (z port), all base.
                            if let Some(u) = graph.author_of(i) {
                                next[1].insert(u);
                            }
                            next[2].extend(graph.subjects_of_article(i).iter().copied());
                        } else {
                            // Readers of a base creator/subject: the
                            // base articles citing it (overlay extras
                            // are appended nodes, recomputed anyway).
                            let ty = NodeType::ALL[slot];
                            let (base_part, _) = if slot == 1 {
                                overlay.articles_of_creator(graph, i)
                            } else {
                                overlay.articles_of_subject(graph, i)
                            };
                            match expansion {
                                Some(sampler) => {
                                    sampler.sample_list_into(ty, i, base_part, r as u64, &mut buf);
                                    next[0].extend(buf.iter().copied());
                                }
                                None => next[0].extend(base_part.iter().copied()),
                            }
                        }
                    }
                }
                next.map(|set| set.into_iter().collect())
            };
            max_affected_base =
                max_affected_base.max(affected.iter().map(Vec::len).sum::<usize>());

            let delta = {
                // View of the previous round (round 0 is all zeros, and
                // a mean/gather of zero rows is exactly zero, so round
                // 1 skips the reads entirely).
                let prev = (r >= 2)
                    .then(|| StateView::with_delta(&base_rounds[r - 2], &deltas[r - 2]));
                let mut patched: [BTreeMap<usize, Vec<f32>>; 3] = Default::default();
                for (slot, idxs) in affected.iter().enumerate() {
                    if idxs.is_empty() {
                        continue;
                    }
                    let prev = prev.as_ref().expect("affected rows only exist from round 2");
                    let x = self.network.hflu[slot].encode_subset(params, ctx, idxs);
                    let mut z = Matrix::zeros(idxs.len(), hidden);
                    let mut t_in = Matrix::zeros(idxs.len(), hidden);
                    for (k, &i) in idxs.iter().enumerate() {
                        if slot == 0 {
                            // Base articles never gain neighbours: base
                            // CSR slices are complete.
                            mean_into(prev, 2, graph.subjects_of_article(i), &[], z.row_mut(k));
                            if let Some(u) = graph.author_of(i) {
                                t_in.row_mut(k).copy_from_slice(prev.row(1, u));
                            }
                        } else {
                            let (base_part, extra) = if slot == 1 {
                                overlay.articles_of_creator(graph, i)
                            } else {
                                overlay.articles_of_subject(graph, i)
                            };
                            mean_into(prev, 0, base_part, extra, z.row_mut(k));
                        }
                    }
                    let h = self.network.gdu[slot].forward_matrix(
                        params,
                        &x,
                        &z,
                        &t_in,
                        self.config.use_gates,
                    );
                    patched[slot] =
                        idxs.iter().enumerate().map(|(k, &i)| (i, h.row(k).to_vec())).collect();
                }

                // Appended nodes are recomputed every round.
                let appended: [Matrix; 3] = std::array::from_fn(|slot| {
                    let Some(x) = x_new[slot].as_ref() else {
                        return Matrix::zeros(0, hidden);
                    };
                    let n = new_n[slot];
                    let mut z = Matrix::zeros(n, hidden);
                    let mut t_in = Matrix::zeros(n, hidden);
                    if self.config.use_diffusion {
                        if let Some(prev) = prev.as_ref() {
                            for k in 0..n {
                                let idx = base_counts[slot] + k;
                                if slot == 0 {
                                    let subjects = overlay.subjects_of_article(graph, idx);
                                    mean_into(prev, 2, subjects, &[], z.row_mut(k));
                                    if let Some(u) = overlay.author_of(graph, idx) {
                                        t_in.row_mut(k).copy_from_slice(prev.row(1, u));
                                    }
                                } else {
                                    let (base_part, extra) = if slot == 1 {
                                        overlay.articles_of_creator(graph, idx)
                                    } else {
                                        overlay.articles_of_subject(graph, idx)
                                    };
                                    mean_into(prev, 0, base_part, extra, z.row_mut(k));
                                }
                            }
                        }
                    }
                    self.network.gdu[slot].forward_matrix(
                        params,
                        x,
                        &z,
                        &t_in,
                        self.config.use_gates,
                    )
                });
                RoundDelta { patched, appended }
            };
            affected_prev = affected;
            deltas.push(delta);
        }
        Ok(StateOverlay { rounds: deltas, max_affected_base })
    }

    /// Reference recompute for the parity gate: the full per-round
    /// diffusion over the **extended** graph (base corpus + overlay)
    /// with the frozen feature pipeline — O(corpus) per call, exactly
    /// what [`TrainedFakeDetector::delta_states`] avoids paying. Base
    /// node features come from the context, appended node features from
    /// `new_explicit` / `new_sequences`.
    pub fn extended_states_rounds(
        &self,
        ctx: &ExperimentContext<'_>,
        overlay: &GraphOverlay,
        new_explicit: &[Matrix; 3],
        new_sequences: &[Vec<Vec<usize>>; 3],
    ) -> Result<Vec<[Matrix; 3]>, String> {
        self.check_ctx(ctx);
        let new_n = check_overlay_inputs(ctx, overlay, new_explicit, new_sequences)?;
        let graph = &ctx.corpus.graph;
        let base_counts = overlay.base_counts();
        let counts = overlay.counts();
        let hidden = self.config.gdu_hidden;
        let params = &self.network.params;

        // Combined features: base prefix from the context, appended
        // rows from the frozen-pipeline encodings.
        let mut feats: Vec<Matrix> = Vec::with_capacity(3);
        for slot in 0..3 {
            let base_m = self.network.hflu[slot].encode_batch(params, ctx, base_counts[slot]);
            if new_n[slot] == 0 {
                feats.push(base_m);
                continue;
            }
            let seq_refs: Vec<&[usize]> = new_sequences[slot].iter().map(Vec::as_slice).collect();
            let new_m =
                self.network.hflu[slot].encode_raw_batch(params, new_explicit[slot].clone(), &seq_refs);
            let mut m = Matrix::zeros(counts[slot], base_m.cols());
            for i in 0..base_counts[slot] {
                m.row_mut(i).copy_from_slice(base_m.row(i));
            }
            for k in 0..new_n[slot] {
                m.row_mut(base_counts[slot] + k).copy_from_slice(new_m.row(k));
            }
            feats.push(m);
        }

        // Materialised combined adjacency (base slice ++ extras).
        let subjects_of_article: Vec<Vec<usize>> =
            (0..counts[0]).map(|a| overlay.subjects_of_article(graph, a).to_vec()).collect();
        let author: Vec<Option<usize>> =
            (0..counts[0]).map(|a| overlay.author_of(graph, a)).collect();
        let combined = |parts: (&[usize], &[usize])| -> Vec<usize> {
            parts.0.iter().chain(parts.1.iter()).copied().collect()
        };
        let articles_of_creator: Vec<Vec<usize>> =
            (0..counts[1]).map(|u| combined(overlay.articles_of_creator(graph, u))).collect();
        let articles_of_subject: Vec<Vec<usize>> =
            (0..counts[2]).map(|s| combined(overlay.articles_of_subject(graph, s))).collect();

        let rounds = self.config.diffusion_rounds.max(1);
        let zeros: [Matrix; 3] = std::array::from_fn(|slot| Matrix::zeros(counts[slot], hidden));
        let mut history: Vec<[Matrix; 3]> = Vec::with_capacity(rounds);
        for _round in 0..rounds {
            let states: &[Matrix; 3] = history.last().unwrap_or(&zeros);
            let next: [Matrix; 3] = std::array::from_fn(|slot| {
                let (z, t_in) = if !self.config.use_diffusion {
                    (Matrix::zeros(counts[slot], hidden), Matrix::zeros(counts[slot], hidden))
                } else if slot == 0 {
                    let z = fd_tensor::mean_rows(&states[2], counts[0], |a| {
                        subjects_of_article[a].as_slice()
                    });
                    let mut t_in = Matrix::zeros(counts[0], hidden);
                    for (a, u) in author.iter().enumerate() {
                        if let Some(u) = u {
                            t_in.row_mut(a).copy_from_slice(states[1].row(*u));
                        }
                    }
                    (z, t_in)
                } else {
                    let lists = if slot == 1 { &articles_of_creator } else { &articles_of_subject };
                    let z = fd_tensor::mean_rows(&states[0], counts[slot], |i| lists[i].as_slice());
                    (z, Matrix::zeros(counts[slot], hidden))
                };
                self.network.gdu[slot].forward_matrix(
                    params,
                    &feats[slot],
                    &z,
                    &t_in,
                    self.config.use_gates,
                )
            });
            history.push(next);
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FakeDetector, FakeDetectorConfig, ScoreRequest};
    use fd_data::{
        generate, CvSplits, ExplicitFeatures, GeneratorConfig, LabelMode, TokenizedCorpus,
        TrainSets,
    };
    use fd_text::{encode_sequence, Tokenizer};
    use rand::{rngs::StdRng, SeedableRng};

    struct Fixture {
        corpus: fd_data::Corpus,
        tokenized: TokenizedCorpus,
        explicit: ExplicitFeatures,
        train: TrainSets,
    }

    fn fixture() -> Fixture {
        let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), 11);
        let tokenized = TokenizedCorpus::build(&corpus, 12, 3000);
        let mut rng = StdRng::seed_from_u64(4);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
        };
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 40);
        Fixture { corpus, tokenized, explicit, train }
    }

    fn make_ctx(f: &Fixture) -> fd_data::ExperimentContext<'_> {
        fd_data::ExperimentContext {
            corpus: &f.corpus,
            tokenized: &f.tokenized,
            explicit: &f.explicit,
            train: &f.train,
            mode: LabelMode::Binary,
            seed: 9,
        }
    }

    fn train_with(ctx: &fd_data::ExperimentContext<'_>, rounds: usize) -> TrainedFakeDetector {
        let config = FakeDetectorConfig {
            epochs: 1,
            validation_fraction: 0.0,
            diffusion_rounds: rounds,
            ..FakeDetectorConfig::default()
        };
        FakeDetector::new(config).fit(ctx)
    }

    /// Tokenises `text` through the frozen pipeline, appending one
    /// explicit row and one sequence for a node of `ty`.
    fn featurise(
        ctx: &fd_data::ExperimentContext<'_>,
        ty: fd_graph::NodeType,
        text: &str,
        explicit: &mut Vec<Vec<f32>>,
        sequences: &mut Vec<Vec<usize>>,
    ) {
        let tokens = Tokenizer::default().tokenize(text);
        explicit.push(ctx.explicit.featurise_tokens(ty, &tokens).row(0).to_vec());
        sequences.push(encode_sequence(&tokens, &ctx.tokenized.vocab, ctx.tokenized.seq_len));
    }

    /// An overlay with two articles (one citing a brand-new creator and
    /// subject, one citing base nodes), plus the matching features.
    #[allow(clippy::type_complexity)]
    fn sample_overlay(
        ctx: &fd_data::ExperimentContext<'_>,
    ) -> (GraphOverlay, [Matrix; 3], [Vec<Vec<usize>>; 3]) {
        let mut overlay = GraphOverlay::new(&ctx.corpus.graph);
        let mut explicit: [Vec<Vec<f32>>; 3] = Default::default();
        let mut sequences: [Vec<Vec<usize>>; 3] = Default::default();
        let c = overlay.add_creator();
        featurise(ctx, fd_graph::NodeType::Creator, "a prolific new pundit", &mut explicit[1], &mut sequences[1]);
        let s = overlay.add_subject();
        featurise(ctx, fd_graph::NodeType::Subject, "emerging budget controversy", &mut explicit[2], &mut sequences[2]);
        overlay.add_article(0, &[0, 1]).unwrap();
        featurise(ctx, fd_graph::NodeType::Article, "fresh claims about the deficit", &mut explicit[0], &mut sequences[0]);
        overlay.add_article(c, &[s, 0]).unwrap();
        featurise(ctx, fd_graph::NodeType::Article, "new pundit weighs in on spending", &mut explicit[0], &mut sequences[0]);
        let dim = ctx.explicit.dim;
        let explicit = std::array::from_fn(|slot: usize| {
            let rows: &Vec<Vec<f32>> = &explicit[slot];
            let mut m = Matrix::zeros(rows.len(), dim);
            for (k, row) in rows.iter().enumerate() {
                m.row_mut(k).copy_from_slice(row);
            }
            m
        });
        (overlay, explicit, sequences)
    }

    fn assert_rows_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: width");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
        }
    }

    #[test]
    fn empty_overlay_is_a_no_op_and_extended_matches_base() {
        let f = fixture();
        let ctx = make_ctx(&f);
        let trained = train_with(&ctx, 2);
        let base_rounds = trained.diffused_states_rounds(&ctx);
        let overlay = GraphOverlay::new(&ctx.corpus.graph);
        let no_feats: [Matrix; 3] = std::array::from_fn(|_| Matrix::zeros(0, ctx.explicit.dim));
        let no_seqs: [Vec<Vec<usize>>; 3] = Default::default();

        let delta = trained
            .delta_states(&ctx, &base_rounds, &overlay, &no_feats, &no_seqs, None)
            .unwrap();
        assert_eq!(delta.max_affected_base, 0);
        for round in &delta.rounds {
            assert!(round.patched.iter().all(BTreeMap::is_empty));
            assert!(round.appended.iter().all(|m| m.rows() == 0));
        }

        let extended =
            trained.extended_states_rounds(&ctx, &overlay, &no_feats, &no_seqs).unwrap();
        assert_eq!(extended.len(), base_rounds.len());
        for (r, (a, b)) in extended.iter().zip(&base_rounds).enumerate() {
            for slot in 0..3 {
                for i in 0..a[slot].rows() {
                    assert_rows_eq(a[slot].row(i), b[slot].row(i), &format!("round {r} slot {slot} row {i}"));
                }
            }
        }
    }

    /// The tentpole invariant: every state row visible through the
    /// delta view — appended, patched, and untouched base rows alike —
    /// is bit-identical to the full extended-graph recompute, at every
    /// round. Untouched rows matching proves the affected set is
    /// *sufficient*, not just that the recomputed rows are right.
    #[test]
    fn delta_matches_extended_recompute_bitwise() {
        for rounds in [2usize, 3] {
            let f = fixture();
            let ctx = make_ctx(&f);
            let trained = train_with(&ctx, rounds);
            let base_rounds = trained.diffused_states_rounds(&ctx);
            let (overlay, new_explicit, new_sequences) = sample_overlay(&ctx);

            let delta = trained
                .delta_states(&ctx, &base_rounds, &overlay, &new_explicit, &new_sequences, None)
                .unwrap();
            let extended = trained
                .extended_states_rounds(&ctx, &overlay, &new_explicit, &new_sequences)
                .unwrap();
            assert!(delta.max_affected_base > 0, "cited base nodes must be recomputed");

            let counts = overlay.counts();
            for r in 0..rounds {
                let view = StateView::with_delta(&base_rounds[r], &delta.rounds[r]);
                for slot in 0..3 {
                    for idx in 0..counts[slot] {
                        assert_rows_eq(
                            view.row(slot, idx),
                            extended[r][slot].row(idx),
                            &format!("rounds={rounds} r={r} slot={slot} idx={idx}"),
                        );
                    }
                }
            }
        }
    }

    /// With a fan-out-0 sampler the frontier never expands past the
    /// directly cited base nodes, yet appended-node rows stay exact:
    /// their inputs are base round-1 states (never stale) and the
    /// always-recomputed changed-adjacency rows.
    #[test]
    fn expansion_cap_keeps_appended_rows_exact() {
        let f = fixture();
        let ctx = make_ctx(&f);
        let trained = train_with(&ctx, 3);
        let base_rounds = trained.diffused_states_rounds(&ctx);
        let (overlay, new_explicit, new_sequences) = sample_overlay(&ctx);

        let sampler = NeighborSampler::new(0, [0, 0, 0]);
        let capped = trained
            .delta_states(&ctx, &base_rounds, &overlay, &new_explicit, &new_sequences, Some(&sampler))
            .unwrap();
        let uncapped = trained
            .delta_states(&ctx, &base_rounds, &overlay, &new_explicit, &new_sequences, None)
            .unwrap();
        assert!(capped.max_affected_base <= uncapped.max_affected_base);
        for (r, (c, u)) in capped.rounds.iter().zip(&uncapped.rounds).enumerate() {
            for slot in 0..3 {
                for k in 0..c.appended[slot].rows() {
                    assert_rows_eq(
                        c.appended[slot].row(k),
                        u.appended[slot].row(k),
                        &format!("r={r} slot={slot} appended={k}"),
                    );
                }
            }
        }
    }

    /// View-based scoring: requests may cite ingested neighbours, and a
    /// by-id probability readout matches the transductive path.
    #[test]
    fn view_scoring_accepts_ingested_neighbours_and_matches_predict_proba() {
        let f = fixture();
        let ctx = make_ctx(&f);
        let trained = train_with(&ctx, 2);
        let base_rounds = trained.diffused_states_rounds(&ctx);
        let (overlay, new_explicit, new_sequences) = sample_overlay(&ctx);
        let delta = trained
            .delta_states(&ctx, &base_rounds, &overlay, &new_explicit, &new_sequences, None)
            .unwrap();
        let last = base_rounds.last().unwrap();
        let view = StateView::with_delta(last, delta.final_round());

        // A request citing an appended creator/subject validates and
        // scores through the view; the plain base path must reject it.
        let counts = overlay.counts();
        let req = ScoreRequest::article(
            "follow-up on the emerging controversy",
            Some(counts[1] - 1),
            vec![counts[2] - 1],
        );
        let probs = trained.score_batch_view(&ctx, &view, std::slice::from_ref(&req)).unwrap();
        assert!((probs[0].iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(trained
            .score_batch(&ctx, &trained.diffused_states(&ctx), std::slice::from_ref(&req))
            .is_err());

        // Base-node by-id readout agrees bitwise with predict_proba.
        let reference = trained.predict_proba(&ctx);
        let by_id = trained.node_probabilities(fd_graph::NodeType::Article, view.row(0, 0));
        assert_rows_eq(&by_id, &reference[0][0], "article 0 by-id");
    }
}

//! FakeDetector hyper-parameters, including the ablation switches the
//! DESIGN.md experiment index calls out.

/// All tunables of the deep diffusive network.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FakeDetectorConfig {
    /// Token-embedding width inside each HFLU's GRU.
    pub embed_dim: usize,
    /// GRU hidden width inside each HFLU.
    pub gru_hidden: usize,
    /// HFLU latent feature width (`x^l`).
    pub latent_dim: usize,
    /// GDU state width (`h_i`).
    pub gdu_hidden: usize,
    /// Diffusion rounds the GDU layer is unrolled for (≥ 1; the paper's
    /// mutual data-flow resolved iteratively with shared weights).
    pub diffusion_rounds: usize,
    /// Maximum training epochs (full-graph steps); early stopping may
    /// end training sooner.
    pub epochs: usize,
    /// Fraction of the training entities held out as a validation set
    /// for early stopping (0 disables early stopping).
    pub validation_fraction: f64,
    /// Early-stopping patience: epochs without a validation-accuracy
    /// improvement before training stops (best weights are restored).
    pub patience: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// `α`, the weight of the L2 regulariser `L_reg(W)`.
    pub reg_alpha: f32,
    /// Global-norm gradient clip.
    pub clip: f32,
    /// Ablation: feed the explicit BoW half of HFLU (`x^e`).
    pub use_explicit: bool,
    /// Ablation: feed the latent GRU half of HFLU (`x^l`).
    pub use_latent: bool,
    /// Ablation: diffuse neighbour states (false ⇒ `z = t = 0`, reducing
    /// GDU to a per-entity gated MLP).
    pub use_diffusion: bool,
    /// Ablation: apply the forget/adjust gates (false ⇒ both fixed to 1).
    pub use_gates: bool,
    /// Record each epoch as one matrix-valued graph per node type
    /// (batched gathers, GRU steps and cross-entropy) instead of one
    /// tape variable per node. Both paths produce bit-comparable losses
    /// and near-identical gradients; the per-node path is kept as a
    /// reference. Defaults to `true` (and to `true` when absent from
    /// saved-model JSON written before this field existed).
    #[serde(default = "default_batched_training")]
    pub batched_training: bool,
}

fn default_batched_training() -> bool {
    true
}

impl Default for FakeDetectorConfig {
    fn default() -> Self {
        Self {
            embed_dim: 16,
            gru_hidden: 24,
            latent_dim: 24,
            gdu_hidden: 24,
            diffusion_rounds: 2,
            epochs: 250,
            validation_fraction: 0.15,
            patience: 45,
            lr: 3e-2,
            reg_alpha: 1e-5,
            clip: 10.0,
            use_explicit: true,
            use_latent: true,
            use_diffusion: true,
            use_gates: true,
            batched_training: true,
        }
    }
}

impl FakeDetectorConfig {
    /// HFLU output width given the explicit feature dimensionality `d`
    /// of the run (the GDU's `x` input width).
    pub fn hflu_out_dim(&self, explicit_dim: usize) -> usize {
        let mut out = 0;
        if self.use_explicit {
            out += explicit_dim;
        }
        if self.use_latent {
            out += self.latent_dim;
        }
        assert!(out > 0, "FakeDetectorConfig: at least one HFLU half must be enabled");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_model() {
        let c = FakeDetectorConfig::default();
        assert!(c.use_explicit && c.use_latent && c.use_diffusion && c.use_gates);
        assert!(c.diffusion_rounds >= 1);
    }

    #[test]
    fn hflu_out_dim_tracks_ablations() {
        let mut c = FakeDetectorConfig::default();
        assert_eq!(c.hflu_out_dim(60), 60 + c.latent_dim);
        c.use_explicit = false;
        assert_eq!(c.hflu_out_dim(60), c.latent_dim);
        c.use_explicit = true;
        c.use_latent = false;
        assert_eq!(c.hflu_out_dim(60), 60);
    }

    #[test]
    fn batched_training_defaults_on_for_old_saved_configs() {
        // Saved-model JSON written before the flag existed must load.
        let json = serde_json::to_string(&FakeDetectorConfig::default()).unwrap();
        let json = json.replace(",\"batched_training\":true", "");
        assert!(!json.contains("batched_training"), "field not stripped: {json}");
        let c: FakeDetectorConfig = serde_json::from_str(&json).unwrap();
        assert!(c.batched_training);
    }

    #[test]
    #[should_panic(expected = "at least one HFLU half")]
    fn both_halves_off_rejected() {
        let c = FakeDetectorConfig {
            use_explicit: false,
            use_latent: false,
            ..FakeDetectorConfig::default()
        };
        let _ = c.hflu_out_dim(60);
    }
}

//! FakeDetector hyper-parameters, including the ablation switches the
//! DESIGN.md experiment index calls out.

/// How each training epoch traverses the News-HSN.
///
/// The default, [`TrainMode::Full`], records every node of the graph on
/// the tape each epoch — exact, but peak memory grows with the corpus.
/// [`TrainMode::Sampled`] instead splits the training items into
/// minibatches and runs each step over a sampled k-hop neighbourhood
/// subgraph (deterministic reservoir sampling, see
/// `fd_graph::NeighborSampler`), so peak memory scales with
/// `batch_size x fanout^rounds` instead of the graph size.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum TrainMode {
    /// Full-graph epochs (the reference path; exact).
    #[default]
    Full,
    /// Neighbour-sampled minibatch epochs.
    Sampled {
        /// Training items per minibatch (the subgraph's seed set).
        batch_size: usize,
        /// Neighbours kept per node and relation when expanding the
        /// subgraph (degree-capped reservoir sample).
        fanout: usize,
        /// Subgraph hop depth *and* GDU unroll depth for sampled steps
        /// (overrides `diffusion_rounds` in sampled mode so the sampled
        /// receptive field always covers the unrolled diffusion).
        rounds: usize,
    },
}

// The vendored serde derive handles named-field structs and unit-variant
// enums only, so the struct-variant `Sampled` is lowered by hand:
// `Full` as the string "full" (compact, self-describing), `Sampled` as a
// tagged map. Both shapes round-trip through the JSON stand-in.
impl serde::Serialize for TrainMode {
    fn serialize_content(&self) -> serde::Content {
        match *self {
            TrainMode::Full => serde::Content::Str("full".to_string()),
            TrainMode::Sampled { batch_size, fanout, rounds } => serde::Content::Map(vec![
                ("mode".to_string(), serde::Content::Str("sampled".to_string())),
                ("batch_size".to_string(), serde::Content::U64(batch_size as u64)),
                ("fanout".to_string(), serde::Content::U64(fanout as u64)),
                ("rounds".to_string(), serde::Content::U64(rounds as u64)),
            ]),
        }
    }
}

impl serde::Deserialize for TrainMode {
    fn deserialize_content(content: &serde::Content) -> Result<Self, serde::Error> {
        if let Some(s) = content.as_str() {
            return match s {
                "full" => Ok(TrainMode::Full),
                other => Err(serde::Error::custom(format!(
                    "unknown train_mode {other:?} (expected \"full\" or a sampled-mode map)"
                ))),
            };
        }
        let map = content.as_map().ok_or_else(|| {
            serde::Error::custom(format!("train_mode must be a string or map, got {content:?}"))
        })?;
        let field = |name: &str| -> Result<usize, serde::Error> {
            serde::content_get(map, name)
                .and_then(serde::Content::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| serde::Error::custom(format!("sampled train_mode needs {name}")))
        };
        match serde::content_get(map, "mode").and_then(serde::Content::as_str) {
            Some("sampled") => Ok(TrainMode::Sampled {
                batch_size: field("batch_size")?,
                fanout: field("fanout")?,
                rounds: field("rounds")?,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown train_mode tag {other:?} (expected \"sampled\")"
            ))),
        }
    }
}

/// All tunables of the deep diffusive network.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FakeDetectorConfig {
    /// Token-embedding width inside each HFLU's GRU.
    pub embed_dim: usize,
    /// GRU hidden width inside each HFLU.
    pub gru_hidden: usize,
    /// HFLU latent feature width (`x^l`).
    pub latent_dim: usize,
    /// GDU state width (`h_i`).
    pub gdu_hidden: usize,
    /// Diffusion rounds the GDU layer is unrolled for (≥ 1; the paper's
    /// mutual data-flow resolved iteratively with shared weights).
    pub diffusion_rounds: usize,
    /// Maximum training epochs (full-graph steps); early stopping may
    /// end training sooner.
    pub epochs: usize,
    /// Fraction of the training entities held out as a validation set
    /// for early stopping (0 disables early stopping).
    pub validation_fraction: f64,
    /// Early-stopping patience: epochs without a validation-accuracy
    /// improvement before training stops (best weights are restored).
    pub patience: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// `α`, the weight of the L2 regulariser `L_reg(W)`.
    pub reg_alpha: f32,
    /// Global-norm gradient clip.
    pub clip: f32,
    /// Ablation: feed the explicit BoW half of HFLU (`x^e`).
    pub use_explicit: bool,
    /// Ablation: feed the latent GRU half of HFLU (`x^l`).
    pub use_latent: bool,
    /// Ablation: diffuse neighbour states (false ⇒ `z = t = 0`, reducing
    /// GDU to a per-entity gated MLP).
    pub use_diffusion: bool,
    /// Ablation: apply the forget/adjust gates (false ⇒ both fixed to 1).
    pub use_gates: bool,
    /// Record each epoch as one matrix-valued graph per node type
    /// (batched gathers, GRU steps and cross-entropy) instead of one
    /// tape variable per node. Both paths produce bit-comparable losses
    /// and near-identical gradients; the per-node path is kept as a
    /// reference. Defaults to `true` (and to `true` when absent from
    /// saved-model JSON written before this field existed).
    #[serde(default = "default_batched_training")]
    pub batched_training: bool,
    /// Epoch traversal: full-graph (default, exact) or neighbour-sampled
    /// minibatches with bounded peak memory. Absent from saved-model
    /// JSON written before sampled training existed ⇒ full-graph.
    #[serde(default)]
    pub train_mode: TrainMode,
}

fn default_batched_training() -> bool {
    true
}

impl Default for FakeDetectorConfig {
    fn default() -> Self {
        Self {
            embed_dim: 16,
            gru_hidden: 24,
            latent_dim: 24,
            gdu_hidden: 24,
            diffusion_rounds: 2,
            epochs: 250,
            validation_fraction: 0.15,
            patience: 45,
            lr: 3e-2,
            reg_alpha: 1e-5,
            clip: 10.0,
            use_explicit: true,
            use_latent: true,
            use_diffusion: true,
            use_gates: true,
            batched_training: true,
            train_mode: TrainMode::Full,
        }
    }
}

impl FakeDetectorConfig {
    /// HFLU output width given the explicit feature dimensionality `d`
    /// of the run (the GDU's `x` input width).
    pub fn hflu_out_dim(&self, explicit_dim: usize) -> usize {
        let mut out = 0;
        if self.use_explicit {
            out += explicit_dim;
        }
        if self.use_latent {
            out += self.latent_dim;
        }
        assert!(out > 0, "FakeDetectorConfig: at least one HFLU half must be enabled");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_model() {
        let c = FakeDetectorConfig::default();
        assert!(c.use_explicit && c.use_latent && c.use_diffusion && c.use_gates);
        assert!(c.diffusion_rounds >= 1);
    }

    #[test]
    fn hflu_out_dim_tracks_ablations() {
        let mut c = FakeDetectorConfig::default();
        assert_eq!(c.hflu_out_dim(60), 60 + c.latent_dim);
        c.use_explicit = false;
        assert_eq!(c.hflu_out_dim(60), c.latent_dim);
        c.use_explicit = true;
        c.use_latent = false;
        assert_eq!(c.hflu_out_dim(60), 60);
    }

    #[test]
    fn batched_training_defaults_on_for_old_saved_configs() {
        // Saved-model JSON written before the flag existed must load.
        let json = serde_json::to_string(&FakeDetectorConfig::default()).unwrap();
        let json = json.replace(",\"batched_training\":true", "");
        assert!(!json.contains("batched_training"), "field not stripped: {json}");
        let c: FakeDetectorConfig = serde_json::from_str(&json).unwrap();
        assert!(c.batched_training);
    }

    #[test]
    fn train_mode_defaults_to_full_for_old_saved_configs() {
        // Saved-model JSON written before sampled training must load as
        // full-graph.
        let json = serde_json::to_string(&FakeDetectorConfig::default()).unwrap();
        let json = json.replace(",\"train_mode\":\"full\"", "");
        assert!(!json.contains("train_mode"), "field not stripped: {json}");
        let c: FakeDetectorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c.train_mode, TrainMode::Full);
    }

    #[test]
    fn sampled_train_mode_roundtrips_through_json() {
        let c = FakeDetectorConfig {
            train_mode: TrainMode::Sampled { batch_size: 64, fanout: 8, rounds: 2 },
            ..FakeDetectorConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"mode\":\"sampled\""), "{json}");
        let back: FakeDetectorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.train_mode, c.train_mode);
    }

    #[test]
    fn unknown_train_mode_is_rejected() {
        let json = serde_json::to_string(&FakeDetectorConfig::default()).unwrap();
        let json = json.replace("\"train_mode\":\"full\"", "\"train_mode\":\"bogus\"");
        let err = serde_json::from_str::<FakeDetectorConfig>(&json).unwrap_err();
        assert!(err.to_string().contains("train_mode"), "{err}");
    }

    #[test]
    #[should_panic(expected = "at least one HFLU half")]
    fn both_halves_off_rejected() {
        let c = FakeDetectorConfig {
            use_explicit: false,
            use_latent: false,
            ..FakeDetectorConfig::default()
        };
        let _ = c.hflu_out_dim(60);
    }
}

//! Bridging `fd-core` training state to the `fd-ckpt` on-disk format:
//! options for checkpointed/resumable fits, plus the conversions
//! between [`Params`]/[`AdamState`] and `fd_ckpt`'s plain tensor
//! entries.
//!
//! Everything here is lossless: weights are `f32` in memory and `f64`
//! on disk (exact widening both ways), so restoring a checkpoint and
//! continuing reproduces an uninterrupted run bit for bit.

use crate::config::FakeDetectorConfig;
use crate::model::NetworkDims;
use fd_ckpt::{TensorEntry, TrainCheckpoint};
use fd_nn::{AdamState, Params};
use fd_tensor::Matrix;

/// Durability/recovery options for [`crate::FakeDetector::fit_with`].
#[derive(Debug, Clone, Default)]
pub struct FitOptions {
    /// Directory to write checkpoints into; `None` disables
    /// checkpointing (the in-memory divergence guard still runs).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Save a checkpoint every N completed epochs (0 behaves as 1).
    pub checkpoint_every: usize,
    /// How many checkpoint files to keep (min 2, so a corrupt latest
    /// always has a fallback).
    pub checkpoint_keep: usize,
    /// Resume from the newest valid checkpoint in `checkpoint_dir`
    /// instead of starting at epoch 0. A no-op when the directory holds
    /// no checkpoint yet.
    pub resume: bool,
}

impl FitOptions {
    /// Checkpoint to `dir` every `every` epochs.
    pub fn checkpointed(dir: impl Into<std::path::PathBuf>, every: usize) -> Self {
        Self {
            checkpoint_dir: Some(dir.into()),
            checkpoint_every: every,
            checkpoint_keep: 3,
            resume: false,
        }
    }

    /// Enables resuming from the newest valid checkpoint.
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Effective save cadence (a configured 0 means every epoch).
    pub(crate) fn every(&self) -> usize {
        self.checkpoint_every.max(1)
    }
}

/// Opaque fingerprint of everything that must match between the run
/// that wrote a checkpoint and the run resuming from it. `epochs` is
/// deliberately excluded: extending a finished run with more epochs is
/// a supported use of `--resume`.
pub(crate) fn config_fingerprint(config: &FakeDetectorConfig) -> String {
    let mut c = config.clone();
    c.epochs = 0;
    serde_json::to_string(&c).expect("config serialisation cannot fail")
}

/// Every parameter as a checkpoint tensor entry, in [`Params`]
/// insertion order (deterministic: `Network::build` registers
/// parameters in a fixed sequence).
pub(crate) fn params_to_entries(params: &Params) -> Vec<TensorEntry> {
    params
        .iter()
        .map(|(_, name, value)| {
            TensorEntry::from_f32(name, value.rows(), value.cols(), value.as_slice())
        })
        .collect()
}

/// Overwrites `params` values from checkpoint entries. Requires exact
/// coverage — same names, same shapes, nothing missing or extra —
/// since any mismatch means the checkpoint belongs to a different
/// model configuration.
pub(crate) fn restore_params(params: &mut Params, entries: &[TensorEntry]) -> Result<(), String> {
    if entries.len() != params.len() {
        return Err(format!(
            "checkpoint has {} parameter tensors, model has {}",
            entries.len(),
            params.len()
        ));
    }
    for entry in entries {
        let id = params
            .id_of(&entry.name)
            .ok_or_else(|| format!("checkpoint names unknown parameter {:?}", entry.name))?;
        let current = params.value(id);
        if (current.rows() as u32, current.cols() as u32) != (entry.rows, entry.cols) {
            return Err(format!(
                "checkpoint tensor {:?} is {}x{}, model expects {}x{}",
                entry.name,
                entry.rows,
                entry.cols,
                current.rows(),
                current.cols()
            ));
        }
        *params.value_mut(id) =
            Matrix::from_vec(entry.rows as usize, entry.cols as usize, entry.to_f32());
    }
    Ok(())
}

/// Splits an [`AdamState`] into checkpoint entry lists (first moments,
/// second moments).
pub(crate) fn adam_to_entries(state: &AdamState) -> (Vec<TensorEntry>, Vec<TensorEntry>) {
    let side = |moments: &[(String, Matrix)]| {
        moments
            .iter()
            .map(|(name, m)| TensorEntry::from_f32(name, m.rows(), m.cols(), m.as_slice()))
            .collect()
    };
    (side(&state.m), side(&state.v))
}

/// Reassembles an [`AdamState`] from checkpoint entry lists.
pub(crate) fn adam_from_entries(
    step: u64,
    m: &[TensorEntry],
    v: &[TensorEntry],
) -> Result<AdamState, String> {
    let side = |entries: &[TensorEntry]| -> Result<Vec<(String, Matrix)>, String> {
        entries
            .iter()
            .map(|e| {
                let rows = e.rows as usize;
                let cols = e.cols as usize;
                if e.data.len() != rows * cols {
                    return Err(format!("optimizer tensor {:?} has inconsistent shape", e.name));
                }
                Ok((e.name.clone(), Matrix::from_vec(rows, cols, e.to_f32())))
            })
            .collect()
    };
    Ok(AdamState { step, m: side(m)?, v: side(v)? })
}

/// Verifies a loaded checkpoint belongs to this exact experiment:
/// same structural dimensions, same derived seed, same configuration
/// fingerprint (epochs aside).
pub(crate) fn verify_compatible(
    ckpt: &TrainCheckpoint,
    dims: NetworkDims,
    seed: u64,
    fingerprint: &str,
) -> Result<(), String> {
    if (ckpt.vocab, ckpt.explicit_dim, ckpt.n_classes)
        != (dims.vocab as u64, dims.explicit_dim as u64, dims.n_classes as u64)
    {
        return Err(format!(
            "checkpoint dimensions (vocab {}, explicit {}, classes {}) do not match the run \
             (vocab {}, explicit {}, classes {})",
            ckpt.vocab, ckpt.explicit_dim, ckpt.n_classes,
            dims.vocab, dims.explicit_dim, dims.n_classes
        ));
    }
    if ckpt.seed != seed {
        return Err(format!(
            "checkpoint was written by a run with a different seed ({} vs {})",
            ckpt.seed, seed
        ));
    }
    if ckpt.config_fingerprint != fingerprint {
        return Err(
            "checkpoint was written under a different model configuration \
             (hyper-parameters/ablations differ)"
                .to_string(),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_roundtrip_is_bit_exact() {
        let mut params = Params::new();
        params.get_or_insert("a", || Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 * 0.7 - 1.0));
        params.get_or_insert("b", || Matrix::from_fn(1, 4, |_, c| -(c as f32) * 1e-20));
        let entries = params_to_entries(&params);

        let mut restored = params.clone();
        // Scribble over the values, then restore.
        for (id, _, _) in params.iter() {
            restored.value_mut(id).map_in_place(|_| 42.0);
        }
        restore_params(&mut restored, &entries).unwrap();
        for ((_, _, a), (_, _, b)) in params.iter().zip(restored.iter()) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn restore_params_rejects_mismatches() {
        let mut params = Params::new();
        params.get_or_insert("w", || Matrix::zeros(2, 2));
        // Wrong count.
        assert!(restore_params(&mut params.clone(), &[]).is_err());
        // Wrong name.
        let wrong_name = vec![TensorEntry::from_f32("other", 2, 2, &[0.0; 4])];
        assert!(restore_params(&mut params.clone(), &wrong_name).is_err());
        // Wrong shape.
        let wrong_shape = vec![TensorEntry::from_f32("w", 1, 4, &[0.0; 4])];
        let err = restore_params(&mut params.clone(), &wrong_shape).unwrap_err();
        assert!(err.contains("1x4"), "{err}");
    }

    #[test]
    fn fingerprint_ignores_epochs_only() {
        let base = FakeDetectorConfig::default();
        let more_epochs = FakeDetectorConfig { epochs: base.epochs * 2, ..base.clone() };
        assert_eq!(config_fingerprint(&base), config_fingerprint(&more_epochs));
        let different_lr = FakeDetectorConfig { lr: base.lr * 2.0, ..base.clone() };
        assert_ne!(config_fingerprint(&base), config_fingerprint(&different_lr));
        let ablated = FakeDetectorConfig { use_gates: false, ..base.clone() };
        assert_ne!(config_fingerprint(&base), config_fingerprint(&ablated));
    }

    #[test]
    fn verify_compatible_distinguishes_each_field() {
        let dims = NetworkDims { vocab: 100, explicit_dim: 10, n_classes: 2 };
        let fp = "fp".to_string();
        let ckpt = TrainCheckpoint {
            vocab: 100,
            explicit_dim: 10,
            n_classes: 2,
            seed: 7,
            config_fingerprint: fp.clone(),
            ..TrainCheckpoint::default()
        };
        assert!(verify_compatible(&ckpt, dims, 7, &fp).is_ok());
        assert!(verify_compatible(&ckpt, dims, 8, &fp).unwrap_err().contains("seed"));
        assert!(verify_compatible(&ckpt, dims, 7, "other").unwrap_err().contains("configuration"));
        let other_dims = NetworkDims { vocab: 101, ..dims };
        assert!(verify_compatible(&ckpt, other_dims, 7, &fp).unwrap_err().contains("dimensions"));
    }
}

//! The deep diffusive network: HFLU + GDU per node type, unrolled
//! diffusion over the News-HSN, joint training (Section 4.3).

use crate::trained::TrainedFakeDetector;
use crate::{FakeDetectorConfig, GduCell, Hflu};
use fd_autograd::{Tape, Var};
use fd_data::{CredibilityModel, ExperimentContext, Predictions};
use fd_graph::NodeType;
use fd_nn::{clip_global_norm, Adam, Binding, Linear, Optimizer, ParamId, Params};
use fd_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed-mixing constant for the internal validation split.
const VAL_SPLIT_MIX: u64 = 0x7a11_da7e;

/// Row-wise neighbour mean over `src`, replaying `Tape::mean_n`'s
/// arithmetic exactly: start from the first listed row, `+=` the rest in
/// list order, then multiply by `1/len`. Empty lists yield a zero row,
/// matching the tape path's zero-leaf fallback.
fn gather_mean<'a>(
    src: &Matrix,
    n: usize,
    hidden: usize,
    lists: impl Fn(usize) -> &'a [usize],
) -> Matrix {
    let mut out = Matrix::zeros(n, hidden);
    for i in 0..n {
        let list = lists(i);
        let Some((&first, rest)) = list.split_first() else { continue };
        let row = out.row_mut(i);
        row.copy_from_slice(src.row(first));
        for &j in rest {
            for (acc, &v) in row.iter_mut().zip(src.row(j)) {
                *acc += v;
            }
        }
        let inv = 1.0 / list.len() as f32;
        for acc in row.iter_mut() {
            *acc *= inv;
        }
    }
    out
}

fn type_slot(ty: NodeType) -> usize {
    match ty {
        NodeType::Article => 0,
        NodeType::Creator => 1,
        NodeType::Subject => 2,
    }
}

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct TrainReport {
    /// Total loss (cross-entropy + α·L2) per epoch.
    pub losses: Vec<f32>,
    /// Pre-clip global gradient norm per epoch.
    pub grad_norms: Vec<f32>,
}

/// The assembled network: parameter store plus the per-type components.
///
/// Construction is deterministic in `(config, dims, seed)`; rebuilding
/// over an existing [`Params`] store (same names, insertion order)
/// re-attaches to the stored weights, which is how deserialisation works.
pub(crate) struct Network {
    pub params: Params,
    pub hflu: [Hflu; 3],
    pub gdu: [GduCell; 3],
    pub heads: [Linear; 3],
    pub reg_ids: Vec<ParamId>,
}

/// Structural dimensions a network was built for; persisted alongside
/// the weights so a loaded model can verify its context matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub(crate) struct NetworkDims {
    pub vocab: usize,
    pub explicit_dim: usize,
    pub n_classes: usize,
}

impl Network {
    /// Builds (or re-attaches to) the network components over `params`.
    pub fn build(
        config: &FakeDetectorConfig,
        dims: NetworkDims,
        mut params: Params,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let hflu: [Hflu; 3] = [
            Hflu::new(&mut params, "hflu.article", NodeType::Article, dims.vocab, dims.explicit_dim, config, &mut rng),
            Hflu::new(&mut params, "hflu.creator", NodeType::Creator, dims.vocab, dims.explicit_dim, config, &mut rng),
            Hflu::new(&mut params, "hflu.subject", NodeType::Subject, dims.vocab, dims.explicit_dim, config, &mut rng),
        ];
        let x_dim = config.hflu_out_dim(dims.explicit_dim);
        let gdu: [GduCell; 3] = [
            GduCell::new(&mut params, "gdu.article", x_dim, config.gdu_hidden, &mut rng),
            GduCell::new(&mut params, "gdu.creator", x_dim, config.gdu_hidden, &mut rng),
            GduCell::new(&mut params, "gdu.subject", x_dim, config.gdu_hidden, &mut rng),
        ];
        let heads: [Linear; 3] = [
            Linear::new(&mut params, "head.article", config.gdu_hidden, dims.n_classes, &mut rng),
            Linear::new(&mut params, "head.creator", config.gdu_hidden, dims.n_classes, &mut rng),
            Linear::new(&mut params, "head.subject", config.gdu_hidden, dims.n_classes, &mut rng),
        ];
        let reg_ids: Vec<ParamId> = hflu
            .iter()
            .flat_map(Hflu::param_ids)
            .chain(gdu.iter().flat_map(GduCell::param_ids))
            .chain(heads.iter().flat_map(Linear::param_ids))
            .collect();
        Self { params, hflu, gdu, heads, reg_ids }
    }

    /// Full-graph forward: HFLU features once, then `diffusion_rounds`
    /// synchronous GDU updates. Round 0 sees zero neighbour states, so
    /// with `L` rounds information travels `L` hops — the unrolled
    /// reading of Figure 3(c)'s mutual data flow.
    pub fn forward_states(
        &self,
        config: &FakeDetectorConfig,
        bind: &Binding<'_>,
        ctx: &ExperimentContext<'_>,
    ) -> [Vec<Var>; 3] {
        let tape = bind.tape();
        let graph = &ctx.corpus.graph;
        let feats: [Vec<Var>; 3] = [
            (0..graph.n_articles()).map(|i| self.hflu[0].encode(bind, ctx, i)).collect(),
            (0..graph.n_creators()).map(|i| self.hflu[1].encode(bind, ctx, i)).collect(),
            (0..graph.n_subjects()).map(|i| self.hflu[2].encode(bind, ctx, i)).collect(),
        ];
        let zero = tape.leaf(Matrix::zeros(1, config.gdu_hidden));
        let mut states: [Vec<Var>; 3] = [
            vec![zero; graph.n_articles()],
            vec![zero; graph.n_creators()],
            vec![zero; graph.n_subjects()],
        ];
        let rounds = config.diffusion_rounds.max(1);
        for _round in 0..rounds {
            let mut next: [Vec<Var>; 3] = [
                Vec::with_capacity(graph.n_articles()),
                Vec::with_capacity(graph.n_creators()),
                Vec::with_capacity(graph.n_subjects()),
            ];
            for (a, &feat) in feats[0].iter().enumerate() {
                let (z, t_in) = if config.use_diffusion {
                    let subjects = graph.subjects_of_article(a);
                    let z = if subjects.is_empty() {
                        zero
                    } else {
                        let vars: Vec<Var> = subjects.iter().map(|&s| states[2][s]).collect();
                        tape.mean_n(&vars)
                    };
                    let t_in = graph.author_of(a).map_or(zero, |u| states[1][u]);
                    (z, t_in)
                } else {
                    (zero, zero)
                };
                next[0].push(self.gdu[0].forward(bind, feat, z, t_in, config.use_gates));
            }
            for (u, &feat) in feats[1].iter().enumerate() {
                let z = self.aggregate(config, bind, &states[0], graph.articles_of_creator(u), zero);
                next[1].push(self.gdu[1].forward(bind, feat, z, zero, config.use_gates));
            }
            for (s, &feat) in feats[2].iter().enumerate() {
                let z = self.aggregate(config, bind, &states[0], graph.articles_of_subject(s), zero);
                next[2].push(self.gdu[2].forward(bind, feat, z, zero, config.use_gates));
            }
            states = next;
        }
        states
    }

    /// Tape-free batched twin of [`Network::forward_states`]: one
    /// `count x hidden` state matrix per node type instead of per-node
    /// tape variables. Row `i` of each matrix is bit-identical to the
    /// tape value for node `i` — the blocked matmul reduces every output
    /// element in a fixed order independent of batch size, the gather
    /// mean below replays `Tape::mean_n` exactly, and all remaining ops
    /// are elementwise. The three HFLU sweeps and the three per-round
    /// GDU updates are independent, so both fan out across `FD_THREADS`.
    pub fn forward_states_matrix(
        &self,
        config: &FakeDetectorConfig,
        ctx: &ExperimentContext<'_>,
    ) -> [Matrix; 3] {
        use fd_tensor::parallel;
        let graph = &ctx.corpus.graph;
        let counts = [graph.n_articles(), graph.n_creators(), graph.n_subjects()];
        let n_nodes: usize = counts.iter().sum();
        let hidden = config.gdu_hidden;

        let feat_work = n_nodes * config.embed_dim * config.gru_hidden;
        let feats: [Matrix; 3] = parallel::par_map(3, feat_work, |slot| {
            self.hflu[slot].encode_batch(&self.params, ctx, counts[slot])
        })
        .try_into()
        .expect("par_map returns one result per slot");

        let mut states: [Matrix; 3] = [
            Matrix::zeros(counts[0], hidden),
            Matrix::zeros(counts[1], hidden),
            Matrix::zeros(counts[2], hidden),
        ];
        let round_work = n_nodes * hidden * hidden;
        let rounds = config.diffusion_rounds.max(1);
        for _round in 0..rounds {
            let next: [Matrix; 3] = parallel::par_map(3, round_work, |slot| {
                let (z, t_in) = if !config.use_diffusion {
                    (Matrix::zeros(counts[slot], hidden), Matrix::zeros(counts[slot], hidden))
                } else if slot == 0 {
                    let z = gather_mean(&states[2], counts[0], hidden, |a| {
                        graph.subjects_of_article(a)
                    });
                    let mut t_in = Matrix::zeros(counts[0], hidden);
                    for a in 0..counts[0] {
                        if let Some(u) = graph.author_of(a) {
                            t_in.row_mut(a).copy_from_slice(states[1].row(u));
                        }
                    }
                    (z, t_in)
                } else {
                    let z = gather_mean(&states[0], counts[slot], hidden, |i| {
                        if slot == 1 {
                            graph.articles_of_creator(i)
                        } else {
                            graph.articles_of_subject(i)
                        }
                    });
                    (z, Matrix::zeros(counts[slot], hidden))
                };
                self.gdu[slot].forward_matrix(
                    &self.params,
                    &feats[slot],
                    &z,
                    &t_in,
                    config.use_gates,
                )
            })
            .try_into()
            .expect("par_map returns one result per slot");
            states = next;
        }
        states
    }

    /// Mean of the listed article states, or the zero state when
    /// diffusion is ablated or the list is empty.
    fn aggregate(
        &self,
        config: &FakeDetectorConfig,
        bind: &Binding<'_>,
        article_states: &[Var],
        articles: &[usize],
        zero: Var,
    ) -> Var {
        if !config.use_diffusion || articles.is_empty() {
            return zero;
        }
        let vars: Vec<Var> = articles.iter().map(|&a| article_states[a]).collect();
        bind.tape().mean_n(&vars)
    }

    /// A deep copy of the current weights (early-stopping snapshots).
    pub fn params_snapshot(&self) -> Params {
        self.params.clone()
    }
}

/// The FakeDetector model (configuration only; parameters are built
/// fresh inside each `fit` call, making runs independent and
/// deterministic in the context seed).
#[derive(Debug, Clone, Default)]
pub struct FakeDetector {
    /// Hyper-parameters and ablation switches.
    pub config: FakeDetectorConfig,
}

impl FakeDetector {
    /// A model with the given configuration.
    pub fn new(config: FakeDetectorConfig) -> Self {
        Self { config }
    }

    /// Trains the deep diffusive network on the context's train sets and
    /// returns the trained model (weights + diagnostics), usable for
    /// transductive prediction, inductive new-article scoring and
    /// (de)serialisation.
    pub fn fit(&self, ctx: &ExperimentContext<'_>) -> TrainedFakeDetector {
        let cfg = &self.config;
        // fit runs a handful of times per process, so registry lookups
        // here are off the hot path; the epoch loop reuses the handles.
        let fit_us = fd_obs::histogram("train.fit_us", &fd_obs::exponential_buckets(1e3, 4.0, 10));
        let epoch_us =
            fd_obs::histogram("train.epoch_us", &fd_obs::exponential_buckets(100.0, 4.0, 10));
        let epochs_run = fd_obs::counter("train.epochs");
        let _fit_span = fd_obs::span_timed("fit", fit_us);
        let dims = NetworkDims {
            vocab: ctx.tokenized.vocab.id_space(),
            explicit_dim: ctx.explicit.dim,
            n_classes: ctx.n_classes(),
        };
        let seed = ctx.seed ^ 0xfa_ce_de_7e;
        let mut network = Network::build(cfg, dims, Params::new(), seed);
        let mut optimizer = Adam::new(cfg.lr);
        let mut report = TrainReport::default();

        // Hold out a slice of the training entities for early stopping;
        // validation logits fall out of the same forward pass for free.
        let mut items: Vec<(NodeType, usize, usize)> = ctx.train_items();
        let mut split_rng = StdRng::seed_from_u64(seed ^ VAL_SPLIT_MIX);
        use rand::seq::SliceRandom;
        items.shuffle(&mut split_rng);
        let n_val = if cfg.validation_fraction > 0.0 {
            ((items.len() as f64 * cfg.validation_fraction) as usize).min(items.len() - 1)
        } else {
            0
        };
        let (val_items, fit_items) = items.split_at(n_val);
        assert!(!fit_items.is_empty(), "FakeDetector: empty training set");

        let mut best: Option<(f64, Params)> = None;
        let mut since_best = 0usize;
        for epoch in 0..cfg.epochs {
            let epoch_start = std::time::Instant::now();
            let _epoch_span = fd_obs::span("epoch");
            let tape = Tape::with_capacity(1 << 16);
            let binding = Binding::new(&tape, &network.params);
            let states = network.forward_states(cfg, &binding, ctx);

            // The paper's objective: L(T_n) + L(T_u) + L(T_s) + α L_reg.
            let mut losses: Vec<Var> = Vec::with_capacity(fit_items.len() + 1);
            for &(ty, idx, target) in fit_items {
                let slot = type_slot(ty);
                let logits = network.heads[slot].forward(&binding, states[slot][idx]);
                losses.push(tape.softmax_cross_entropy(logits, target));
            }
            if cfg.reg_alpha > 0.0 && !network.reg_ids.is_empty() {
                let reg = binding.l2_term(&network.reg_ids);
                losses.push(tape.scale(reg, cfg.reg_alpha));
            }
            let loss = tape.sum_n(&losses);
            tape.backward(loss);
            let mut grads = binding.grads();
            let norm = clip_global_norm(&mut grads, cfg.clip);
            let loss_value = tape.with_value(loss, |m| m[(0, 0)]);

            // Per-entity-type loss decomposition, computed only when
            // someone is listening: it re-reads one tape value per
            // training item. `losses[i]` pairs with `fit_items[i]`; the
            // optional trailing reg term falls off the zip.
            let slot_losses: Option<[f64; 3]> =
                fd_obs::enabled(fd_obs::Level::Info).then(|| {
                    let mut sums = [0.0f64; 3];
                    for (&(ty, _, _), &item_loss) in fit_items.iter().zip(&losses) {
                        sums[type_slot(ty)] +=
                            f64::from(tape.with_value(item_loss, |m| m[(0, 0)]));
                    }
                    sums
                });
            let mut epoch_val_acc: Option<f64> = None;

            // Validation accuracy from the pre-update forward pass,
            // macro-averaged over entity types so the article-heavy
            // validation pool does not drown out creators/subjects.
            if n_val > 0 {
                let mut correct = [0usize; 3];
                let mut total = [0usize; 3];
                for &(ty, idx, target) in val_items {
                    let slot = type_slot(ty);
                    let logits = network.heads[slot].forward(&binding, states[slot][idx]);
                    total[slot] += 1;
                    if tape.with_value(logits, |m| m.row_argmax(0).index) == target {
                        correct[slot] += 1;
                    }
                }
                let (mut acc_sum, mut types_present) = (0.0f64, 0usize);
                for slot in 0..3 {
                    if total[slot] > 0 {
                        acc_sum += correct[slot] as f64 / total[slot] as f64;
                        types_present += 1;
                    }
                }
                let acc = acc_sum / types_present.max(1) as f64;
                epoch_val_acc = Some(acc);
                if best.as_ref().is_none_or(|(b, _)| acc > *b) {
                    best = Some((acc, network.params_snapshot()));
                    since_best = 0;
                } else {
                    since_best += 1;
                }
            }

            drop(binding);
            drop(tape);
            optimizer.apply(&mut network.params, &grads);
            report.losses.push(loss_value);
            report.grad_norms.push(norm);

            epochs_run.inc();
            let epoch_elapsed = epoch_start.elapsed().as_secs_f64();
            epoch_us.record(epoch_elapsed * 1e6);
            fd_obs::gauge("train.loss").set(f64::from(loss_value));
            fd_obs::gauge("train.grad_norm").set(f64::from(norm));
            fd_obs::gauge("train.lr").set(f64::from(cfg.lr));
            if let Some([la, lc, ls]) = slot_losses {
                let mut fields: Vec<(&str, fd_obs::Value)> = vec![
                    ("epoch", epoch.into()),
                    ("loss", loss_value.into()),
                    ("loss_articles", la.into()),
                    ("loss_creators", lc.into()),
                    ("loss_subjects", ls.into()),
                    ("grad_norm", norm.into()),
                    ("lr", cfg.lr.into()),
                    ("epoch_ms", (epoch_elapsed * 1e3).into()),
                ];
                if let Some(acc) = epoch_val_acc {
                    fields.push(("val_acc", acc.into()));
                }
                fd_obs::event(fd_obs::Level::Info, "train.epoch", &fields);
            }

            if n_val > 0 && since_best >= cfg.patience {
                break;
            }
        }
        if let Some((_, best_params)) = best {
            network.params = best_params;
        }

        TrainedFakeDetector::from_parts(self.config.clone(), dims, seed, network, report)
    }

    /// Trains and predicts, also returning the loss curve — used by the
    /// examples and the ablation harness; `fit_predict` discards it.
    pub fn fit_predict_with_report(
        &self,
        ctx: &ExperimentContext<'_>,
    ) -> (Predictions, TrainReport) {
        let trained = self.fit(ctx);
        let predictions = trained.predict(ctx);
        let report = trained.report().clone();
        (predictions, report)
    }
}

impl CredibilityModel for FakeDetector {
    fn name(&self) -> &'static str {
        "FakeDetector"
    }

    fn fit_predict(&self, ctx: &ExperimentContext<'_>) -> Predictions {
        self.fit_predict_with_report(ctx).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_data::{
        generate, CvSplits, ExplicitFeatures, GeneratorConfig, LabelMode, TokenizedCorpus,
        TrainSets,
    };
    use rand::{rngs::StdRng, SeedableRng};

    struct Fixture {
        corpus: fd_data::Corpus,
        tokenized: TokenizedCorpus,
        explicit: ExplicitFeatures,
        train: TrainSets,
    }

    fn fixture() -> Fixture {
        let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), 7);
        let tokenized = TokenizedCorpus::build(&corpus, 12, 3000);
        let mut rng = StdRng::seed_from_u64(6);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
        };
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 40);
        Fixture { corpus, tokenized, explicit, train }
    }

    /// The batched forward must reproduce the tape forward *bitwise*,
    /// state by state — not just up to arg-max. This is the contract the
    /// blocked matmul's fixed reduction order exists to uphold.
    #[test]
    fn forward_states_matrix_is_bitwise_identical_to_tape() {
        let f = fixture();
        let ctx = ExperimentContext {
            corpus: &f.corpus,
            tokenized: &f.tokenized,
            explicit: &f.explicit,
            train: &f.train,
            mode: LabelMode::Binary,
            seed: 13,
        };
        let config = FakeDetectorConfig::default();
        let dims = NetworkDims {
            vocab: ctx.tokenized.vocab.id_space(),
            explicit_dim: ctx.explicit.dim,
            n_classes: ctx.n_classes(),
        };
        let network = Network::build(&config, dims, Params::new(), 21);

        let tape = Tape::with_capacity(1 << 16);
        let binding = Binding::new(&tape, &network.params);
        let tape_states = network.forward_states(&config, &binding, &ctx);
        let batched = network.forward_states_matrix(&config, &ctx);

        for slot in 0..3 {
            assert_eq!(batched[slot].rows(), tape_states[slot].len());
            for (i, &var) in tape_states[slot].iter().enumerate() {
                tape.with_value(var, |m| {
                    for (j, (&a, &b)) in m.row(0).iter().zip(batched[slot].row(i)).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "state mismatch at slot {slot}, node {i}, dim {j}: {a} vs {b}"
                        );
                    }
                });
            }
        }
    }
}
